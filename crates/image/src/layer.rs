//! The instruction-level layer cache (ch-image's build cache).
//!
//! Every successfully executed Dockerfile instruction snapshots the
//! container filesystem into a [`Layer`], addressed by a [`CacheKey`]
//! over (parent layer, normalized instruction text, build-context
//! digest, strategy configuration). A rebuild walks the same key chain
//! and restores snapshots instead of executing, until the first key the
//! store does not know — ch-image's `N* INSTR` hit versus `N. INSTR`
//! miss markers, which is where iterative unprivileged builds get their
//! speed.
//!
//! The store is builder-side state (it lives next to [`ImageStore`] in
//! `zr-build`'s `Builder`), but the *data model* belongs here with the
//! other image storage types.
//!
//! [`ImageStore`]: crate::store::ImageStore

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use zeroroot_core::digest::FieldDigest;
use zeroroot_core::sync::{lock_or_poisoned, shard_index};
use zr_vfs::fs::Fs;
use zr_vfs::FileKind;

use crate::image::{Image, ImageMeta};

/// A layer cache key: 64 hex characters of a field-delimited SHA-256
/// over everything that decides an instruction's outcome.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheKey(String);

impl CacheKey {
    /// Compute the key for one instruction.
    ///
    /// * `parent` — the previous instruction's key (`None` for the
    ///   first instruction), chaining the whole prefix into this key.
    /// * `instruction` — the normalized instruction text (ARG values
    ///   resolved, FROM references substituted).
    /// * `context` — digest of the build-context content COPY/ADD
    ///   sources refer to; empty for instructions without context.
    /// * `config` — the active strategy configuration (`--force` flag,
    ///   container type, host libc): a strategy change must invalidate
    ///   the chain because the same RUN behaves differently under it.
    pub fn compute(
        parent: Option<&CacheKey>,
        instruction: &str,
        context: &str,
        config: &str,
    ) -> CacheKey {
        let mut d = FieldDigest::new("zr-layer-v1");
        d.field(parent.map_or("", |p| p.as_hex()).as_bytes())
            .field(instruction.as_bytes())
            .field(context.as_bytes())
            .field(config.as_bytes());
        CacheKey(d.finish())
    }

    /// Re-admit a key from its hex rendering (how the persistent store
    /// names layer records on disk). `None` unless it is exactly 64
    /// lowercase hex characters — file names never round-trip into
    /// keys by accident.
    pub fn from_hex(hex: &str) -> Option<CacheKey> {
        let well_formed = hex.len() == 64
            && hex
                .bytes()
                .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase());
        well_formed.then(|| CacheKey(hex.to_string()))
    }

    /// The hex rendering (stable, ordered, log-friendly).
    pub fn as_hex(&self) -> &str {
        &self.0
    }

    /// Abbreviated id for logs (`git log --oneline` style).
    pub fn short(&self) -> &str {
        &self.0[..12]
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The builder-side stage state a snapshot must restore besides the
/// filesystem: metadata, ENV/SHELL state, and the working directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSnapshot {
    /// Image metadata as of this layer.
    pub meta: ImageMeta,
    /// Effective ENV state (image defaults + ENV instructions).
    pub env: Vec<(String, String)>,
    /// The SHELL prefix for shell-form RUN.
    pub shell: Vec<String>,
    /// Working directory (WORKDIR state).
    pub cwd: String,
}

/// Everything a replay needs to continue *after* this layer without
/// executing anything up to and including it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerState {
    /// ARG values accumulated so far (resolved).
    pub args: Vec<(String, String)>,
    /// Stage state; `None` for layers before the first FROM (a
    /// Dockerfile may open with ARG instructions).
    pub stage: Option<StageSnapshot>,
}

/// One cached layer: the filesystem snapshot plus replayable state.
#[derive(Debug, Clone)]
pub struct Layer {
    /// This layer's cache key.
    pub id: CacheKey,
    /// The parent layer's key (`None` for the first instruction).
    pub parent: Option<CacheKey>,
    /// Filesystem snapshot taken after the instruction ran (empty for
    /// pre-FROM layers, which have no stage filesystem yet).
    pub fs: Fs,
    /// Replayable builder state.
    pub state: LayerState,
}

use crate::INODE_OVERHEAD;

/// The non-payload footprint of one layer: per-inode overhead plus
/// symlink targets. File payload bytes are charged through the shared
/// blob ledger instead, so snapshots that share blobs are charged for
/// them once, not once per layer.
fn layer_overhead(layer: &Layer) -> u64 {
    layer
        .fs
        .inodes()
        .map(|inode| {
            INODE_OVERHEAD
                + match &inode.kind {
                    FileKind::Symlink(target) => target.len() as u64,
                    _ => 0,
                }
        })
        .sum()
}

/// Every file blob of a layer as `(content digest, length)` — one
/// entry per inode (hard links count once). Forces each blob's
/// memoized SHA-256; for a snapshot chain this hashes only blobs no
/// earlier layer has been charged for.
fn blob_inventory(layer: &Layer) -> Vec<(String, u64)> {
    layer
        .fs
        .blobs()
        .map(|blob| (blob.sha_hex(), blob.len() as u64))
        .collect()
}

/// One stored layer plus the bookkeeping eviction and the dedup ledger
/// need. The layer sits behind an `Arc` so lookups hand out O(1)
/// clones — the shard lock is never held across an O(image) filesystem
/// copy.
#[derive(Debug, Clone)]
struct Entry {
    layer: Arc<Layer>,
    /// Non-payload footprint (inode overhead + symlink targets).
    overhead: u64,
    /// What this layer would cost stored as a full copy (overhead +
    /// every payload byte) — the dedup savings baseline.
    logical_bytes: u64,
    /// The blobs this layer references, for ledger release on removal.
    inventory: Vec<(String, u64)>,
    /// Logical clock value of the last hit (or the insert) — the LRU
    /// ordering eviction walks.
    last_hit: u64,
}

/// Aggregate counters for a [`LayerStore`], across every builder
/// sharing it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Layers currently stored.
    pub layers: usize,
    /// Approximate bytes currently stored, **deduplicated**: a payload
    /// blob shared by many snapshots is charged once. This is what the
    /// budget bounds.
    pub bytes: u64,
    /// What the same layers would cost stored as full copies (the
    /// pre-CoW accounting); `logical_bytes - bytes` is the dedup win.
    pub logical_bytes: u64,
    /// Distinct payload blobs currently charged in the ledger.
    pub blobs: u64,
    /// The configured size budget (0 = unlimited).
    pub budget: u64,
    /// Lookups that found a layer (lifetime, cross-build).
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Layers evicted to respect the budget.
    pub evictions: u64,
    /// Hits served by the persistence tier — layers this process never
    /// built or inserted, replayed from disk (subset of `hits`).
    pub disk_hits: u64,
}

impl StoreStats {
    /// Bytes the blob-level dedup saves over storing full copies.
    pub fn dedup_saved(&self) -> u64 {
        self.logical_bytes.saturating_sub(self.bytes)
    }
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} layers, {} bytes ({} logical, {} saved by dedup, {} blobs), \
             {} hits ({} from disk), {} misses, {} evictions",
            self.layers,
            self.bytes,
            self.logical_bytes,
            self.dedup_saved(),
            self.blobs,
            self.hits,
            self.disk_hits,
            self.misses,
            self.evictions
        )
    }
}

/// A durable backing tier for a [`LayerStore`] — the hook `zr-store`
/// plugs its on-disk content-addressed store into.
///
/// The in-memory store stays the source of truth for the hot set; the
/// persistence tier sees every insert (write-through) and is consulted
/// on lookup misses, so a fresh process pointed at a warm store replays
/// builds it never executed. Implementations must tolerate concurrent
/// callers and absorb their own I/O errors (a failed persist must not
/// fail a build; a failed load is a miss).
pub trait LayerPersistence: Send + Sync + std::fmt::Debug {
    /// Durably record a layer (idempotent: layers are content-addressed
    /// by their cache key).
    fn persist(&self, layer: &Layer);
    /// [`persist`](Self::persist) with the layer's parent supplied when
    /// the caller still holds it — implementations can encode the layer
    /// as a delta against the parent instead of a full record. The
    /// default ignores the parent and persists in full, so existing
    /// implementations stay correct unchanged.
    fn persist_with_parent(&self, layer: &Layer, parent: Option<&Layer>) {
        let _ = parent;
        self.persist(layer);
    }
    /// Load a layer by key; `None` for unknown keys *and* for layers
    /// that fail to deserialize (corruption reads as a cache miss).
    fn load(&self, key: &CacheKey) -> Option<Layer>;
    /// Load only a layer's replayable *state* — what the builder's
    /// chain walk consults for every layer of a cached prefix. The
    /// default materializes the whole layer; implementations should
    /// override it to skip the filesystem, keeping the walk O(state)
    /// with exactly one full materialization (the deepest hit).
    fn load_state(&self, key: &CacheKey) -> Option<LayerState> {
        self.load(key).map(|layer| layer.state)
    }
    /// Is the key durably stored? (No deserialization.)
    fn has(&self, key: &CacheKey) -> bool;
    /// Every durably stored key, sorted.
    fn keys(&self) -> Vec<CacheKey>;
}

const STORE_SHARDS: usize = 8;

#[derive(Debug)]
struct StoreInner {
    /// Key space split across independently locked shards so concurrent
    /// builders contend per key range, not on one store-wide lock.
    shards: Vec<Mutex<BTreeMap<CacheKey, Entry>>>,
    /// The blob dedup ledger: content digest → (length, layers holding
    /// it). Bytes are charged when a blob's first layer arrives and
    /// released when its last layer leaves. Lock ordering: a shard lock
    /// may be held while taking the ledger, never the reverse.
    ledger: Mutex<HashMap<String, (u64, u64)>>,
    /// Logical LRU clock (bumped on every hit and insert).
    clock: AtomicU64,
    /// Size budget in bytes; 0 means unlimited.
    budget: AtomicU64,
    /// Approximate deduplicated bytes stored.
    bytes: AtomicU64,
    /// What full copies would cost (sum of per-layer logical bytes).
    logical_bytes: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Lookups served by the persistence tier (subset of `hits`).
    disk_hits: AtomicU64,
    /// Optional durable backing tier (write-through + miss
    /// fallthrough). Taken briefly to clone the handle; never held
    /// across I/O or another lock.
    disk: Mutex<Option<Arc<dyn LayerPersistence>>>,
    /// Base images recorded by successful `FROM` pulls, keyed by the
    /// reference string. A degraded build whose pull fails after
    /// retries falls back here instead of dying — the image content is
    /// already local. Not budgeted: a handful of base references per
    /// fleet, and the underlying `Fs` is shared-by-`Arc` anyway.
    bases: Mutex<HashMap<String, Image>>,
}

impl Default for StoreInner {
    fn default() -> StoreInner {
        StoreInner {
            shards: (0..STORE_SHARDS).map(|_| Mutex::default()).collect(),
            ledger: Mutex::default(),
            clock: AtomicU64::new(0),
            budget: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            logical_bytes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            disk: Mutex::new(None),
            bases: Mutex::default(),
        }
    }
}

/// Content-addressed storage for layers, keyed by [`CacheKey`].
///
/// The store is a *shared handle*: cloning shares the underlying
/// storage (`Arc`), every method takes `&self`, and the key space is
/// sharded across independent locks — concurrent builds of similar
/// Dockerfiles get cross-build cache hits instead of duplicate
/// snapshots, without serializing on one store-wide mutex.
///
/// An optional size budget caps growth: when an insert pushes the
/// store past its budget, the least-recently-hit layers are evicted
/// until it fits. Evicting a mid-chain layer only shortens future
/// replays (the chain walk stops at the first missing key); it can
/// never corrupt a build.
#[derive(Debug, Clone, Default)]
pub struct LayerStore {
    inner: Arc<StoreInner>,
}

impl LayerStore {
    /// An empty, unbounded store.
    pub fn new() -> LayerStore {
        LayerStore::default()
    }

    /// An empty store that evicts least-recently-hit layers once its
    /// approximate size exceeds `bytes` (0 = unlimited).
    pub fn with_budget(bytes: u64) -> LayerStore {
        let store = LayerStore::new();
        store.set_budget(bytes);
        store
    }

    /// Change the size budget (0 = unlimited) and enforce it.
    pub fn set_budget(&self, bytes: u64) {
        self.inner.budget.store(bytes, Ordering::Relaxed);
        self.enforce_budget();
    }

    /// The configured size budget (0 = unlimited).
    pub fn budget(&self) -> u64 {
        self.inner.budget.load(Ordering::Relaxed)
    }

    /// Record a successfully pulled base image under its reference so a
    /// later pull of the same reference that fails after retries can
    /// degrade to local content instead of failing the build.
    pub fn record_base(&self, reference: &str, image: &Image) {
        lock_or_poisoned(&self.inner.bases).insert(reference.to_string(), image.clone());
    }

    /// The locally cached base image for `reference`, if a pull of it
    /// ever succeeded against this store.
    pub fn cached_base(&self, reference: &str) -> Option<Image> {
        lock_or_poisoned(&self.inner.bases).get(reference).cloned()
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<BTreeMap<CacheKey, Entry>> {
        &self.inner.shards[shard_index(key, self.inner.shards.len())]
    }

    fn lock(shard: &Mutex<BTreeMap<CacheKey, Entry>>) -> MutexGuard<'_, BTreeMap<CacheKey, Entry>> {
        lock_or_poisoned(shard)
    }

    fn tick(&self) -> u64 {
        self.inner.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Charge an entry's footprint: overhead unconditionally, payload
    /// blobs only on their first reference (the dedup win).
    fn charge(&self, entry: &Entry) {
        let mut ledger = lock_or_poisoned(&self.inner.ledger);
        let mut new_bytes = entry.overhead;
        for (sha, len) in &entry.inventory {
            let slot = ledger.entry(sha.clone()).or_insert((*len, 0));
            if slot.1 == 0 {
                new_bytes += *len;
            }
            slot.1 += 1;
        }
        self.inner.bytes.fetch_add(new_bytes, Ordering::Relaxed);
        self.inner
            .logical_bytes
            .fetch_add(entry.logical_bytes, Ordering::Relaxed);
    }

    /// Release a removed entry: overhead immediately, each payload blob
    /// when its last referencing layer is gone. The caller must already
    /// have removed the entry from its shard (it is no longer visible,
    /// so it can never be released twice).
    fn release(&self, entry: &Entry) {
        let mut ledger = lock_or_poisoned(&self.inner.ledger);
        let mut freed = entry.overhead;
        for (sha, len) in &entry.inventory {
            if let Some(slot) = ledger.get_mut(sha) {
                slot.1 -= 1;
                if slot.1 == 0 {
                    freed += *len;
                    ledger.remove(sha);
                }
            }
        }
        self.inner.bytes.fetch_sub(freed, Ordering::Relaxed);
        self.inner
            .logical_bytes
            .fetch_sub(entry.logical_bytes, Ordering::Relaxed);
    }

    /// Attach a durable backing tier. Every subsequent insert is
    /// written through to it and every lookup miss falls through to it,
    /// so two processes attached to the same store directory share a
    /// warm cache across their lifetimes.
    pub fn set_persistence(&self, disk: Arc<dyn LayerPersistence>) {
        *lock_or_poisoned(&self.inner.disk) = Some(disk);
    }

    /// The attached persistence tier, if any.
    pub fn persistence(&self) -> Option<Arc<dyn LayerPersistence>> {
        lock_or_poisoned(&self.inner.disk).clone()
    }

    /// Save a layer under its own key (replaces an equal key — the
    /// content address makes the old and new layer interchangeable),
    /// then evict down to the budget if necessary. With a persistence
    /// tier attached the layer is also written through to disk.
    pub fn insert(&self, layer: Layer) {
        let layer = self.insert_memory(layer);
        if let Some(disk) = self.persistence() {
            // Outside every store lock: persistence does real I/O. The
            // parent rides along (when still in memory) so the disk
            // tier can encode a delta instead of a full record.
            let parent = layer.parent.as_ref().and_then(|p| self.peek_memory(p));
            disk.persist_with_parent(&layer, parent.as_deref());
        }
    }

    /// The in-memory entry for `key`, untouched: no stats, no LRU
    /// refresh, no disk fallthrough (a disk load here would recurse
    /// into the tier this lookup is feeding).
    fn peek_memory(&self, key: &CacheKey) -> Option<Arc<Layer>> {
        Self::lock(self.shard(key))
            .get(key)
            .map(|entry| Arc::clone(&entry.layer))
    }

    /// The in-memory half of [`insert`](Self::insert); returns the
    /// shared handle so disk-loaded layers skip the write-through.
    fn insert_memory(&self, layer: Layer) -> Arc<Layer> {
        // Footprint and inventory are computed before any lock; the
        // blob digests this forces are memoized in the blobs
        // themselves, so snapshot chains only ever hash new bytes.
        let overhead = layer_overhead(&layer);
        let inventory = blob_inventory(&layer);
        let logical_bytes = overhead + inventory.iter().map(|(_, len)| len).sum::<u64>();
        let entry = Entry {
            overhead,
            logical_bytes,
            inventory,
            last_hit: self.tick(),
            layer: Arc::new(layer),
        };
        let key = entry.layer.id.clone();
        let layer = Arc::clone(&entry.layer);
        {
            // The byte counters move while the shard lock is held: an
            // entry is never visible to an evictor (which must take
            // this same lock to remove it) before its bytes are
            // counted, so the counters cannot underflow.
            let mut shard = Self::lock(self.shard(&key));
            self.charge(&entry);
            if let Some(old) = shard.insert(key, entry) {
                self.release(&old);
            }
        }
        self.enforce_budget();
        layer
    }

    /// Shared lookup core: LRU refresh on a hit, optional stat
    /// counting, and a caller-chosen projection of the entry. A memory
    /// miss falls through to the persistence tier (outside the shard
    /// lock — disk loads do real I/O); a disk hit is promoted into
    /// memory and counts as a hit.
    fn lookup<T>(
        &self,
        key: &CacheKey,
        count_stats: bool,
        project: impl FnOnce(&Arc<Layer>) -> T,
    ) -> Option<T> {
        {
            let mut shard = Self::lock(self.shard(key));
            if let Some(entry) = shard.get_mut(key) {
                entry.last_hit = self.inner.clock.fetch_add(1, Ordering::Relaxed);
                if count_stats {
                    self.inner.hits.fetch_add(1, Ordering::Relaxed);
                }
                return Some(project(&entry.layer));
            }
        }
        if let Some(layer) = self.persistence().and_then(|disk| disk.load(key)) {
            // Promote without re-persisting (the disk already has it).
            // A concurrent promotion of the same key is idempotent:
            // content-addressed layers replace interchangeably.
            let layer = self.insert_memory(layer);
            if count_stats {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                self.inner.disk_hits.fetch_add(1, Ordering::Relaxed);
            }
            return Some(project(&layer));
        }
        if count_stats {
            self.inner.misses.fetch_add(1, Ordering::Relaxed);
        }
        None
    }

    /// Look a layer up by key; a hit refreshes the layer's LRU
    /// position. The returned handle is an O(1) `Arc` clone — no
    /// filesystem copy happens, under the shard lock or after it.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Layer>> {
        self.lookup(key, true, Arc::clone)
    }

    /// Clone only the replayable *state* of a cached layer — no
    /// filesystem copy. The builder's chain walk consults every layer
    /// of a cached prefix but materializes just the deepest one; this
    /// keeps the walk O(state), not O(image) — *including* on the
    /// disk tier, where a miss asks the persistence layer for the
    /// state record alone (no tree deserialization, no promotion).
    /// Counts as a hit (LRU refresh included), exactly like
    /// [`LayerStore::get`].
    pub fn peek_state(&self, key: &CacheKey) -> Option<LayerState> {
        {
            let mut shard = Self::lock(self.shard(key));
            if let Some(entry) = shard.get_mut(key) {
                entry.last_hit = self.inner.clock.fetch_add(1, Ordering::Relaxed);
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                return Some(entry.layer.state.clone());
            }
        }
        if let Some(state) = self.persistence().and_then(|disk| disk.load_state(key)) {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
            self.inner.disk_hits.fetch_add(1, Ordering::Relaxed);
            return Some(state);
        }
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// The second half of a peek-then-materialize sequence: fetch the
    /// full layer for a key [`peek_state`](Self::peek_state) already
    /// counted, refreshing its LRU position but *not* the hit/miss
    /// counters — one logical lookup stays one statistic.
    pub fn materialize(&self, key: &CacheKey) -> Option<Arc<Layer>> {
        self.lookup(key, false, Arc::clone)
    }

    /// Is the key cached, in memory or on the persistence tier? (No
    /// stats, no LRU refresh, no promotion.)
    pub fn contains(&self, key: &CacheKey) -> bool {
        if Self::lock(self.shard(key)).contains_key(key) {
            return true;
        }
        self.persistence().is_some_and(|disk| disk.has(key))
    }

    /// Drop every in-memory layer (what a `build --no-cache` followed
    /// by prune would do; also test isolation). Usage counters survive;
    /// the persistence tier is untouched — durable layers are removed
    /// by the store's own garbage collection, never by a cache prune.
    pub fn clear(&self) {
        for shard in &self.inner.shards {
            // Release per entry under the shard lock (not a blanket
            // store(0)): a concurrent insert into another shard must
            // not have its bytes wiped out from under it.
            let mut shard = Self::lock(shard);
            for (_, entry) in std::mem::take(&mut *shard) {
                self.release(&entry);
            }
        }
    }

    /// Number of cached layers.
    pub fn len(&self) -> usize {
        self.inner.shards.iter().map(|s| Self::lock(s).len()).sum()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate deduplicated bytes stored (shared payload blobs
    /// charged once across all layers).
    pub fn bytes(&self) -> u64 {
        self.inner.bytes.load(Ordering::Relaxed)
    }

    /// All keys, sorted (deterministic iteration for reports).
    pub fn keys(&self) -> Vec<CacheKey> {
        let mut keys: Vec<CacheKey> = self
            .inner
            .shards
            .iter()
            .flat_map(|s| Self::lock(s).keys().cloned().collect::<Vec<_>>())
            .collect();
        keys.sort();
        keys
    }

    /// Aggregate usage counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            layers: self.len(),
            bytes: self.bytes(),
            logical_bytes: self.inner.logical_bytes.load(Ordering::Relaxed),
            blobs: lock_or_poisoned(&self.inner.ledger).len() as u64,
            budget: self.budget(),
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            evictions: self.inner.evictions.load(Ordering::Relaxed),
            disk_hits: self.inner.disk_hits.load(Ordering::Relaxed),
        }
    }

    /// Evict least-recently-hit layers until the store fits its budget.
    /// One scan gathers every entry's (last-hit, key); victims are then
    /// taken in LRU order until the deduplicated byte counter fits —
    /// evicting a layer only frees payload bytes its blobs no longer
    /// share with a surviving layer, so the loop re-reads the counter
    /// after each removal instead of predicting sizes. Locks one shard
    /// at a time (never nested with another shard); the outer loop
    /// re-checks because concurrent inserts can land mid-pass.
    fn enforce_budget(&self) {
        let budget = self.budget();
        if budget == 0 {
            return;
        }
        while self.bytes() > budget {
            let mut candidates: Vec<(u64, CacheKey)> = Vec::new();
            for shard in &self.inner.shards {
                for (key, entry) in Self::lock(shard).iter() {
                    candidates.push((entry.last_hit, key.clone()));
                }
            }
            candidates.sort_unstable_by_key(|(last_hit, _)| *last_hit);
            let mut removed_any = false;
            for (_, key) in candidates {
                if self.bytes() <= budget {
                    break;
                }
                if let Some(old) = Self::lock(self.shard(&key)).remove(&key) {
                    self.release(&old);
                    self.inner.evictions.fetch_add(1, Ordering::Relaxed);
                    removed_any = true;
                }
            }
            if !removed_any {
                break; // nothing removable (empty, or raced away)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Distro;

    fn meta() -> ImageMeta {
        ImageMeta {
            name: "t".into(),
            tag: "1".into(),
            distro: Distro::Alpine,
            libc: "musl-1.2".into(),
            env: vec![],
            binaries: vec![],
        }
    }

    fn layer(id: &CacheKey, parent: Option<&CacheKey>) -> Layer {
        Layer {
            id: id.clone(),
            parent: parent.cloned(),
            fs: Fs::new(),
            state: LayerState {
                args: vec![],
                stage: Some(StageSnapshot {
                    meta: meta(),
                    env: vec![],
                    shell: vec!["/bin/sh".into(), "-c".into()],
                    cwd: "/".into(),
                }),
            },
        }
    }

    #[test]
    fn keys_are_deterministic() {
        let a = CacheKey::compute(None, "FROM alpine:3.19", "", "seccomp");
        let b = CacheKey::compute(None, "FROM alpine:3.19", "", "seccomp");
        assert_eq!(a, b);
        assert_eq!(a.as_hex().len(), 64);
        assert_eq!(a.short().len(), 12);
        assert_eq!(a.to_string(), a.as_hex());
    }

    #[test]
    fn every_field_discriminates() {
        let parent = CacheKey::compute(None, "FROM alpine:3.19", "", "seccomp");
        let base = CacheKey::compute(Some(&parent), "RUN true", "ctx", "seccomp");
        assert_ne!(base, CacheKey::compute(None, "RUN true", "ctx", "seccomp"));
        assert_ne!(
            base,
            CacheKey::compute(Some(&parent), "RUN false", "ctx", "seccomp")
        );
        assert_ne!(
            base,
            CacheKey::compute(Some(&parent), "RUN true", "ctx2", "seccomp")
        );
        assert_ne!(
            base,
            CacheKey::compute(Some(&parent), "RUN true", "ctx", "fakeroot")
        );
    }

    #[test]
    fn store_roundtrip() {
        let store = LayerStore::new();
        assert!(store.is_empty());
        let k1 = CacheKey::compute(None, "FROM alpine:3.19", "", "none");
        let k2 = CacheKey::compute(Some(&k1), "RUN true", "", "none");
        store.insert(layer(&k1, None));
        store.insert(layer(&k2, Some(&k1)));
        assert_eq!(store.len(), 2);
        assert!(store.contains(&k1));
        assert_eq!(store.get(&k2).unwrap().parent.as_ref(), Some(&k1));
        assert_eq!(store.keys().len(), 2);
        store.clear();
        assert!(store.is_empty());
        assert!(store.get(&k1).is_none());
    }

    #[test]
    fn clones_share_storage() {
        let store = LayerStore::new();
        let handle = store.clone();
        let k = CacheKey::compute(None, "FROM alpine:3.19", "", "none");
        store.insert(layer(&k, None));
        assert!(handle.contains(&k), "clone sees the insert");
        assert_eq!(handle.len(), 1);
        handle.clear();
        assert!(store.is_empty(), "clear through either handle");
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let store = LayerStore::new();
        let k = CacheKey::compute(None, "FROM alpine:3.19", "", "none");
        let missing = CacheKey::compute(None, "RUN nope", "", "none");
        store.insert(layer(&k, None));
        assert!(store.get(&k).is_some());
        assert!(store.get(&missing).is_none());
        let stats = store.stats();
        assert_eq!(stats.layers, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert!(stats.bytes > 0, "layers have a nonzero footprint");
        assert!(stats.to_string().contains("1 hits"));
    }

    /// A layer whose filesystem carries `bytes` of file payload,
    /// *distinct per key* (the id is stamped into the bytes) so LRU
    /// tests measure eviction, not blob dedup.
    fn sized_layer(id: &CacheKey, bytes: usize) -> Layer {
        let mut l = layer(id, None);
        let root = zr_vfs::Access::root();
        let mut data = vec![0u8; bytes];
        let stamp = id.as_hex().as_bytes();
        data[..stamp.len().min(bytes)].copy_from_slice(&stamp[..stamp.len().min(bytes)]);
        l.fs.mkdir_p("/data", 0o755).unwrap();
        l.fs.write_file("/data/blob", 0o644, data, &root).unwrap();
        l
    }

    #[test]
    fn budget_evicts_least_recently_hit() {
        let store = LayerStore::new();
        let keys: Vec<CacheKey> = (0..4)
            .map(|i| CacheKey::compute(None, &format!("RUN step-{i}"), "", "none"))
            .collect();
        for k in &keys {
            store.insert(sized_layer(k, 4096));
        }
        let four = store.bytes();
        // Refresh key 0 so key 1 becomes the LRU victim.
        assert!(store.get(&keys[0]).is_some());
        // Budget for roughly three of the four layers.
        store.set_budget(four - 2048);
        assert!(store.bytes() <= store.budget(), "evicted down to budget");
        assert!(!store.contains(&keys[1]), "LRU layer evicted first");
        assert!(store.contains(&keys[0]), "recently hit layer survives");
        assert!(store.stats().evictions >= 1);
    }

    #[test]
    fn shared_blobs_are_charged_once() {
        let store = LayerStore::new();
        let root = zr_vfs::Access::root();
        // One base fs with a 8 KiB payload; two snapshot layers share
        // it (the second adds a small file, CoW-style).
        let k1 = CacheKey::compute(None, "FROM base", "", "none");
        let k2 = CacheKey::compute(Some(&k1), "RUN touch /x", "", "none");
        let mut base = Fs::new();
        base.write_file("/big", 0o644, vec![9u8; 8192], &root)
            .unwrap();
        let mut l1 = layer(&k1, None);
        l1.fs = base.clone();
        let mut l2 = layer(&k2, Some(&k1));
        let mut snap = base.clone();
        snap.write_file("/x", 0o644, b"tiny".to_vec(), &root)
            .unwrap();
        l2.fs = snap;

        store.insert(l1);
        let after_one = store.bytes();
        store.insert(l2);
        let stats = store.stats();
        assert!(
            store.bytes() < after_one + 8192,
            "the shared 8 KiB blob must not be charged twice: \
             one layer {after_one}, both {}",
            store.bytes()
        );
        assert!(stats.logical_bytes > stats.bytes, "dedup saves bytes");
        assert!(stats.dedup_saved() >= 8192);
        assert_eq!(stats.blobs, 2, "big blob + tiny blob");
        // Evicting the first layer must keep the shared blob charged
        // (the second still references it) …
        let before = store.bytes();
        store.insert({
            // replace k1 with itself to exercise replace-release
            let mut l = layer(&k1, None);
            l.fs = base.clone();
            l
        });
        assert_eq!(store.bytes(), before, "replacement is byte-neutral");
        store.clear();
        assert_eq!(store.bytes(), 0, "clear releases everything");
        assert_eq!(store.stats().blobs, 0);
        assert_eq!(store.stats().logical_bytes, 0);
    }

    /// An in-memory stand-in for the on-disk tier: enough to pin the
    /// write-through / fallthrough / promotion contract without
    /// touching a filesystem (zr-store's integration tests do that).
    #[derive(Debug, Default)]
    struct MockDisk {
        layers: Mutex<BTreeMap<CacheKey, Layer>>,
        persists: AtomicU64,
        loads: AtomicU64,
    }

    impl LayerPersistence for MockDisk {
        fn persist(&self, layer: &Layer) {
            self.persists.fetch_add(1, Ordering::Relaxed);
            lock_or_poisoned(&self.layers).insert(layer.id.clone(), layer.clone());
        }
        fn load(&self, key: &CacheKey) -> Option<Layer> {
            self.loads.fetch_add(1, Ordering::Relaxed);
            lock_or_poisoned(&self.layers).get(key).cloned()
        }
        fn has(&self, key: &CacheKey) -> bool {
            lock_or_poisoned(&self.layers).contains_key(key)
        }
        fn keys(&self) -> Vec<CacheKey> {
            lock_or_poisoned(&self.layers).keys().cloned().collect()
        }
    }

    #[test]
    fn persistence_tier_sees_inserts_and_serves_misses() {
        let disk = Arc::new(MockDisk::default());
        let store = LayerStore::new();
        store.set_persistence(disk.clone());
        let k = CacheKey::compute(None, "FROM alpine:3.19", "", "none");
        store.insert(layer(&k, None));
        assert_eq!(disk.persists.load(Ordering::Relaxed), 1, "write-through");

        // A second handle over the same disk (a "second process"): its
        // memory is cold, the lookup falls through and promotes.
        let second = LayerStore::new();
        second.set_persistence(disk.clone());
        assert!(second.contains(&k), "contains consults the disk tier");
        assert!(second.get(&k).is_some(), "miss falls through to disk");
        let stats = second.stats();
        assert_eq!((stats.hits, stats.disk_hits, stats.misses), (1, 1, 0));
        assert_eq!(second.len(), 1, "disk hit promoted into memory");
        // The promotion must not echo back to disk.
        assert_eq!(disk.persists.load(Ordering::Relaxed), 1);
        // Promoted layers answer from memory from now on.
        let loads = disk.loads.load(Ordering::Relaxed);
        assert!(second.get(&k).is_some());
        assert_eq!(disk.loads.load(Ordering::Relaxed), loads);
        assert_eq!(second.stats().disk_hits, 1);

        // clear() prunes memory only; the durable tier survives.
        second.clear();
        assert!(second.is_empty());
        assert!(disk.has(&k));
        assert!(second.get(&k).is_some(), "reload after prune");
    }

    #[test]
    fn inserts_respect_the_budget() {
        let store = LayerStore::with_budget(12 * 1024);
        for i in 0..32 {
            let k = CacheKey::compute(None, &format!("RUN step-{i}"), "", "none");
            store.insert(sized_layer(&k, 4096));
        }
        assert!(store.bytes() <= store.budget());
        assert!(store.len() < 32, "older layers were evicted");
        assert!(store.stats().evictions > 0);
        // Zero budget means unlimited again.
        store.set_budget(0);
        let before = store.len();
        let k = CacheKey::compute(None, "RUN one-more", "", "none");
        store.insert(sized_layer(&k, 4096));
        assert_eq!(store.len(), before + 1);
    }
}
