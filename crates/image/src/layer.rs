//! The instruction-level layer cache (ch-image's build cache).
//!
//! Every successfully executed Dockerfile instruction snapshots the
//! container filesystem into a [`Layer`], addressed by a [`CacheKey`]
//! over (parent layer, normalized instruction text, build-context
//! digest, strategy configuration). A rebuild walks the same key chain
//! and restores snapshots instead of executing, until the first key the
//! store does not know — ch-image's `N* INSTR` hit versus `N. INSTR`
//! miss markers, which is where iterative unprivileged builds get their
//! speed.
//!
//! The store is builder-side state (it lives next to [`ImageStore`] in
//! `zr-build`'s `Builder`), but the *data model* belongs here with the
//! other image storage types.
//!
//! [`ImageStore`]: crate::store::ImageStore

use std::collections::BTreeMap;

use zeroroot_core::digest::FieldDigest;
use zr_vfs::fs::Fs;

use crate::image::ImageMeta;

/// A layer cache key: 64 hex characters of a field-delimited SHA-256
/// over everything that decides an instruction's outcome.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheKey(String);

impl CacheKey {
    /// Compute the key for one instruction.
    ///
    /// * `parent` — the previous instruction's key (`None` for the
    ///   first instruction), chaining the whole prefix into this key.
    /// * `instruction` — the normalized instruction text (ARG values
    ///   resolved, FROM references substituted).
    /// * `context` — digest of the build-context content COPY/ADD
    ///   sources refer to; empty for instructions without context.
    /// * `config` — the active strategy configuration (`--force` flag,
    ///   container type, host libc): a strategy change must invalidate
    ///   the chain because the same RUN behaves differently under it.
    pub fn compute(
        parent: Option<&CacheKey>,
        instruction: &str,
        context: &str,
        config: &str,
    ) -> CacheKey {
        let mut d = FieldDigest::new("zr-layer-v1");
        d.field(parent.map_or("", |p| p.as_hex()).as_bytes())
            .field(instruction.as_bytes())
            .field(context.as_bytes())
            .field(config.as_bytes());
        CacheKey(d.finish())
    }

    /// The hex rendering (stable, ordered, log-friendly).
    pub fn as_hex(&self) -> &str {
        &self.0
    }

    /// Abbreviated id for logs (`git log --oneline` style).
    pub fn short(&self) -> &str {
        &self.0[..12]
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The builder-side stage state a snapshot must restore besides the
/// filesystem: metadata, ENV/SHELL state, and the working directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSnapshot {
    /// Image metadata as of this layer.
    pub meta: ImageMeta,
    /// Effective ENV state (image defaults + ENV instructions).
    pub env: Vec<(String, String)>,
    /// The SHELL prefix for shell-form RUN.
    pub shell: Vec<String>,
    /// Working directory (WORKDIR state).
    pub cwd: String,
}

/// Everything a replay needs to continue *after* this layer without
/// executing anything up to and including it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerState {
    /// ARG values accumulated so far (resolved).
    pub args: Vec<(String, String)>,
    /// Stage state; `None` for layers before the first FROM (a
    /// Dockerfile may open with ARG instructions).
    pub stage: Option<StageSnapshot>,
}

/// One cached layer: the filesystem snapshot plus replayable state.
#[derive(Debug, Clone)]
pub struct Layer {
    /// This layer's cache key.
    pub id: CacheKey,
    /// The parent layer's key (`None` for the first instruction).
    pub parent: Option<CacheKey>,
    /// Filesystem snapshot taken after the instruction ran (empty for
    /// pre-FROM layers, which have no stage filesystem yet).
    pub fs: Fs,
    /// Replayable builder state.
    pub state: LayerState,
}

/// Content-addressed storage for layers, keyed by [`CacheKey`].
#[derive(Debug, Clone, Default)]
pub struct LayerStore {
    layers: BTreeMap<CacheKey, Layer>,
}

impl LayerStore {
    /// An empty store.
    pub fn new() -> LayerStore {
        LayerStore::default()
    }

    /// Save a layer under its own key (replaces an equal key — the
    /// content address makes the old and new layer interchangeable).
    pub fn insert(&mut self, layer: Layer) {
        self.layers.insert(layer.id.clone(), layer);
    }

    /// Look a layer up by key.
    pub fn get(&self, key: &CacheKey) -> Option<&Layer> {
        self.layers.get(key)
    }

    /// Is the key cached?
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.layers.contains_key(key)
    }

    /// Drop every layer (what a `build --no-cache` followed by prune
    /// would do; also test isolation).
    pub fn clear(&mut self) {
        self.layers.clear();
    }

    /// Number of cached layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// All keys, sorted (deterministic iteration for reports).
    pub fn keys(&self) -> impl Iterator<Item = &CacheKey> {
        self.layers.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Distro;

    fn meta() -> ImageMeta {
        ImageMeta {
            name: "t".into(),
            tag: "1".into(),
            distro: Distro::Alpine,
            libc: "musl-1.2".into(),
            env: vec![],
            binaries: vec![],
        }
    }

    fn layer(id: &CacheKey, parent: Option<&CacheKey>) -> Layer {
        Layer {
            id: id.clone(),
            parent: parent.cloned(),
            fs: Fs::new(),
            state: LayerState {
                args: vec![],
                stage: Some(StageSnapshot {
                    meta: meta(),
                    env: vec![],
                    shell: vec!["/bin/sh".into(), "-c".into()],
                    cwd: "/".into(),
                }),
            },
        }
    }

    #[test]
    fn keys_are_deterministic() {
        let a = CacheKey::compute(None, "FROM alpine:3.19", "", "seccomp");
        let b = CacheKey::compute(None, "FROM alpine:3.19", "", "seccomp");
        assert_eq!(a, b);
        assert_eq!(a.as_hex().len(), 64);
        assert_eq!(a.short().len(), 12);
        assert_eq!(a.to_string(), a.as_hex());
    }

    #[test]
    fn every_field_discriminates() {
        let parent = CacheKey::compute(None, "FROM alpine:3.19", "", "seccomp");
        let base = CacheKey::compute(Some(&parent), "RUN true", "ctx", "seccomp");
        assert_ne!(base, CacheKey::compute(None, "RUN true", "ctx", "seccomp"));
        assert_ne!(
            base,
            CacheKey::compute(Some(&parent), "RUN false", "ctx", "seccomp")
        );
        assert_ne!(
            base,
            CacheKey::compute(Some(&parent), "RUN true", "ctx2", "seccomp")
        );
        assert_ne!(
            base,
            CacheKey::compute(Some(&parent), "RUN true", "ctx", "fakeroot")
        );
    }

    #[test]
    fn store_roundtrip() {
        let mut store = LayerStore::new();
        assert!(store.is_empty());
        let k1 = CacheKey::compute(None, "FROM alpine:3.19", "", "none");
        let k2 = CacheKey::compute(Some(&k1), "RUN true", "", "none");
        store.insert(layer(&k1, None));
        store.insert(layer(&k2, Some(&k1)));
        assert_eq!(store.len(), 2);
        assert!(store.contains(&k1));
        assert_eq!(store.get(&k2).unwrap().parent.as_ref(), Some(&k1));
        assert_eq!(store.keys().count(), 2);
        store.clear();
        assert!(store.is_empty());
        assert!(store.get(&k1).is_none());
    }
}
