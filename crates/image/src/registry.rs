//! The registry simulator: fabricates the paper's base images.
//!
//! Each base carries the filesystem skeleton, `/etc/os-release`, shells
//! and package-manager binaries (as real inodes with permission bits —
//! their behaviour is registered separately from `zr-pkg`), and the libc
//! identity used by the bind-mount compatibility experiment.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use zeroroot_core::sync::{lock_or_poisoned, shard_index};

use crate::image::{BinKind, BinarySpec, Distro, Image, ImageMeta, ImageRef, Linkage};
use zr_syscalls::Errno;
use zr_vfs::access::Access;
use zr_vfs::fs::Fs;

/// A fake ELF payload so executables have plausible bytes.
fn elf(name: &str) -> Vec<u8> {
    let mut v = b"\x7fELF".to_vec();
    v.extend_from_slice(name.as_bytes());
    v
}

fn base_skeleton(fs: &mut Fs) {
    for dir in [
        "/bin",
        "/sbin",
        "/usr/bin",
        "/usr/sbin",
        "/usr/lib",
        "/etc",
        "/var/lib",
        "/var/cache",
        "/var/log",
        "/tmp",
        "/root",
        "/home",
        "/dev",
        "/proc",
        "/sys",
        "/run",
    ] {
        fs.mkdir_p(dir, 0o755).expect("skeleton dir");
    }
    let root = Access::root();
    fs.set_perm(
        fs.resolve("/tmp", &root, zr_vfs::FollowMode::Follow)
            .expect("tmp"),
        0o1777,
    )
    .expect("tmp sticky");
}

fn add_binaries(fs: &mut Fs, meta: &ImageMeta) {
    let root = Access::root();
    for b in &meta.binaries {
        if let Some((parent, _)) = zr_vfs::path::split_parent(&b.path) {
            fs.mkdir_p(&parent, 0o755).expect("bin dir");
        }
        fs.write_file(&b.path, 0o755, elf(&b.path), &root)
            .expect("binary");
    }
}

fn write_etc(fs: &mut Fs, distro: Distro, version: &str, pretty: &str) {
    let root = Access::root();
    let os_release = format!(
        "ID={}\nVERSION_ID={}\nPRETTY_NAME=\"{}\"\n",
        distro.id(),
        version,
        pretty
    );
    fs.write_file("/etc/os-release", 0o644, os_release.into_bytes(), &root)
        .expect("os-release");
    fs.write_file(
        "/etc/passwd",
        0o644,
        b"root:x:0:0:root:/root:/bin/sh\nnobody:x:65534:65534::/:/sbin/nologin\n".to_vec(),
        &root,
    )
    .expect("passwd");
    fs.write_file(
        "/etc/group",
        0o644,
        b"root:x:0:\nnogroup:x:65534:\n".to_vec(),
        &root,
    )
    .expect("group");
}

fn alpine_3_19() -> Image {
    let meta = ImageMeta {
        name: "alpine".into(),
        tag: "3.19".into(),
        distro: Distro::Alpine,
        libc: "musl-1.2.4".into(),
        env: vec![("PATH".into(), "/usr/bin:/bin:/usr/sbin:/sbin".into())],
        binaries: vec![
            // busybox provides the shell; it is statically linked — the
            // §6 compatibility case against LD_PRELOAD.
            BinarySpec::new("/bin/busybox", BinKind::Busybox, Linkage::Static),
            BinarySpec::new("/sbin/apk", BinKind::Apk, Linkage::Dynamic),
            BinarySpec::new("/usr/bin/id", BinKind::Id, Linkage::Static),
            BinarySpec::new("/usr/bin/true", BinKind::True, Linkage::Static),
            BinarySpec::new("/bin/chown", BinKind::ChownTool, Linkage::Static),
            BinarySpec::new("/bin/mknod", BinKind::MknodTool, Linkage::Static),
        ],
    };
    let mut fs = Fs::new();
    base_skeleton(&mut fs);
    write_etc(&mut fs, Distro::Alpine, "3.19.1", "Alpine Linux v3.19");
    add_binaries(&mut fs, &meta);
    let root = Access::root();
    // /bin/sh is a symlink to busybox, as on real Alpine.
    fs.symlink("/bin/busybox", "/bin/sh", &root)
        .expect("sh link");
    fs.mkdir_p("/etc/apk", 0o755).expect("apk dir");
    fs.write_file("/etc/apk/world", 0o644, b"busybox\n".to_vec(), &root)
        .expect("world");
    fs.mkdir_p("/lib/apk/db", 0o755).expect("apk db");
    fs.write_file(
        "/lib/apk/db/installed",
        0o644,
        b"P:busybox\nV:1.36.1-r15\n\n".to_vec(),
        &root,
    )
    .expect("apk installed db");
    Image { meta, fs }
}

fn centos_7() -> Image {
    let meta = ImageMeta {
        name: "centos".into(),
        tag: "7".into(),
        distro: Distro::Centos,
        libc: "glibc-2.17".into(),
        env: vec![("PATH".into(), "/usr/bin:/bin:/usr/sbin:/sbin".into())],
        binaries: vec![
            BinarySpec::new("/bin/bash", BinKind::Shell, Linkage::Dynamic),
            BinarySpec::new("/usr/bin/rpm", BinKind::Rpm, Linkage::Dynamic),
            BinarySpec::new("/usr/bin/yum", BinKind::Yum, Linkage::Dynamic),
            BinarySpec::new("/usr/bin/id", BinKind::Id, Linkage::Dynamic),
            BinarySpec::new("/usr/bin/true", BinKind::True, Linkage::Dynamic),
            BinarySpec::new("/usr/bin/chown", BinKind::ChownTool, Linkage::Dynamic),
            BinarySpec::new("/usr/bin/mknod", BinKind::MknodTool, Linkage::Dynamic),
        ],
    };
    let mut fs = Fs::new();
    base_skeleton(&mut fs);
    write_etc(&mut fs, Distro::Centos, "7", "CentOS Linux 7 (Core)");
    add_binaries(&mut fs, &meta);
    let root = Access::root();
    fs.write_file(
        "/etc/redhat-release",
        0o644,
        b"CentOS Linux release 7.9.2009 (Core)\n".to_vec(),
        &root,
    )
    .expect("redhat-release");
    fs.symlink("/bin/bash", "/bin/sh", &root).expect("sh link");
    fs.mkdir_p("/var/lib/rpm", 0o755).expect("rpmdb dir");
    fs.write_file("/var/lib/rpm/Packages", 0o644, b"rpmdb\n".to_vec(), &root)
        .expect("rpmdb");
    fs.mkdir_p("/var/cache/yum", 0o755).expect("yum cache");
    Image { meta, fs }
}

fn debian_12() -> Image {
    let meta = ImageMeta {
        name: "debian".into(),
        tag: "12".into(),
        distro: Distro::Debian,
        libc: "glibc-2.36".into(),
        env: vec![("PATH".into(), "/usr/bin:/bin:/usr/sbin:/sbin".into())],
        binaries: vec![
            BinarySpec::new("/usr/bin/dash", BinKind::Shell, Linkage::Dynamic),
            BinarySpec::new("/usr/bin/dpkg", BinKind::Dpkg, Linkage::Dynamic),
            BinarySpec::new("/usr/bin/apt", BinKind::Apt, Linkage::Dynamic),
            BinarySpec::new("/usr/bin/apt-get", BinKind::AptGet, Linkage::Dynamic),
            BinarySpec::new("/usr/bin/id", BinKind::Id, Linkage::Dynamic),
            BinarySpec::new("/usr/bin/true", BinKind::True, Linkage::Dynamic),
            BinarySpec::new("/usr/bin/chown", BinKind::ChownTool, Linkage::Dynamic),
            BinarySpec::new("/usr/bin/mknod", BinKind::MknodTool, Linkage::Dynamic),
            BinarySpec::new(
                "/usr/sbin/unminimize",
                BinKind::Unminimize,
                Linkage::Dynamic,
            ),
        ],
    };
    let mut fs = Fs::new();
    base_skeleton(&mut fs);
    write_etc(
        &mut fs,
        Distro::Debian,
        "12",
        "Debian GNU/Linux 12 (bookworm)",
    );
    add_binaries(&mut fs, &meta);
    let root = Access::root();
    fs.write_file("/etc/debian_version", 0o644, b"12.5\n".to_vec(), &root)
        .expect("debian_version");
    fs.symlink("/usr/bin/dash", "/bin/sh", &root)
        .expect("sh link");
    fs.mkdir_p("/var/lib/dpkg", 0o755).expect("dpkg dir");
    fs.write_file("/var/lib/dpkg/status", 0o644, Vec::new(), &root)
        .expect("dpkg status");
    // The _apt user exists for apt's privilege-dropping sandbox.
    fs.append_file(
        "/etc/passwd",
        b"_apt:x:100:65534::/nonexistent:/usr/sbin/nologin\n",
        &root,
    )
    .expect("passwd _apt");
    Image { meta, fs }
}

fn fedora_40() -> Image {
    let mut img = centos_7();
    img.meta.name = "fedora".into();
    img.meta.tag = "40".into();
    img.meta.distro = Distro::Fedora;
    img.meta.libc = "glibc-2.39".into();
    img.meta.binaries.push(BinarySpec::new(
        "/usr/bin/dnf",
        BinKind::Dnf,
        Linkage::Dynamic,
    ));
    let root = Access::root();
    img.fs
        .write_file("/usr/bin/dnf", 0o755, elf("/usr/bin/dnf"), &root)
        .expect("dnf binary");
    img.fs
        .write_file(
            "/etc/os-release",
            0o644,
            b"ID=fedora\nVERSION_ID=40\nPRETTY_NAME=\"Fedora Linux 40\"\n".to_vec(),
            &root,
        )
        .expect("os-release");
    img
}

fn scratch() -> Image {
    let mut fs = Fs::new();
    base_skeleton(&mut fs);
    Image {
        meta: ImageMeta {
            name: "scratch".into(),
            tag: "latest".into(),
            distro: Distro::Scratch,
            libc: String::new(),
            env: vec![],
            binaries: vec![],
        },
        fs,
    }
}

/// Materialize a base image from scratch (the "network fetch" of the
/// simulator — the expensive step the pull-through cache elides).
fn materialize(reference: &ImageRef) -> Result<Image, Errno> {
    match (reference.name.as_str(), reference.tag.as_str()) {
        ("alpine", "3.19") => Ok(alpine_3_19()),
        ("centos", "7") => Ok(centos_7()),
        ("debian", "12") => Ok(debian_12()),
        ("fedora", "40") => Ok(fedora_40()),
        ("scratch", _) => Ok(scratch()),
        _ => Err(Errno::ENOENT),
    }
}

/// Where a [`ShardedRegistry`] gets the images its pull-through cache
/// does not hold.
///
/// The default [`CatalogBackend`] fabricates the paper's catalog
/// in-process (the simulator); `zr-registry` provides a backend that
/// resolves references against a live OCI distribution endpoint over
/// HTTP. Everything above the backend — sharding, the blob cache, the
/// per-reference fetch locks, the modeled [`PullCost`] — is identical
/// either way, so `FROM` works the same against both.
pub trait RegistryBackend: Send + Sync + std::fmt::Debug {
    /// Fetch one image: the expensive "network" step the pull-through
    /// cache elides. Called under the per-reference fetch lock, so
    /// concurrent pulls of the same reference fetch exactly once.
    fn fetch(&self, reference: &ImageRef) -> Result<Image, Errno>;
}

/// The simulator backend: materializes the built-in catalog.
#[derive(Debug, Clone, Copy, Default)]
pub struct CatalogBackend;

impl RegistryBackend for CatalogBackend {
    fn fetch(&self, reference: &ImageRef) -> Result<Image, Errno> {
        materialize(reference)
    }
}

/// Modeled network cost of talking to the registry, so the bench harness
/// can measure how well concurrent builders overlap their pulls.
///
/// Both components default to zero (tests stay fast); the scheduler
/// benches dial them up to model a real registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PullCost {
    /// Round trip paid by *every* pull (manifest check), slept outside
    /// any lock — concurrent pulls overlap it.
    pub round_trip: Duration,
    /// Blob transfer paid only when the pull-through cache misses,
    /// slept while holding that reference's fetch lock — a second pull
    /// of the *same* base waits for the first fetch instead of
    /// fetching again, while pulls of other references proceed.
    pub fetch: Duration,
}

/// Counters describing how a [`ShardedRegistry`] has been used.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Pull requests served.
    pub pulls: u64,
    /// Pulls that had to materialize the image (pull-through misses).
    pub fetches: u64,
    /// Pulls satisfied out of the blob cache.
    pub blob_hits: u64,
    /// Approximate bytes currently held by the blob cache.
    pub blob_bytes: u64,
    /// The configured blob-cache byte budget (0 = unlimited).
    pub blob_budget: u64,
    /// Cached blobs evicted to respect the budget.
    pub evictions: u64,
    /// Pulls per shard (length = shard count).
    pub per_shard: Vec<u64>,
}

/// One cached base image plus the LRU bookkeeping eviction needs.
#[derive(Debug)]
struct CachedBlob {
    image: Image,
    bytes: u64,
    /// Registry-clock value of the last hit (or the fetch that seeded
    /// it) — per-shard maps, globally ordered clock.
    last_hit: u64,
}

/// One shard: its slice of the blob cache plus usage counters.
#[derive(Debug, Default)]
struct Shard {
    blobs: Mutex<HashMap<String, CachedBlob>>,
    /// Per-reference fetch locks: concurrent pulls of the *same*
    /// missing reference serialize on one of these (the second waits,
    /// then hits the cache) while the blob map stays free for other
    /// references — the fetch sleep is never paid under `blobs`.
    fetching: Mutex<HashMap<String, Arc<Mutex<()>>>>,
    pulls: AtomicU64,
    fetches: AtomicU64,
    blob_hits: AtomicU64,
}

impl Shard {
    fn lock(&self) -> MutexGuard<'_, HashMap<String, CachedBlob>> {
        lock_or_poisoned(&self.blobs)
    }

    /// The fetch lock for one reference (created on first use).
    fn fetch_lock(&self, key: &str) -> Arc<Mutex<()>> {
        lock_or_poisoned(&self.fetching)
            .entry(key.to_string())
            .or_default()
            .clone()
    }

    /// Drop the fetch lock entry once the blob is cached.
    fn release_fetch_lock(&self, key: &str) {
        lock_or_poisoned(&self.fetching).remove(key);
    }
}

/// The registry simulator, sharded for concurrent builders.
///
/// The image reference hashes to one of N shards; each shard guards its
/// slice of the pull-through blob cache with its own lock, so builders
/// pulling *different* bases never serialize on each other, and builders
/// pulling the *same* base materialize it once and share the blob.
/// `pull` takes `&self` — one registry handle (behind an `Arc`) serves
/// every worker in a build scheduler.
///
/// An optional byte budget caps the blob cache: shards keep their own
/// LRU ordering (stamped from one registry-wide clock), and when the
/// global byte counter exceeds the budget the least-recently-hit blob
/// across all shards is evicted — one shard lock at a time, never
/// nested. Evicting only costs a refetch on the next pull of that
/// reference; it can never corrupt a build.
#[derive(Debug)]
pub struct ShardedRegistry {
    shards: Vec<Shard>,
    cost: PullCost,
    /// Where cache misses are fetched from (simulator or live wire).
    backend: Arc<dyn RegistryBackend>,
    /// Registry-wide LRU clock (bumped on every blob hit and fetch).
    clock: AtomicU64,
    /// Blob-cache byte budget; 0 means unlimited.
    blob_budget: AtomicU64,
    /// Approximate bytes cached across all shards.
    blob_bytes: AtomicU64,
    evictions: AtomicU64,
}

/// The historical name: early revisions had a single-catalog registry
/// with a `&mut self` pull; the sharded implementation is a drop-in
/// superset, so the old name simply points at it.
pub type Registry = ShardedRegistry;

impl Default for ShardedRegistry {
    fn default() -> ShardedRegistry {
        ShardedRegistry::new()
    }
}

impl ShardedRegistry {
    /// Default shard count — enough that the paper's five bases rarely
    /// collide, small enough to stay cheap to scan.
    pub const DEFAULT_SHARDS: usize = 8;

    /// A fresh registry with [`Self::DEFAULT_SHARDS`] shards and no
    /// modeled latency.
    pub fn new() -> ShardedRegistry {
        ShardedRegistry::with_shards(Self::DEFAULT_SHARDS)
    }

    /// A registry with `shards` shards (clamped to at least 1).
    pub fn with_shards(shards: usize) -> ShardedRegistry {
        ShardedRegistry::with_cost(shards, PullCost::default())
    }

    /// A registry with `shards` shards and a modeled [`PullCost`],
    /// fetching misses from the built-in catalog.
    pub fn with_cost(shards: usize, cost: PullCost) -> ShardedRegistry {
        ShardedRegistry::with_backend(shards, cost, Arc::new(CatalogBackend))
    }

    /// A registry whose cache misses are fetched from `backend` — the
    /// seam `zr-registry` plugs a live OCI distribution endpoint into.
    /// The pull-through blob cache, sharding, and per-reference fetch
    /// locks sit *above* the backend and apply to both.
    pub fn with_backend(
        shards: usize,
        cost: PullCost,
        backend: Arc<dyn RegistryBackend>,
    ) -> ShardedRegistry {
        let shards = shards.max(1);
        ShardedRegistry {
            shards: (0..shards).map(|_| Shard::default()).collect(),
            cost,
            backend,
            clock: AtomicU64::new(0),
            blob_budget: AtomicU64::new(0),
            blob_bytes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Change the blob-cache byte budget (0 = unlimited) and enforce
    /// it immediately.
    pub fn set_blob_budget(&self, bytes: u64) {
        self.blob_budget.store(bytes, Ordering::Relaxed);
        self.enforce_blob_budget();
    }

    /// The configured blob-cache byte budget (0 = unlimited).
    pub fn blob_budget(&self) -> u64 {
        self.blob_budget.load(Ordering::Relaxed)
    }

    /// Approximate bytes currently held by the blob cache.
    pub fn blob_bytes(&self) -> u64 {
        self.blob_bytes.load(Ordering::Relaxed)
    }

    /// Approximate cache footprint of one image: payload bytes (each
    /// blob once — snapshots hand out shared handles) plus a fixed
    /// per-inode overhead.
    fn image_bytes(image: &Image) -> u64 {
        image.fs.content_bytes() + image.fs.inode_count() as u64 * crate::INODE_OVERHEAD
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Evict least-recently-hit blobs (across all shards) until the
    /// cache fits its budget. Takes one shard lock at a time: a scan
    /// pass finds the global LRU victim, a removal pass takes it out —
    /// racing pulls can reinsert, so the outer loop re-checks and
    /// gives up once a full pass frees nothing.
    fn enforce_blob_budget(&self) {
        let budget = self.blob_budget();
        if budget == 0 {
            return;
        }
        while self.blob_bytes() > budget {
            let mut victim: Option<(u64, usize, String)> = None;
            for (idx, shard) in self.shards.iter().enumerate() {
                for (key, blob) in shard.lock().iter() {
                    if victim
                        .as_ref()
                        .is_none_or(|(hit, _, _)| blob.last_hit < *hit)
                    {
                        victim = Some((blob.last_hit, idx, key.clone()));
                    }
                }
            }
            let Some((_, idx, key)) = victim else {
                break; // cache empty
            };
            match self.shards[idx].lock().remove(&key) {
                Some(gone) => {
                    self.blob_bytes.fetch_sub(gone.bytes, Ordering::Relaxed);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break, // raced away; avoid spinning
            }
        }
    }

    /// Known references.
    pub fn catalog() -> Vec<&'static str> {
        vec![
            "alpine:3.19",
            "centos:7",
            "debian:12",
            "fedora:40",
            "scratch:latest",
        ]
    }

    /// Which shard a reference lives on.
    fn shard_of(&self, key: &str) -> &Shard {
        &self.shards[shard_index(key, self.shards.len())]
    }

    /// Pull an image. Ownership is left as materialized-by-root; callers
    /// (the builder) re-own to the unpacking user via
    /// [`Image::chown_all`].
    ///
    /// The first pull of a reference materializes ("fetches") it and
    /// seeds the pull-through cache; later pulls — including concurrent
    /// ones from other builder threads — clone the cached blob.
    pub fn pull(&self, reference: &ImageRef) -> Result<Image, Errno> {
        let key = reference.to_string();
        let shard = self.shard_of(&key);
        shard.pulls.fetch_add(1, Ordering::Relaxed);
        if !self.cost.round_trip.is_zero() {
            // Manifest round trip: every pull pays it, nobody holds a
            // lock over it, so concurrent pulls overlap.
            std::thread::sleep(self.cost.round_trip);
        }
        if let Some(blob) = shard.lock().get_mut(&key) {
            blob.last_hit = self.tick();
            shard.blob_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(blob.image.clone());
        }
        // Miss: serialize on the *per-reference* fetch lock — never on
        // the blob map — so a concurrent pull of the same base waits
        // for this transfer (then hits the cache) while pulls of other
        // references, co-sharded or not, proceed untouched.
        let fetch_lock = shard.fetch_lock(&key);
        let _fetching = lock_or_poisoned(&fetch_lock);
        if let Some(blob) = shard.lock().get_mut(&key) {
            // Another puller finished the fetch while we waited — and
            // may already have dropped the lock entry, in which case
            // fetch_lock() above re-created it; remove it again so the
            // map never retains entries for cached references.
            blob.last_hit = self.tick();
            shard.release_fetch_lock(&key);
            shard.blob_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(blob.image.clone());
        }
        // Fault point: `registry.pull.err` fails the fetch itself, as
        // if the transfer died after the manifest round trip. Cached
        // pulls above are unaffected — only real fetches can fail.
        if zr_fault::fires(zr_fault::points::REGISTRY_PULL_ERR) {
            shard.release_fetch_lock(&key);
            return Err(Errno::EIO);
        }
        let image = match self.backend.fetch(reference) {
            Ok(image) => image,
            Err(errno) => {
                shard.release_fetch_lock(&key);
                return Err(errno);
            }
        };
        if !self.cost.fetch.is_zero() {
            std::thread::sleep(self.cost.fetch);
        }
        shard.fetches.fetch_add(1, Ordering::Relaxed);
        let bytes = Self::image_bytes(&image);
        shard.lock().insert(
            key.clone(),
            CachedBlob {
                image: image.clone(),
                bytes,
                last_hit: self.tick(),
            },
        );
        self.blob_bytes.fetch_add(bytes, Ordering::Relaxed);
        shard.release_fetch_lock(&key);
        self.enforce_blob_budget();
        Ok(image)
    }

    /// Total pulls served (all shards).
    pub fn pulls(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.pulls.load(Ordering::Relaxed))
            .sum()
    }

    /// Total pull-through misses (images actually materialized).
    pub fn fetches(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.fetches.load(Ordering::Relaxed))
            .sum()
    }

    /// Usage counters, including the per-shard pull distribution.
    pub fn stats(&self) -> RegistryStats {
        let per_shard: Vec<u64> = self
            .shards
            .iter()
            .map(|s| s.pulls.load(Ordering::Relaxed))
            .collect();
        RegistryStats {
            pulls: per_shard.iter().sum(),
            fetches: self.fetches(),
            // Counted directly, not derived: a failed pull (unknown
            // reference) is neither a fetch nor a blob hit.
            blob_hits: self
                .shards
                .iter()
                .map(|s| s.blob_hits.load(Ordering::Relaxed))
                .sum(),
            blob_bytes: self.blob_bytes(),
            blob_budget: self.blob_budget(),
            evictions: self.evictions.load(Ordering::Relaxed),
            per_shard,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zr_vfs::FollowMode;

    use std::sync::Arc;

    fn pull(r: &str) -> Image {
        Registry::new().pull(&ImageRef::parse(r).unwrap()).unwrap()
    }

    #[test]
    fn catalog_pulls() {
        for reference in Registry::catalog() {
            let img = pull(reference);
            assert!(
                img.fs.inode_count() > 10,
                "{reference} should have a skeleton"
            );
        }
    }

    #[test]
    fn unknown_image_enoent() {
        let r = Registry::new();
        assert_eq!(
            r.pull(&ImageRef::parse("nosuch:1").unwrap()).err(),
            Some(Errno::ENOENT)
        );
        // A failed pull counts as a pull but as neither a fetch nor a
        // blob hit.
        assert_eq!(r.pulls(), 1);
        assert_eq!(r.fetches(), 0);
        assert_eq!(r.stats().blob_hits, 0);
    }

    #[test]
    fn alpine_has_static_busybox_sh() {
        let img = pull("alpine:3.19");
        let access = Access::root();
        let target = img.fs.readlink("/bin/sh", &access).unwrap();
        assert_eq!(target, "/bin/busybox");
        let spec = img.meta.binary_at("/bin/busybox").unwrap();
        assert_eq!(spec.linkage, Linkage::Static);
        assert_eq!(img.meta.libc, "musl-1.2.4");
    }

    #[test]
    fn centos_has_rpm_and_yum() {
        let img = pull("centos:7");
        assert!(img.meta.binary_at("/usr/bin/rpm").is_some());
        assert!(img.meta.binary_at("/usr/bin/yum").is_some());
        let access = Access::root();
        assert!(img
            .fs
            .stat("/var/lib/rpm/Packages", &access, FollowMode::Follow)
            .is_ok());
        assert_eq!(img.meta.libc, "glibc-2.17");
    }

    #[test]
    fn debian_has_apt_and_apt_user() {
        let img = pull("debian:12");
        assert!(img.meta.binary_at("/usr/bin/apt-get").is_some());
        let access = Access::root();
        let passwd = img.fs.read_file("/etc/passwd", &access).unwrap();
        assert!(String::from_utf8(passwd).unwrap().contains("_apt:x:100:"));
    }

    #[test]
    fn binaries_are_executable_inodes() {
        let img = pull("centos:7");
        let access = Access::root();
        let st = img
            .fs
            .stat("/usr/bin/yum", &access, FollowMode::Follow)
            .unwrap();
        assert_eq!(st.mode & 0o111, 0o111);
        let bytes = img.fs.read_file("/usr/bin/yum", &access).unwrap();
        assert!(bytes.starts_with(b"\x7fELF"));
    }

    #[test]
    fn pull_counts_and_blob_cache() {
        let r = Registry::new();
        let reference = ImageRef::parse("alpine:3.19").unwrap();
        let _ = r.pull(&reference);
        let _ = r.pull(&reference);
        assert_eq!(r.pulls(), 2);
        // The second pull came out of the pull-through cache.
        assert_eq!(r.fetches(), 1);
        let stats = r.stats();
        assert_eq!(stats.pulls, 2);
        assert_eq!(stats.blob_hits, 1);
        assert_eq!(stats.per_shard.len(), ShardedRegistry::DEFAULT_SHARDS);
        assert_eq!(stats.per_shard.iter().sum::<u64>(), 2);
    }

    #[test]
    fn cached_blob_is_a_private_copy() {
        let r = Registry::new();
        let reference = ImageRef::parse("alpine:3.19").unwrap();
        let mut first = r.pull(&reference).unwrap();
        // Mutating the pulled image (as the builder's chown_all does)
        // must not corrupt the cached blob other builders will receive.
        first.chown_all(4242, 4242);
        let second = r.pull(&reference).unwrap();
        let st = second
            .fs
            .stat("/bin/busybox", &Access::root(), zr_vfs::FollowMode::Follow)
            .unwrap();
        assert_ne!(st.uid, 4242);
    }

    #[test]
    fn concurrent_pulls_fetch_each_base_once() {
        let r = Arc::new(Registry::new());
        let mut handles = Vec::new();
        for i in 0..16 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                let reference = if i % 2 == 0 {
                    "alpine:3.19"
                } else {
                    "debian:12"
                };
                r.pull(&ImageRef::parse(reference).unwrap()).unwrap()
            }));
        }
        for h in handles {
            let img = h.join().unwrap();
            assert!(img.fs.inode_count() > 10);
        }
        assert_eq!(r.pulls(), 16);
        assert_eq!(r.fetches(), 2, "one fetch per distinct base");
    }

    #[test]
    fn blob_budget_evicts_least_recently_pulled() {
        let r = ShardedRegistry::with_shards(4);
        // Cache every base, then re-pull alpine so it is the most
        // recently hit.
        for reference in Registry::catalog() {
            r.pull(&ImageRef::parse(reference).unwrap()).unwrap();
        }
        let full = r.blob_bytes();
        assert!(full > 0);
        let _ = r.pull(&ImageRef::parse("alpine:3.19").unwrap());
        // Budget for roughly half the catalog: the LRU bases go, the
        // freshly hit alpine survives.
        r.set_blob_budget(full / 2);
        assert!(r.blob_bytes() <= r.blob_budget());
        let stats = r.stats();
        assert!(stats.evictions >= 1, "{stats:?}");
        assert_eq!(stats.blob_budget, full / 2);
        let fetches_before = r.fetches();
        let _ = r.pull(&ImageRef::parse("alpine:3.19").unwrap());
        assert_eq!(r.fetches(), fetches_before, "alpine stayed cached");
        // A pull of an evicted base refetches and re-enforces.
        let _ = r.pull(&ImageRef::parse("centos:7").unwrap());
        assert_eq!(r.fetches(), fetches_before + 1);
        assert!(r.blob_bytes() <= r.blob_budget());
    }

    #[test]
    fn shard_count_is_configurable() {
        let r = ShardedRegistry::with_shards(3);
        assert_eq!(r.shard_count(), 3);
        assert_eq!(ShardedRegistry::with_shards(0).shard_count(), 1);
        for reference in Registry::catalog() {
            assert!(r.pull(&ImageRef::parse(reference).unwrap()).is_ok());
        }
        assert_eq!(r.stats().per_shard.len(), 3);
    }

    #[test]
    fn modeled_latency_is_paid_once_per_fetch() {
        let cost = PullCost {
            round_trip: Duration::from_millis(1),
            fetch: Duration::from_millis(10),
        };
        let r = ShardedRegistry::with_cost(4, cost);
        let reference = ImageRef::parse("alpine:3.19").unwrap();
        let t0 = std::time::Instant::now();
        let _ = r.pull(&reference);
        let cold = t0.elapsed();
        let _ = r.pull(&reference);
        assert!(
            cold >= Duration::from_millis(11),
            "cold pull pays rtt+fetch"
        );
        // The warm pull skipping the fetch is asserted on counters
        // (deterministic), not on a wall-clock upper bound (a loaded
        // CI runner can stretch any such bound).
        assert_eq!(r.fetches(), 1, "warm pull skips the fetch");
        assert_eq!(r.stats().blob_hits, 1);
    }
}
