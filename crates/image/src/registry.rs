//! The registry simulator: fabricates the paper's base images.
//!
//! Each base carries the filesystem skeleton, `/etc/os-release`, shells
//! and package-manager binaries (as real inodes with permission bits —
//! their behaviour is registered separately from `zr-pkg`), and the libc
//! identity used by the bind-mount compatibility experiment.

use crate::image::{BinKind, BinarySpec, Distro, Image, ImageMeta, ImageRef, Linkage};
use zr_syscalls::Errno;
use zr_vfs::access::Access;
use zr_vfs::fs::Fs;

/// A fake ELF payload so executables have plausible bytes.
fn elf(name: &str) -> Vec<u8> {
    let mut v = b"\x7fELF".to_vec();
    v.extend_from_slice(name.as_bytes());
    v
}

fn base_skeleton(fs: &mut Fs) {
    for dir in [
        "/bin",
        "/sbin",
        "/usr/bin",
        "/usr/sbin",
        "/usr/lib",
        "/etc",
        "/var/lib",
        "/var/cache",
        "/var/log",
        "/tmp",
        "/root",
        "/home",
        "/dev",
        "/proc",
        "/sys",
        "/run",
    ] {
        fs.mkdir_p(dir, 0o755).expect("skeleton dir");
    }
    let root = Access::root();
    fs.set_perm(
        fs.resolve("/tmp", &root, zr_vfs::FollowMode::Follow)
            .expect("tmp"),
        0o1777,
    )
    .expect("tmp sticky");
}

fn add_binaries(fs: &mut Fs, meta: &ImageMeta) {
    let root = Access::root();
    for b in &meta.binaries {
        if let Some((parent, _)) = zr_vfs::path::split_parent(&b.path) {
            fs.mkdir_p(&parent, 0o755).expect("bin dir");
        }
        fs.write_file(&b.path, 0o755, elf(&b.path), &root)
            .expect("binary");
    }
}

fn write_etc(fs: &mut Fs, distro: Distro, version: &str, pretty: &str) {
    let root = Access::root();
    let os_release = format!(
        "ID={}\nVERSION_ID={}\nPRETTY_NAME=\"{}\"\n",
        distro.id(),
        version,
        pretty
    );
    fs.write_file("/etc/os-release", 0o644, os_release.into_bytes(), &root)
        .expect("os-release");
    fs.write_file(
        "/etc/passwd",
        0o644,
        b"root:x:0:0:root:/root:/bin/sh\nnobody:x:65534:65534::/:/sbin/nologin\n".to_vec(),
        &root,
    )
    .expect("passwd");
    fs.write_file(
        "/etc/group",
        0o644,
        b"root:x:0:\nnogroup:x:65534:\n".to_vec(),
        &root,
    )
    .expect("group");
}

fn alpine_3_19() -> Image {
    let meta = ImageMeta {
        name: "alpine".into(),
        tag: "3.19".into(),
        distro: Distro::Alpine,
        libc: "musl-1.2.4".into(),
        env: vec![("PATH".into(), "/usr/bin:/bin:/usr/sbin:/sbin".into())],
        binaries: vec![
            // busybox provides the shell; it is statically linked — the
            // §6 compatibility case against LD_PRELOAD.
            BinarySpec::new("/bin/busybox", BinKind::Busybox, Linkage::Static),
            BinarySpec::new("/sbin/apk", BinKind::Apk, Linkage::Dynamic),
            BinarySpec::new("/usr/bin/id", BinKind::Id, Linkage::Static),
            BinarySpec::new("/usr/bin/true", BinKind::True, Linkage::Static),
            BinarySpec::new("/bin/chown", BinKind::ChownTool, Linkage::Static),
            BinarySpec::new("/bin/mknod", BinKind::MknodTool, Linkage::Static),
        ],
    };
    let mut fs = Fs::new();
    base_skeleton(&mut fs);
    write_etc(&mut fs, Distro::Alpine, "3.19.1", "Alpine Linux v3.19");
    add_binaries(&mut fs, &meta);
    let root = Access::root();
    // /bin/sh is a symlink to busybox, as on real Alpine.
    fs.symlink("/bin/busybox", "/bin/sh", &root)
        .expect("sh link");
    fs.mkdir_p("/etc/apk", 0o755).expect("apk dir");
    fs.write_file("/etc/apk/world", 0o644, b"busybox\n".to_vec(), &root)
        .expect("world");
    fs.mkdir_p("/lib/apk/db", 0o755).expect("apk db");
    fs.write_file(
        "/lib/apk/db/installed",
        0o644,
        b"P:busybox\nV:1.36.1-r15\n\n".to_vec(),
        &root,
    )
    .expect("apk installed db");
    Image { meta, fs }
}

fn centos_7() -> Image {
    let meta = ImageMeta {
        name: "centos".into(),
        tag: "7".into(),
        distro: Distro::Centos,
        libc: "glibc-2.17".into(),
        env: vec![("PATH".into(), "/usr/bin:/bin:/usr/sbin:/sbin".into())],
        binaries: vec![
            BinarySpec::new("/bin/bash", BinKind::Shell, Linkage::Dynamic),
            BinarySpec::new("/usr/bin/rpm", BinKind::Rpm, Linkage::Dynamic),
            BinarySpec::new("/usr/bin/yum", BinKind::Yum, Linkage::Dynamic),
            BinarySpec::new("/usr/bin/id", BinKind::Id, Linkage::Dynamic),
            BinarySpec::new("/usr/bin/true", BinKind::True, Linkage::Dynamic),
            BinarySpec::new("/usr/bin/chown", BinKind::ChownTool, Linkage::Dynamic),
            BinarySpec::new("/usr/bin/mknod", BinKind::MknodTool, Linkage::Dynamic),
        ],
    };
    let mut fs = Fs::new();
    base_skeleton(&mut fs);
    write_etc(&mut fs, Distro::Centos, "7", "CentOS Linux 7 (Core)");
    add_binaries(&mut fs, &meta);
    let root = Access::root();
    fs.write_file(
        "/etc/redhat-release",
        0o644,
        b"CentOS Linux release 7.9.2009 (Core)\n".to_vec(),
        &root,
    )
    .expect("redhat-release");
    fs.symlink("/bin/bash", "/bin/sh", &root).expect("sh link");
    fs.mkdir_p("/var/lib/rpm", 0o755).expect("rpmdb dir");
    fs.write_file("/var/lib/rpm/Packages", 0o644, b"rpmdb\n".to_vec(), &root)
        .expect("rpmdb");
    fs.mkdir_p("/var/cache/yum", 0o755).expect("yum cache");
    Image { meta, fs }
}

fn debian_12() -> Image {
    let meta = ImageMeta {
        name: "debian".into(),
        tag: "12".into(),
        distro: Distro::Debian,
        libc: "glibc-2.36".into(),
        env: vec![("PATH".into(), "/usr/bin:/bin:/usr/sbin:/sbin".into())],
        binaries: vec![
            BinarySpec::new("/usr/bin/dash", BinKind::Shell, Linkage::Dynamic),
            BinarySpec::new("/usr/bin/dpkg", BinKind::Dpkg, Linkage::Dynamic),
            BinarySpec::new("/usr/bin/apt", BinKind::Apt, Linkage::Dynamic),
            BinarySpec::new("/usr/bin/apt-get", BinKind::AptGet, Linkage::Dynamic),
            BinarySpec::new("/usr/bin/id", BinKind::Id, Linkage::Dynamic),
            BinarySpec::new("/usr/bin/true", BinKind::True, Linkage::Dynamic),
            BinarySpec::new("/usr/bin/chown", BinKind::ChownTool, Linkage::Dynamic),
            BinarySpec::new("/usr/bin/mknod", BinKind::MknodTool, Linkage::Dynamic),
            BinarySpec::new(
                "/usr/sbin/unminimize",
                BinKind::Unminimize,
                Linkage::Dynamic,
            ),
        ],
    };
    let mut fs = Fs::new();
    base_skeleton(&mut fs);
    write_etc(
        &mut fs,
        Distro::Debian,
        "12",
        "Debian GNU/Linux 12 (bookworm)",
    );
    add_binaries(&mut fs, &meta);
    let root = Access::root();
    fs.write_file("/etc/debian_version", 0o644, b"12.5\n".to_vec(), &root)
        .expect("debian_version");
    fs.symlink("/usr/bin/dash", "/bin/sh", &root)
        .expect("sh link");
    fs.mkdir_p("/var/lib/dpkg", 0o755).expect("dpkg dir");
    fs.write_file("/var/lib/dpkg/status", 0o644, Vec::new(), &root)
        .expect("dpkg status");
    // The _apt user exists for apt's privilege-dropping sandbox.
    fs.append_file(
        "/etc/passwd",
        b"_apt:x:100:65534::/nonexistent:/usr/sbin/nologin\n",
        &root,
    )
    .expect("passwd _apt");
    Image { meta, fs }
}

fn fedora_40() -> Image {
    let mut img = centos_7();
    img.meta.name = "fedora".into();
    img.meta.tag = "40".into();
    img.meta.distro = Distro::Fedora;
    img.meta.libc = "glibc-2.39".into();
    img.meta.binaries.push(BinarySpec::new(
        "/usr/bin/dnf",
        BinKind::Dnf,
        Linkage::Dynamic,
    ));
    let root = Access::root();
    img.fs
        .write_file("/usr/bin/dnf", 0o755, elf("/usr/bin/dnf"), &root)
        .expect("dnf binary");
    img.fs
        .write_file(
            "/etc/os-release",
            0o644,
            b"ID=fedora\nVERSION_ID=40\nPRETTY_NAME=\"Fedora Linux 40\"\n".to_vec(),
            &root,
        )
        .expect("os-release");
    img
}

fn scratch() -> Image {
    let mut fs = Fs::new();
    base_skeleton(&mut fs);
    Image {
        meta: ImageMeta {
            name: "scratch".into(),
            tag: "latest".into(),
            distro: Distro::Scratch,
            libc: String::new(),
            env: vec![],
            binaries: vec![],
        },
        fs,
    }
}

/// The registry simulator.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    /// Pulls performed (for "fetch …" log lines and cache statistics).
    pub pulls: u32,
}

impl Registry {
    /// A fresh registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Known references.
    pub fn catalog() -> Vec<&'static str> {
        vec![
            "alpine:3.19",
            "centos:7",
            "debian:12",
            "fedora:40",
            "scratch:latest",
        ]
    }

    /// Pull an image. Ownership is left as materialized-by-root; callers
    /// (the builder) re-own to the unpacking user via
    /// [`Image::chown_all`].
    pub fn pull(&mut self, reference: &ImageRef) -> Result<Image, Errno> {
        self.pulls += 1;
        match (reference.name.as_str(), reference.tag.as_str()) {
            ("alpine", "3.19") => Ok(alpine_3_19()),
            ("centos", "7") => Ok(centos_7()),
            ("debian", "12") => Ok(debian_12()),
            ("fedora", "40") => Ok(fedora_40()),
            ("scratch", _) => Ok(scratch()),
            _ => Err(Errno::ENOENT),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zr_vfs::FollowMode;

    fn pull(r: &str) -> Image {
        Registry::new().pull(&ImageRef::parse(r).unwrap()).unwrap()
    }

    #[test]
    fn catalog_pulls() {
        for reference in Registry::catalog() {
            let img = pull(reference);
            assert!(
                img.fs.inode_count() > 10,
                "{reference} should have a skeleton"
            );
        }
    }

    #[test]
    fn unknown_image_enoent() {
        let mut r = Registry::new();
        assert_eq!(
            r.pull(&ImageRef::parse("nosuch:1").unwrap()).err(),
            Some(Errno::ENOENT)
        );
    }

    #[test]
    fn alpine_has_static_busybox_sh() {
        let img = pull("alpine:3.19");
        let access = Access::root();
        let target = img.fs.readlink("/bin/sh", &access).unwrap();
        assert_eq!(target, "/bin/busybox");
        let spec = img.meta.binary_at("/bin/busybox").unwrap();
        assert_eq!(spec.linkage, Linkage::Static);
        assert_eq!(img.meta.libc, "musl-1.2.4");
    }

    #[test]
    fn centos_has_rpm_and_yum() {
        let img = pull("centos:7");
        assert!(img.meta.binary_at("/usr/bin/rpm").is_some());
        assert!(img.meta.binary_at("/usr/bin/yum").is_some());
        let access = Access::root();
        assert!(img
            .fs
            .stat("/var/lib/rpm/Packages", &access, FollowMode::Follow)
            .is_ok());
        assert_eq!(img.meta.libc, "glibc-2.17");
    }

    #[test]
    fn debian_has_apt_and_apt_user() {
        let img = pull("debian:12");
        assert!(img.meta.binary_at("/usr/bin/apt-get").is_some());
        let access = Access::root();
        let passwd = img.fs.read_file("/etc/passwd", &access).unwrap();
        assert!(String::from_utf8(passwd).unwrap().contains("_apt:x:100:"));
    }

    #[test]
    fn binaries_are_executable_inodes() {
        let img = pull("centos:7");
        let access = Access::root();
        let st = img
            .fs
            .stat("/usr/bin/yum", &access, FollowMode::Follow)
            .unwrap();
        assert_eq!(st.mode & 0o111, 0o111);
        let bytes = img.fs.read_file("/usr/bin/yum", &access).unwrap();
        assert!(bytes.starts_with(b"\x7fELF"));
    }

    #[test]
    fn pull_counts() {
        let mut r = Registry::new();
        let _ = r.pull(&ImageRef::parse("alpine:3.19").unwrap());
        let _ = r.pull(&ImageRef::parse("alpine:3.19").unwrap());
        assert_eq!(r.pulls, 2);
    }
}
