//! Image data model.

use zeroroot_core::digest::FieldDigest;
use zr_vfs::fs::Fs;

/// Distribution family — decides the package manager and its syscall
/// habits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distro {
    /// Alpine: apk, musl, busybox.
    Alpine,
    /// CentOS/RHEL 7: rpm + yum, glibc.
    Centos,
    /// Debian/Ubuntu: dpkg + apt, glibc.
    Debian,
    /// Fedora: rpm + dnf, glibc.
    Fedora,
    /// Empty scratch image.
    Scratch,
}

impl Distro {
    /// os-release `ID=` value.
    pub fn id(self) -> &'static str {
        match self {
            Distro::Alpine => "alpine",
            Distro::Centos => "centos",
            Distro::Debian => "debian",
            Distro::Fedora => "fedora",
            Distro::Scratch => "scratch",
        }
    }
}

/// What a binary in the image *is* — `zr-pkg` maps these to simulated
/// program implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinKind {
    /// POSIX shell (`/bin/sh` or what it links to).
    Shell,
    /// busybox multi-call binary (statically linked).
    Busybox,
    /// Alpine's apk.
    Apk,
    /// rpm (the low-level unpacker that chowns — Figure 1b).
    Rpm,
    /// yum (depsolver wrapping rpm).
    Yum,
    /// dnf (Fedora's yum).
    Dnf,
    /// dpkg.
    Dpkg,
    /// apt (drops privileges for downloads — §5's exception).
    Apt,
    /// apt-get (same engine as apt).
    AptGet,
    /// fakeroot(1), when installed in the image.
    Fakeroot,
    /// Ubuntu's unminimize (a known failure case, §6).
    Unminimize,
    /// /usr/bin/true.
    True,
    /// id(1) — prints uid/gid; handy in RUN lines.
    Id,
    /// coreutils chown(1).
    ChownTool,
    /// mknod(1).
    MknodTool,
    /// The sl(1) train (the paper's Figure 1a payload).
    Sl,
}

/// Linkage of an image binary (decides LD_PRELOAD wrappability).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Linkage {
    /// Subject to LD_PRELOAD interposition.
    Dynamic,
    /// Immune to LD_PRELOAD (busybox-style).
    Static,
}

/// A binary shipped in an image: where it lives and what it is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinarySpec {
    /// Absolute path inside the image.
    pub path: String,
    /// Behaviour key.
    pub kind: BinKind,
    /// Linkage.
    pub linkage: Linkage,
}

impl BinarySpec {
    /// Convenience constructor.
    pub fn new(path: &str, kind: BinKind, linkage: Linkage) -> BinarySpec {
        BinarySpec {
            path: path.into(),
            kind,
            linkage,
        }
    }
}

/// Image metadata (the config blob of an OCI image, reduced to what the
/// experiments need).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageMeta {
    /// Repository name ("alpine").
    pub name: String,
    /// Tag ("3.19").
    pub tag: String,
    /// Distro family.
    pub distro: Distro,
    /// libc identity (Apptainer-style bind mounts must match the host).
    pub libc: String,
    /// Default environment.
    pub env: Vec<(String, String)>,
    /// Binaries present, with behaviours and linkage.
    pub binaries: Vec<BinarySpec>,
}

impl ImageMeta {
    /// Full reference ("alpine:3.19").
    pub fn reference(&self) -> String {
        format!("{}:{}", self.name, self.tag)
    }

    /// Find a binary spec by path.
    pub fn binary_at(&self, path: &str) -> Option<&BinarySpec> {
        self.binaries.iter().find(|b| b.path == path)
    }

    /// Is fakeroot installed?
    pub fn has_fakeroot(&self) -> bool {
        self.binaries.iter().any(|b| b.kind == BinKind::Fakeroot)
    }
}

/// An image: metadata + materialized root filesystem.
#[derive(Debug, Clone)]
pub struct Image {
    /// Metadata.
    pub meta: ImageMeta,
    /// Root filesystem (cheaply cloneable snapshot).
    pub fs: Fs,
}

impl Image {
    /// A deterministic content digest over the image: metadata plus the
    /// filesystem's tree digest (every inode's canonical path, type,
    /// permissions, ownership, and payload digest, in path order — see
    /// [`Fs::tree_digest`]).
    ///
    /// Two builds that produce byte-identical trees — a serial build and
    /// a concurrent one of the same Dockerfile, say — digest equal; the
    /// scheduler's determinism tests and the paper-report gates compare
    /// exactly this. Timestamps are excluded: they encode execution
    /// order, not content.
    ///
    /// The hot-path property: file payloads contribute their blobs'
    /// *memoized* SHA-256 and the tree digest is memoized per content
    /// version, so digesting an image that shares most of its blobs
    /// with an already-digested snapshot hashes only the changed bytes
    /// (plus an O(paths) metadata walk). [`digest_uncached`]
    /// (Self::digest_uncached) recomputes the identical value from raw
    /// bytes; the `P-snap` paper-report gate pins the two equal.
    pub fn digest(&self) -> String {
        self.digest_with(self.fs.tree_digest())
    }

    /// Reference implementation of [`digest`](Self::digest):
    /// byte-identical output with every file payload re-hashed from its
    /// raw bytes and no memo consulted — the "cold full-image walk" the
    /// snapshot benchmarks and the `P-snap` gate compare against.
    pub fn digest_uncached(&self) -> String {
        self.digest_with(self.fs.tree_digest_uncached())
    }

    fn digest_with(&self, tree: String) -> String {
        let mut d = FieldDigest::new("zr-image-v2");
        d.field(self.meta.name.as_bytes())
            .field(self.meta.tag.as_bytes())
            .field(self.meta.distro.id().as_bytes())
            .field(self.meta.libc.as_bytes());
        // Each variable-length list is framed by its element count, so
        // the env/binaries boundary is unambiguous — an env pair can
        // never digest like a pair of binary paths.
        d.field(&(self.meta.env.len() as u64).to_be_bytes());
        for (k, v) in &self.meta.env {
            d.field(k.as_bytes()).field(v.as_bytes());
        }
        d.field(&(self.meta.binaries.len() as u64).to_be_bytes());
        for b in &self.meta.binaries {
            d.field(b.path.as_bytes())
                .field(format!("{:?}/{:?}", b.kind, b.linkage).as_bytes());
        }
        d.field(tree.as_bytes());
        d.finish()
    }

    /// Set every inode's owner — what unpacking a base tarball as an
    /// unprivileged user does to ownership.
    pub fn chown_all(&mut self, uid: u32, gid: u32) {
        let count = self.fs.inode_count();
        // Inode numbers are dense from 1 in a freshly materialized image.
        for ino in 1..=count as u64 {
            if self.fs.inode(ino).is_ok() {
                self.fs.set_owner(ino, uid, gid).expect("live inode");
            }
        }
    }
}

/// A parsed image reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ImageRef {
    /// Repository name.
    pub name: String,
    /// Tag (defaults to "latest").
    pub tag: String,
}

impl ImageRef {
    /// Parse `name[:tag]`.
    pub fn parse(s: &str) -> Option<ImageRef> {
        let s = s.trim();
        if s.is_empty() {
            return None;
        }
        match s.split_once(':') {
            Some((name, tag)) if !name.is_empty() && !tag.is_empty() => Some(ImageRef {
                name: name.into(),
                tag: tag.into(),
            }),
            Some(_) => None,
            None => Some(ImageRef {
                name: s.into(),
                tag: "latest".into(),
            }),
        }
    }
}

impl std::fmt::Display for ImageRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.name, self.tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_ref_parsing() {
        assert_eq!(
            ImageRef::parse("alpine:3.19"),
            Some(ImageRef {
                name: "alpine".into(),
                tag: "3.19".into()
            })
        );
        assert_eq!(
            ImageRef::parse("centos"),
            Some(ImageRef {
                name: "centos".into(),
                tag: "latest".into()
            })
        );
        assert_eq!(ImageRef::parse(""), None);
        assert_eq!(ImageRef::parse("x:"), None);
        assert_eq!(ImageRef::parse(":y"), None);
        assert_eq!(ImageRef::parse("a:b").unwrap().to_string(), "a:b");
    }

    #[test]
    fn meta_helpers() {
        let meta = ImageMeta {
            name: "t".into(),
            tag: "1".into(),
            distro: Distro::Alpine,
            libc: "musl-1.2".into(),
            env: vec![],
            binaries: vec![BinarySpec::new("/sbin/apk", BinKind::Apk, Linkage::Dynamic)],
        };
        assert_eq!(meta.reference(), "t:1");
        assert!(meta.binary_at("/sbin/apk").is_some());
        assert!(meta.binary_at("/bin/sh").is_none());
        assert!(!meta.has_fakeroot());
    }

    #[test]
    fn digest_is_deterministic_and_content_sensitive() {
        let pull = |r: &str| {
            crate::registry::Registry::new()
                .pull(&ImageRef::parse(r).unwrap())
                .unwrap()
        };
        let a = pull("alpine:3.19");
        let b = pull("alpine:3.19");
        assert_eq!(a.digest(), b.digest(), "same content, same digest");
        assert_eq!(a.digest().len(), 64);
        assert_ne!(a.digest(), pull("debian:12").digest());
        assert_eq!(
            a.digest(),
            a.digest_uncached(),
            "memoized digest equals the full-rehash reference"
        );

        // Content edits move the digest; so do ownership changes.
        let mut edited = pull("alpine:3.19");
        edited
            .fs
            .write_file(
                "/etc/motd",
                0o644,
                b"hi\n".to_vec(),
                &zr_vfs::Access::root(),
            )
            .unwrap();
        assert_ne!(a.digest(), edited.digest());
        let mut chowned = pull("alpine:3.19");
        chowned.chown_all(1000, 1000);
        assert_ne!(a.digest(), chowned.digest());
    }

    #[test]
    fn chown_all_rewrites_every_inode() {
        let mut fs = Fs::new();
        fs.mkdir_p("/a/b", 0o755).unwrap();
        let mut img = Image {
            meta: ImageMeta {
                name: "x".into(),
                tag: "y".into(),
                distro: Distro::Scratch,
                libc: String::new(),
                env: vec![],
                binaries: vec![],
            },
            fs,
        };
        img.chown_all(1000, 1000);
        let st = img
            .fs
            .stat("/a/b", &zr_vfs::Access::root(), zr_vfs::FollowMode::Follow)
            .unwrap();
        assert_eq!((st.uid, st.gid), (1000, 1000));
    }
}
