//! # zr-image — container images and the registry simulator
//!
//! Images are a metadata record ([`ImageMeta`]) plus a materialized root
//! filesystem (`zr_vfs::Fs`). Like Charliecloud's storage directory, an
//! image on "disk" is just a tree owned by the unprivileged user — base
//! tarballs may *say* files belong to root, but an unprivileged unpack
//! makes them the user's, which is precisely why in-container root sees
//! its image as root-owned through the single-id map.
//!
//! The [`registry`] module fabricates the paper's base images
//! (`alpine:3.19`, `centos:7`, `debian:12`, `fedora:40`) with their
//! package managers, shells, and distro quirks; `zr-pkg` supplies the
//! *behaviour* of those binaries, keyed by [`BinKind`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod image;
pub mod layer;
pub mod registry;
pub mod store;

/// Fixed per-inode overhead (metadata, directory entries) both byte
/// budgets — the layer store's and the registry blob cache's — charge
/// on top of payload bytes, so `--cache-limit` and `--blob-limit`
/// share one size model.
pub(crate) const INODE_OVERHEAD: u64 = 256;

pub use image::{BinKind, BinarySpec, Distro, Image, ImageMeta, ImageRef, Linkage};
pub use layer::{
    CacheKey, Layer, LayerPersistence, LayerState, LayerStore, StageSnapshot, StoreStats,
};
pub use registry::{
    CatalogBackend, PullCost, Registry, RegistryBackend, RegistryStats, ShardedRegistry,
};
pub use store::ImageStore;
