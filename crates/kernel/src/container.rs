//! The paper's tripartite container classification (§2) and setup rules.
//!
//! * **Type I** — mount namespace only. Setup needs real privilege
//!   (`CAP_SYS_ADMIN` in the initial namespace). Container processes keep
//!   the caller's identity.
//! * **Type II** — mount + *privileged* user namespace: setuid helper
//!   programs (`newuidmap(1)`/`newgidmap(1)`) write a many-id map, so the
//!   container has a full complement of users and groups ("greater
//!   flexibility", §2). Often miscalled "rootless".
//! * **Type III** — mount + *unprivileged* user namespace: fully
//!   unprivileged setup, single-id map (container root ↔ the invoking
//!   user), `setgroups` denied. The only type acceptable at centers that
//!   forbid any elevated access — and the setting where package managers'
//!   privileged syscalls fail, motivating root emulation.
//!
//! The container's image filesystem keeps the *initial* namespace as its
//! superblock owner for Types I and III (it is just a host directory, as
//! in Charliecloud); Type II's helper-mounted storage is owned by the new
//! namespace, which is exactly why chown to mapped ids works there.

use crate::cred::Cred;
use crate::ids::IdMap;
use crate::kernel::Kernel;
use crate::process::{Pid, Process};
use zr_syscalls::caps::{Cap, CapSet};
use zr_syscalls::Errno;
use zr_vfs::fs::Fs;

/// The classification from §2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContainerType {
    /// Mount namespace only; privileged setup.
    TypeI,
    /// Privileged user namespace (setuid helpers); many-id map.
    TypeII,
    /// Unprivileged user namespace; single-id map. Fully unprivileged.
    TypeIII,
}

impl std::fmt::Display for ContainerType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainerType::TypeI => write!(f, "Type I"),
            ContainerType::TypeII => write!(f, "Type II"),
            ContainerType::TypeIII => write!(f, "Type III"),
        }
    }
}

/// What to build a container from.
#[derive(Debug, Clone)]
pub struct ContainerConfig {
    /// Which of the three types to set up.
    pub ctype: ContainerType,
    /// The image root filesystem (materialized by `zr-image`).
    pub image: Fs,
}

/// A running container: the namespace, filesystem, and its init process.
#[derive(Debug, Clone, Copy)]
pub struct Container {
    /// Pid of the container's init (the process RUN instructions exec in).
    pub init_pid: Pid,
    /// The container's user namespace (0 for Type I).
    pub userns: usize,
    /// The container's root filesystem id.
    pub fs: usize,
}

impl Kernel {
    /// Set up a container on behalf of `builder` (the host-side process
    /// invoking the image builder). Fails with `EPERM` when the builder
    /// lacks the privilege the container type requires — the §2 rules.
    pub fn container_create(
        &mut self,
        builder: Pid,
        mut cfg: ContainerConfig,
    ) -> Result<Container, Errno> {
        // Audit mode: every container filesystem this kernel creates
        // inherits the injected nondeterminism sources, so a skewed
        // clock or shuffled readdir reaches the build's file operations.
        if !self.config.nondet.is_clean() {
            cfg.image.set_nondeterminism(self.config.nondet.clone());
        }
        let bcred = self.process(builder).cred.clone();
        match cfg.ctype {
            ContainerType::TypeI => {
                // Privileged setup: CAP_SYS_ADMIN in the initial ns.
                if !self.capable(builder, Cap::SysAdmin, 0) {
                    return Err(Errno::EPERM);
                }
                let fs = self.add_fs(cfg.image, 0);
                let proc = self.container_process(builder, bcred, 0, fs);
                let init_pid = self.add_process(proc);
                Ok(Container {
                    init_pid,
                    userns: 0,
                    fs,
                })
            }
            ContainerType::TypeII => {
                // Needs the setuid helpers; without them setup fails even
                // though the main container process would be unprivileged.
                if !self.config.setuid_helpers {
                    return Err(Errno::EPERM);
                }
                let ns = self.namespaces.create_child(0, bcred.euid);
                {
                    let nsr = self.namespaces.get_mut(ns);
                    // Helper-written subordinate ranges: 65536 ids.
                    nsr.uid_map.push(IdMap {
                        inside_first: 0,
                        outside_first: 100_000,
                        count: 65_536,
                    });
                    nsr.gid_map.push(IdMap {
                        inside_first: 0,
                        outside_first: 100_000,
                        count: 65_536,
                    });
                    nsr.setgroups_allowed = true;
                }
                // Helper-mounted storage: superblock owned by the new ns.
                let fs = self.add_fs(cfg.image, ns);
                let root_kuid = 100_000;
                let cred = Cred::new(root_kuid, root_kuid, CapSet::full(), ns);
                let proc = self.container_process(builder, cred, ns, fs);
                let init_pid = self.add_process(proc);
                Ok(Container {
                    init_pid,
                    userns: ns,
                    fs,
                })
            }
            ContainerType::TypeIII => {
                // Fully unprivileged: always possible.
                let ns = self.namespaces.create_child(0, bcred.euid);
                {
                    let nsr = self.namespaces.get_mut(ns);
                    nsr.uid_map.push(IdMap {
                        inside_first: 0,
                        outside_first: bcred.euid,
                        count: 1,
                    });
                    // user_namespaces(7): an unprivileged gid_map write
                    // requires setgroups denial first.
                    nsr.setgroups_allowed = false;
                    nsr.gid_map.push(IdMap {
                        inside_first: 0,
                        outside_first: bcred.egid,
                        count: 1,
                    });
                }
                // The image is a plain host directory: superblock stays
                // with the initial namespace (the Charliecloud model).
                let fs = self.add_fs(cfg.image, 0);
                let cred = Cred::new(bcred.euid, bcred.egid, CapSet::full(), ns);
                let proc = self.container_process(builder, cred, ns, fs);
                let init_pid = self.add_process(proc);
                Ok(Container {
                    init_pid,
                    userns: ns,
                    fs,
                })
            }
        }
    }

    fn container_process(&self, builder: Pid, cred: Cred, _ns: usize, fs: usize) -> Process {
        let b = self.process(builder);
        Process {
            pid: 0,
            ppid: builder,
            cred,
            fs,
            cwd: "/".into(),
            umask: 0o022,
            arch: b.arch,
            seccomp: b.seccomp.clone(),
            no_new_privs: b.no_new_privs,
            dynamic: true,
            preload_active: false,
            traced: false,
            alive: true,
        }
    }

    /// Run a registered program inside an existing process (exec
    /// semantics: same pid, new program image). Returns the exit status.
    pub fn exec_in(
        &mut self,
        pid: Pid,
        path: &str,
        argv: Vec<String>,
        env: Vec<(String, String)>,
    ) -> Result<i32, Errno> {
        // Delegate to the spawn machinery from the target process itself;
        // fork+exec of `path` from `pid` is observably equivalent for our
        // purposes and reuses the permission checks.
        match self.syscall(
            pid,
            crate::sys::SysCall::Spawn {
                path: path.into(),
                argv,
                env,
            },
        ) {
            Ok(crate::sys::SysRet::Exit(code)) => Ok(code),
            Ok(_) => Err(Errno::EINVAL),
            Err(crate::sys::SysError::Errno(e)) => Err(e),
            Err(crate::sys::SysError::Killed) => Ok(159),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sys::{SysError, SysExt};
    use crate::KernelConfig;

    fn image() -> Fs {
        let mut fs = Fs::new();
        fs.mkdir_p("/etc", 0o755).unwrap();
        fs.mkdir_p("/usr/bin", 0o755).unwrap();
        // Image files are extracted by the (unprivileged) builder, so the
        // host user owns them — the Charliecloud storage model.
        let root = zr_vfs::Access::root();
        fs.write_file("/etc/os-release", 0o644, b"ID=test".to_vec(), &root)
            .unwrap();
        let count = fs.inode_count();
        for ino in 1..=count as u64 {
            if fs.inode(ino).is_ok() {
                fs.set_owner(ino, 1000, 1000).unwrap();
            }
        }
        fs
    }

    #[test]
    fn type_iii_sets_up_unprivileged() {
        let mut k = Kernel::default_kernel();
        let c = k
            .container_create(
                Kernel::HOST_USER_PID,
                ContainerConfig {
                    ctype: ContainerType::TypeIII,
                    image: image(),
                },
            )
            .expect("Type III must not need privilege");
        // Container root sees itself as uid 0 ...
        let mut ctx = k.ctx(c.init_pid);
        assert_eq!(ctx.geteuid(), 0);
        assert_eq!(ctx.getuid(), 0);
        // ... and image files as root-owned (kuid 1000 maps to 0).
        let st = ctx.stat("/etc/os-release").unwrap();
        assert_eq!((st.uid, st.gid), (0, 0));
    }

    #[test]
    fn container_inherits_kernel_nondeterminism() {
        let mut cfg = KernelConfig::default();
        cfg.nondet.clock_skew = 500;
        let mut k = Kernel::new(cfg);
        let c = k
            .container_create(
                Kernel::HOST_USER_PID,
                ContainerConfig {
                    ctype: ContainerType::TypeIII,
                    image: image(),
                },
            )
            .unwrap();
        assert_eq!(k.fs(c.fs).nondeterminism().clock_skew, 500);
        // A file created inside the container observes the skewed clock.
        let before = k.ctx(c.init_pid).stat("/etc/os-release").unwrap().mtime;
        k.ctx(c.init_pid)
            .write_file("/etc/fresh", 0o644, b"x".to_vec())
            .unwrap();
        let st = k.ctx(c.init_pid).stat("/etc/fresh").unwrap();
        assert!(st.mtime > before + 500, "skew shifts fresh mtimes");
    }

    #[test]
    fn type_i_requires_root() {
        let mut k = Kernel::default_kernel();
        assert_eq!(
            k.container_create(
                Kernel::HOST_USER_PID,
                ContainerConfig {
                    ctype: ContainerType::TypeI,
                    image: image()
                },
            )
            .err(),
            Some(Errno::EPERM),
            "unprivileged user cannot set up Type I"
        );
        assert!(k
            .container_create(
                Kernel::INIT_PID,
                ContainerConfig {
                    ctype: ContainerType::TypeI,
                    image: image()
                },
            )
            .is_ok());
    }

    #[test]
    fn type_ii_requires_helpers() {
        let mut k = Kernel::default_kernel();
        assert_eq!(
            k.container_create(
                Kernel::HOST_USER_PID,
                ContainerConfig {
                    ctype: ContainerType::TypeII,
                    image: image()
                },
            )
            .err(),
            Some(Errno::EPERM),
            "no newuidmap/newgidmap installed"
        );
        k.config.setuid_helpers = true;
        let c = k
            .container_create(
                Kernel::HOST_USER_PID,
                ContainerConfig {
                    ctype: ContainerType::TypeII,
                    image: image(),
                },
            )
            .unwrap();
        let mut ctx = k.ctx(c.init_pid);
        assert_eq!(ctx.geteuid(), 0);
    }

    #[test]
    fn type_iii_chown_to_unmapped_id_fails_einval() {
        // The Figure 1b mechanism: rpm chowns to a package-owned id
        // (ssh_keys, gid 998) which has no mapping.
        let mut k = Kernel::default_kernel();
        let c = k
            .container_create(
                Kernel::HOST_USER_PID,
                ContainerConfig {
                    ctype: ContainerType::TypeIII,
                    image: image(),
                },
            )
            .unwrap();
        let mut ctx = k.ctx(c.init_pid);
        ctx.write_file("/etc/ssh_host_key", 0o640, b"k".to_vec())
            .unwrap();
        assert_eq!(
            ctx.chown("/etc/ssh_host_key", 0, 998),
            Err(SysError::Errno(Errno::EINVAL))
        );
        // Even mapped-but-different real changes fail: there is only one
        // mapped id, so this can't be constructed; the EPERM path needs
        // a real ownership change, exercised via mknod instead:
        assert_eq!(
            ctx.mknod("/dev-null", zr_syscalls::mode::S_IFCHR | 0o666, 0x103),
            Err(SysError::Errno(Errno::EPERM))
        );
    }

    #[test]
    fn type_iii_chown_noop_succeeds() {
        let mut k = Kernel::default_kernel();
        let c = k
            .container_create(
                Kernel::HOST_USER_PID,
                ContainerConfig {
                    ctype: ContainerType::TypeIII,
                    image: image(),
                },
            )
            .unwrap();
        let mut ctx = k.ctx(c.init_pid);
        ctx.write_file("/newfile", 0o644, vec![]).unwrap();
        // chown 0:0 — ids already match (kuid 1000 == mapped 0): allowed.
        ctx.chown("/newfile", 0, 0).unwrap();
    }

    #[test]
    fn type_ii_chown_to_mapped_ids_works() {
        // §2: Type II's many-id map gives in-container chown real effect.
        let mut k = Kernel::default_kernel();
        k.config.setuid_helpers = true;
        let c = k
            .container_create(
                Kernel::HOST_USER_PID,
                ContainerConfig {
                    ctype: ContainerType::TypeII,
                    image: image(),
                },
            )
            .unwrap();
        let mut ctx = k.ctx(c.init_pid);
        ctx.write_file("/f", 0o644, vec![]).unwrap();
        ctx.chown("/f", 998, 998)
            .expect("mapped id, sb owned by the ns");
        let st = ctx.stat("/f").unwrap();
        assert_eq!((st.uid, st.gid), (998, 998));
        // Unmapped ids still fail.
        assert_eq!(
            ctx.chown("/f", 70_000, 0),
            Err(SysError::Errno(Errno::EINVAL))
        );
    }

    #[test]
    fn type_iii_setgroups_denied() {
        let mut k = Kernel::default_kernel();
        let c = k
            .container_create(
                Kernel::HOST_USER_PID,
                ContainerConfig {
                    ctype: ContainerType::TypeIII,
                    image: image(),
                },
            )
            .unwrap();
        let mut ctx = k.ctx(c.init_pid);
        // Even container "root" cannot setgroups: denied at ns creation.
        assert_eq!(ctx.setgroups(&[]), Err(SysError::Errno(Errno::EPERM)));
    }

    #[test]
    fn host_root_reads_as_overflow_in_container() {
        let mut k = Kernel::default_kernel();
        let c = k
            .container_create(
                Kernel::HOST_USER_PID,
                ContainerConfig {
                    ctype: ContainerType::TypeIII,
                    image: image(),
                },
            )
            .unwrap();
        // A file owned by real root (materialized by init before setup).
        let fsid = c.fs;
        let ino = k
            .fs(fsid)
            .resolve("/etc", &zr_vfs::Access::root(), zr_vfs::FollowMode::Follow)
            .unwrap();
        k.fs_mut(fsid).set_owner(ino, 0, 0).unwrap();
        let mut ctx = k.ctx(c.init_pid);
        let st = ctx.stat("/etc").unwrap();
        assert_eq!(st.uid, crate::ids::OVERFLOW_ID, "host root is unmapped");
    }
}
