//! The kernel proper: process table, filesystems, syscall dispatch.
//!
//! Dispatch pipeline for every syscall (mirroring Linux's entry path):
//!
//! 1. **Preload hook** — only if the calling program is dynamically linked
//!    and its environment carries a shim (LD_PRELOAD emulators, §3.1).
//! 2. **libc mapping** — the logical call is lowered to the syscall the
//!    process's architecture actually has: `chown` becomes `chown32` on
//!    i386/arm and `fchownat` on aarch64 (paper footnote 7).
//! 3. **Seccomp** — the installed filter stack runs over the encoded
//!    `seccomp_data` using the real cBPF interpreter. `ERRNO(0)` here is
//!    the paper's entire mechanism: *do nothing and return success*.
//! 4. **Tracer hook** — ptrace-style emulators (§3.2).
//! 5. **Execution** — user-namespace-aware policy checks, then `zr-vfs`.

use std::collections::HashMap;

use crate::counters::Counters;
use crate::cred::Cred;
use crate::hooks::{HookVerdict, SyscallHook};
use crate::ids::{NsId, NsTable};
use crate::process::{FsId, Pid, Process};
use crate::program::{ExecEnv, Linkage, ProgramRegistry};
use crate::sys::{Sys, SysCall, SysError, SysResult, SysRet};
use zr_seccomp::{Action, SeccompData};
use zr_syscalls::caps::Cap;
use zr_syscalls::{mode, Arch, Errno, Sysno};
use zr_trace::{Disposition, Record, Tracer};
use zr_vfs::access::{permitted, Access, Want};
use zr_vfs::fs::{FollowMode, Fs};
use zr_vfs::inode::FileKind;
use zr_vfs::path::join;

/// Placeholder pointer value used for pointer arguments in `seccomp_data`
/// (filters cannot dereference them anyway — §4).
const FAKE_PTR: u64 = 0x7f00_0000_1000;
/// `AT_FDCWD` as the kernel sees it in a register.
const AT_FDCWD: u64 = (-100i64) as u64;
/// `AT_SYMLINK_NOFOLLOW`.
const AT_SYMLINK_NOFOLLOW: u64 = 0x100;
/// uid/gid value meaning "no change".
const ID_UNCHANGED: u64 = u32::MAX as u64;

/// Shadowed identity for the uid/gid-consistency extension (§6 future
/// work 2): what the process *believes* its ids are after faked set*id
/// calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShadowIds {
    /// Believed (ruid, euid, suid).
    pub uids: (u32, u32, u32),
    /// Believed (rgid, egid, sgid).
    pub gids: (u32, u32, u32),
    /// Believed supplementary groups.
    pub groups: Vec<u32>,
}

/// A filesystem plus the user namespace that owns its superblock — the
/// fact that decides whose capabilities count ([`NsTable::ns_capable`]).
#[derive(Debug, Clone)]
pub struct FsEntry {
    /// The filesystem.
    pub fs: Fs,
    /// Owner namespace of the superblock.
    pub owner_ns: NsId,
}

/// Host environment parameters.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// The unprivileged user's uid on the host (the paper's HPC user).
    pub host_uid: u32,
    /// Their gid.
    pub host_gid: u32,
    /// Are setuid helper binaries (`newuidmap`/`newgidmap`) installed?
    /// Required for Type II container setup (§2).
    pub setuid_helpers: bool,
    /// Default architecture for new processes.
    pub arch: Arch,
    /// Injected nondeterminism sources (audit mode): applied to every
    /// container filesystem this kernel creates, and to the kernel's
    /// own `getrandom` stream. Default = fully deterministic.
    pub nondet: zr_vfs::fs::Nondeterminism,
}

impl Default for KernelConfig {
    fn default() -> KernelConfig {
        KernelConfig {
            host_uid: 1000,
            host_gid: 1000,
            setuid_helpers: false,
            arch: Arch::X8664,
            nondet: zr_vfs::fs::Nondeterminism::default(),
        }
    }
}

/// The simulated kernel.
pub struct Kernel {
    /// Host configuration.
    pub config: KernelConfig,
    /// User namespaces.
    pub namespaces: NsTable,
    /// Filesystems (index = [`FsId`]).
    pub filesystems: Vec<FsEntry>,
    processes: HashMap<Pid, Process>,
    next_pid: Pid,
    /// Simulated binaries.
    pub registry: ProgramRegistry,
    /// Syscall trace.
    pub trace: Tracer,
    /// Cost counters.
    pub counters: Counters,
    /// Console output (stdout of all simulated processes, in completion
    /// order of their `write`s).
    pub console: Vec<String>,
    preload_hook: Option<Box<dyn SyscallHook>>,
    tracer_hook: Option<Box<dyn SyscallHook>>,
    shadow: HashMap<Pid, ShadowIds>,
    id_consistency: HashMap<Pid, bool>,
    /// `getrandom` stream position (blocks already handed out).
    rng_counter: u64,
}

impl Kernel {
    /// A kernel with: namespace 0, a host filesystem (owner ns 0), pid 1
    /// as init (root), and pid 2 as the unprivileged host user — the
    /// process experiments start from.
    pub fn new(config: KernelConfig) -> Kernel {
        let mut host_fs = Fs::new();
        host_fs.mkdir_p("/home/user", 0o755).expect("host skeleton");
        host_fs.mkdir_p("/tmp", 0o1777).expect("host skeleton");

        let mut k = Kernel {
            config: config.clone(),
            namespaces: NsTable::new(),
            filesystems: vec![FsEntry {
                fs: host_fs,
                owner_ns: 0,
            }],
            processes: HashMap::new(),
            next_pid: 1,
            registry: ProgramRegistry::new(),
            trace: Tracer::new(),
            counters: Counters::default(),
            console: Vec::new(),
            preload_hook: None,
            tracer_hook: None,
            shadow: HashMap::new(),
            id_consistency: HashMap::new(),
            rng_counter: 0,
        };

        let init = Process {
            pid: 0, // fixed up by add_process
            ppid: 0,
            cred: Cred::init_root(),
            fs: 0,
            cwd: "/".into(),
            umask: 0o022,
            arch: config.arch,
            seccomp: zr_seccomp::FilterStack::new(),
            no_new_privs: false,
            dynamic: true,
            preload_active: false,
            traced: false,
            alive: true,
        };
        let init_pid = k.add_process(init);
        debug_assert_eq!(init_pid, 1);

        let user = Process {
            pid: 0,
            ppid: 1,
            cred: Cred::init_user(config.host_uid, config.host_gid),
            fs: 0,
            cwd: "/home/user".into(),
            umask: 0o022,
            arch: config.arch,
            seccomp: zr_seccomp::FilterStack::new(),
            no_new_privs: false,
            dynamic: true,
            preload_active: false,
            traced: false,
            alive: true,
        };
        let user_pid = k.add_process(user);
        debug_assert_eq!(user_pid, 2);

        k
    }

    /// Kernel with default config.
    pub fn default_kernel() -> Kernel {
        Kernel::new(KernelConfig::default())
    }

    /// Pid of the unprivileged host user process.
    pub const HOST_USER_PID: Pid = 2;
    /// Pid of init (true root).
    pub const INIT_PID: Pid = 1;

    /// Insert a process, assigning the next pid.
    pub fn add_process(&mut self, mut proc: Process) -> Pid {
        let pid = self.next_pid;
        self.next_pid += 1;
        proc.pid = pid;
        self.processes.insert(pid, proc);
        pid
    }

    /// Borrow a process.
    pub fn process(&self, pid: Pid) -> &Process {
        self.processes.get(&pid).expect("live pid")
    }

    /// Mutably borrow a process.
    pub fn process_mut(&mut self, pid: Pid) -> &mut Process {
        self.processes.get_mut(&pid).expect("live pid")
    }

    /// Does the pid exist?
    pub fn has_process(&self, pid: Pid) -> bool {
        self.processes.contains_key(&pid)
    }

    /// Register a new filesystem; returns its id.
    pub fn add_fs(&mut self, fs: Fs, owner_ns: NsId) -> FsId {
        self.filesystems.push(FsEntry { fs, owner_ns });
        self.filesystems.len() - 1
    }

    /// Borrow a filesystem.
    pub fn fs(&self, id: FsId) -> &Fs {
        &self.filesystems[id].fs
    }

    /// Mutably borrow a filesystem.
    pub fn fs_mut(&mut self, id: FsId) -> &mut Fs {
        &mut self.filesystems[id].fs
    }

    /// Install the LD_PRELOAD-style hook (fakeroot shim + daemon).
    pub fn set_preload_hook(&mut self, hook: Option<Box<dyn SyscallHook>>) {
        self.preload_hook = hook;
    }

    /// Install the ptrace-style hook (PRoot-like tracer).
    pub fn set_tracer_hook(&mut self, hook: Option<Box<dyn SyscallHook>>) {
        self.tracer_hook = hook;
    }

    /// Enable the uid/gid-consistency extension for `pid` (§6 future
    /// work 2): faked set*id calls update a shadow identity that get*id
    /// calls then report.
    pub fn enable_id_consistency(&mut self, pid: Pid) {
        self.id_consistency.insert(pid, true);
    }

    /// Drain the console buffer.
    pub fn take_console(&mut self) -> Vec<String> {
        std::mem::take(&mut self.console)
    }

    /// A syscall context for `pid`, implementing [`Sys`].
    pub fn ctx(&mut self, pid: Pid) -> SyscallCtx<'_> {
        SyscallCtx { kernel: self, pid }
    }

    // ====================================================================
    // dispatch
    // ====================================================================

    /// Full dispatch: hooks, seccomp, execution.
    pub fn syscall(&mut self, pid: Pid, call: SysCall) -> SysResult<SysRet> {
        // 1. LD_PRELOAD layer (userspace, before any kernel involvement).
        let p = self.process(pid);
        if p.alive && p.preload_active && p.dynamic && self.preload_hook.is_some() {
            let mut hook = self.preload_hook.take().expect("checked above");
            let verdict = hook.on_syscall(self, pid, &call);
            self.preload_hook = Some(hook);
            if let HookVerdict::Emulated(result) = verdict {
                self.counters.preload_hops += 1;
                self.record(pid, &call, Disposition::Emulated, 0);
                return result;
            }
        }
        self.syscall_kernel_entry(pid, call, true)
    }

    /// Kernel entry without the preload layer (what a *static* binary's
    /// raw syscall does, and what emulator shims use for their underlying
    /// operations).
    pub fn syscall_nohook(&mut self, pid: Pid, call: SysCall) -> SysResult<SysRet> {
        self.syscall_kernel_entry(pid, call, false)
    }

    fn syscall_kernel_entry(
        &mut self,
        pid: Pid,
        call: SysCall,
        tracer_visible: bool,
    ) -> SysResult<SysRet> {
        if !self.process(pid).alive {
            return Err(SysError::Killed);
        }
        self.counters.syscalls += 1;

        // 2+3. Encode for the architecture and run the filter stack.
        let arch = self.process(pid).arch;
        let (sysno, args) = encode(arch, &call);
        let (action, steps, stack_len) = {
            let stack = &self.process(pid).seccomp;
            if stack.is_empty() {
                (Action::Allow, 0, 0)
            } else {
                let data = SeccompData::new(arch, syscall_nr(arch, sysno), args);
                let (action, steps) = stack.evaluate(&data);
                (action, steps, stack.len() as u64)
            }
        };
        self.counters.filter_evaluations += stack_len;
        self.counters.bpf_instructions += steps;

        match action {
            Action::Allow | Action::Log => {}
            Action::Errno(0) => {
                self.counters.faked += 1;
                self.on_faked(pid, &call);
                self.record_sys(pid, sysno, &call, Disposition::FakedByFilter, steps);
                return Ok(fake_success_ret(&call));
            }
            Action::Errno(e) => {
                self.counters.denied += 1;
                let errno = errno_from_raw(e);
                self.record_sys(pid, sysno, &call, Disposition::DeniedByFilter(errno), steps);
                return Err(errno.into());
            }
            Action::KillProcess | Action::KillThread | Action::Trap(_) => {
                self.process_mut(pid).alive = false;
                self.record_sys(pid, sysno, &call, Disposition::KilledByFilter, steps);
                return Err(SysError::Killed);
            }
            Action::Trace(_) | Action::UserNotif => {
                // Defer-to-userspace dispositions are modelled through the
                // tracer hook below; reaching here without one installed
                // behaves like ENOSYS (kernel with no tracer attached).
                if self.tracer_hook.is_none() {
                    self.record_sys(pid, sysno, &call, Disposition::Failed(Errno::ENOSYS), steps);
                    return Err(Errno::ENOSYS.into());
                }
            }
        }

        // 4. ptrace layer.
        if tracer_visible && self.process(pid).traced && self.tracer_hook.is_some() {
            let mut hook = self.tracer_hook.take().expect("checked above");
            let verdict = hook.on_syscall(self, pid, &call);
            self.tracer_hook = Some(hook);
            if let HookVerdict::Emulated(result) = verdict {
                self.record_sys(pid, sysno, &call, Disposition::Emulated, steps);
                return result;
            }
        }

        // 5. Execute.
        let result = self.execute(pid, call.clone());
        let disp = match &result {
            Ok(_) => Disposition::Executed,
            Err(SysError::Errno(e)) => Disposition::Failed(*e),
            Err(SysError::Killed) => Disposition::KilledByFilter,
        };
        self.record_sys(pid, sysno, &call, disp, steps);
        result
    }

    fn record(&self, pid: Pid, call: &SysCall, disp: Disposition, steps: u64) {
        let (sysno, _) = encode(self.process(pid).arch, call);
        self.record_sys(pid, sysno, call, disp, steps);
    }

    fn record_sys(&self, pid: Pid, sysno: Sysno, call: &SysCall, disp: Disposition, steps: u64) {
        let (_, args) = encode(self.process(pid).arch, call);
        self.trace.record(Record {
            pid,
            sysno,
            args,
            disposition: disp,
            filter_steps: steps,
            note: note_for(call),
        });
    }

    /// Track faked set*id calls for the id-consistency extension.
    fn on_faked(&mut self, pid: Pid, call: &SysCall) {
        if !self.id_consistency.get(&pid).copied().unwrap_or(false) {
            return;
        }
        let current = self.observed_ids(pid);
        let shadow = self.shadow.entry(pid).or_insert(current);
        match call {
            SysCall::Setuid { uid } => shadow.uids = (*uid, *uid, *uid),
            SysCall::Setgid { gid } => shadow.gids = (*gid, *gid, *gid),
            SysCall::Setresuid { r, e, s } => {
                if let Some(r) = r {
                    shadow.uids.0 = *r;
                }
                if let Some(e) = e {
                    shadow.uids.1 = *e;
                }
                if let Some(s) = s {
                    shadow.uids.2 = *s;
                }
            }
            SysCall::Setresgid { r, e, s } => {
                if let Some(r) = r {
                    shadow.gids.0 = *r;
                }
                if let Some(e) = e {
                    shadow.gids.1 = *e;
                }
                if let Some(s) = s {
                    shadow.gids.2 = *s;
                }
            }
            SysCall::Setreuid { r, e } => {
                if let Some(r) = r {
                    shadow.uids.0 = *r;
                }
                if let Some(e) = e {
                    shadow.uids.1 = *e;
                }
            }
            SysCall::Setregid { r, e } => {
                if let Some(r) = r {
                    shadow.gids.0 = *r;
                }
                if let Some(e) = e {
                    shadow.gids.1 = *e;
                }
            }
            SysCall::Setgroups { groups } => shadow.groups = groups.clone(),
            _ => {}
        }
    }

    /// The ids a process currently observes (ns-local view of its cred).
    fn observed_ids(&self, pid: Pid) -> ShadowIds {
        let p = self.process(pid);
        let ns = self.namespaces.get(p.cred.userns);
        ShadowIds {
            uids: (
                ns.from_kuid(p.cred.ruid),
                ns.from_kuid(p.cred.euid),
                ns.from_kuid(p.cred.suid),
            ),
            gids: (
                ns.from_kgid(p.cred.rgid),
                ns.from_kgid(p.cred.egid),
                ns.from_kgid(p.cred.sgid),
            ),
            groups: p.cred.groups.iter().map(|&g| ns.from_kgid(g)).collect(),
        }
    }

    // ====================================================================
    // helpers
    // ====================================================================

    /// `ns_capable` for this process against a target namespace.
    pub fn capable(&self, pid: Pid, cap: Cap, target_ns: NsId) -> bool {
        let p = self.process(pid);
        self.namespaces.ns_capable(
            p.cred.userns,
            p.cred.euid,
            p.cred.effective.has(cap),
            target_ns,
            cap,
        )
    }

    /// Capability relative to the superblock of the process's filesystem —
    /// the check behind chown/mknod/setxattr policy.
    fn capable_wrt_fs(&self, pid: Pid, cap: Cap) -> bool {
        let owner = self.filesystems[self.process(pid).fs].owner_ns;
        self.capable(pid, cap, owner)
    }

    /// Distilled DAC view for VFS permission checks.
    pub fn access_for(&self, pid: Pid) -> Access {
        let p = self.process(pid);
        Access {
            fsuid: p.cred.fsuid,
            fsgid: p.cred.fsgid,
            groups: p.cred.groups.clone(),
            cap_dac_override: self.capable_wrt_fs(pid, Cap::DacOverride),
            cap_dac_read_search: self.capable_wrt_fs(pid, Cap::DacReadSearch),
            cap_fowner: self.capable_wrt_fs(pid, Cap::Fowner),
        }
    }

    fn abs(&self, pid: Pid, path: &str) -> String {
        let p = self.process(pid);
        join(&p.cwd, path)
    }

    /// Builder-side whole-file write of a *shared blob* into `pid`'s
    /// filesystem — same credentials, umask and cwd handling as the
    /// `WriteFile` syscall, but the payload is an `Arc` handle: COPY/ADD
    /// share context bytes (and their memoized digests) with every
    /// snapshot instead of duplicating them. The syscall surface keeps
    /// owned byte payloads; this models the host-side builder writing
    /// into storage (ch-image copying into the unpacked image
    /// directory), so no simulated syscall is dispatched or traced.
    pub fn write_file_blob(
        &mut self,
        pid: Pid,
        path: &str,
        perm: u32,
        blob: std::sync::Arc<zr_vfs::Blob>,
    ) -> Result<(), Errno> {
        let access = self.access_for(pid);
        let fsid = self.process(pid).fs;
        let p = self.abs(pid, path);
        let perm = perm & !self.process(pid).umask;
        self.fs_mut(fsid).write_file_blob(&p, perm, blob, &access)?;
        Ok(())
    }

    // ====================================================================
    // execution (policy + vfs)
    // ====================================================================

    #[allow(clippy::too_many_lines)] // one arm per syscall; splitting hurts
    fn execute(&mut self, pid: Pid, call: SysCall) -> SysResult<SysRet> {
        let access = self.access_for(pid);
        let fsid = self.process(pid).fs;
        match call {
            // ---- plain file ops: defer to VFS DAC --------------------------
            SysCall::ReadFile { path } => {
                let p = self.abs(pid, &path);
                Ok(SysRet::Bytes(self.fs(fsid).read_file(&p, &access)?))
            }
            SysCall::WriteFile { path, perm, data } => {
                let p = self.abs(pid, &path);
                let perm = perm & !self.process(pid).umask;
                self.fs_mut(fsid).write_file(&p, perm, data, &access)?;
                Ok(SysRet::Unit)
            }
            SysCall::AppendFile { path, data } => {
                let p = self.abs(pid, &path);
                self.fs_mut(fsid).append_file(&p, &data, &access)?;
                Ok(SysRet::Unit)
            }
            SysCall::Mkdir { path, perm } => {
                let p = self.abs(pid, &path);
                let perm = perm & !self.process(pid).umask;
                self.fs_mut(fsid).mkdir(&p, perm, &access)?;
                Ok(SysRet::Unit)
            }
            SysCall::Unlink { path } => {
                let p = self.abs(pid, &path);
                self.fs_mut(fsid).unlink(&p, &access)?;
                Ok(SysRet::Unit)
            }
            SysCall::Rmdir { path } => {
                let p = self.abs(pid, &path);
                self.fs_mut(fsid).rmdir(&p, &access)?;
                Ok(SysRet::Unit)
            }
            SysCall::Rename { old, new } => {
                let o = self.abs(pid, &old);
                let n = self.abs(pid, &new);
                self.fs_mut(fsid).rename(&o, &n, &access)?;
                Ok(SysRet::Unit)
            }
            SysCall::Symlink { target, linkpath } => {
                let l = self.abs(pid, &linkpath);
                self.fs_mut(fsid).symlink(&target, &l, &access)?;
                Ok(SysRet::Unit)
            }
            SysCall::Link { existing, newpath } => {
                let e = self.abs(pid, &existing);
                let n = self.abs(pid, &newpath);
                self.fs_mut(fsid).link(&e, &n, &access)?;
                Ok(SysRet::Unit)
            }
            SysCall::Readlink { path } => {
                let p = self.abs(pid, &path);
                Ok(SysRet::Text(self.fs(fsid).readlink(&p, &access)?))
            }
            SysCall::Stat { path } => {
                let p = self.abs(pid, &path);
                let st = self.fs(fsid).stat(&p, &access, FollowMode::Follow)?;
                Ok(SysRet::Stat(self.map_stat(pid, st)))
            }
            SysCall::Lstat { path } => {
                let p = self.abs(pid, &path);
                let st = self.fs(fsid).stat(&p, &access, FollowMode::NoFollow)?;
                Ok(SysRet::Stat(self.map_stat(pid, st)))
            }
            SysCall::ReadDir { path } => {
                let p = self.abs(pid, &path);
                let entries = self.fs(fsid).read_dir(&p, &access)?;
                Ok(SysRet::Entries(
                    entries.into_iter().map(|(n, _)| n).collect(),
                ))
            }
            SysCall::Truncate { path, size } => {
                let p = self.abs(pid, &path);
                let ino = self.fs(fsid).resolve(&p, &access, FollowMode::Follow)?;
                let node = self.fs(fsid).inode(ino)?;
                if !permitted(
                    &access,
                    node.meta.uid,
                    node.meta.gid,
                    node.meta.perm,
                    Want::W,
                ) {
                    return Err(Errno::EACCES.into());
                }
                self.fs_mut(fsid).truncate(ino, size)?;
                Ok(SysRet::Unit)
            }
            SysCall::Utimens { path, mtime } => {
                let p = self.abs(pid, &path);
                let ino = self.fs(fsid).resolve(&p, &access, FollowMode::Follow)?;
                let node = self.fs(fsid).inode(ino)?;
                let owner = access.owns(node.meta.uid);
                let writable = permitted(
                    &access,
                    node.meta.uid,
                    node.meta.gid,
                    node.meta.perm,
                    Want::W,
                );
                if !owner && !writable {
                    return Err(Errno::EPERM.into());
                }
                self.fs_mut(fsid).set_mtime(ino, mtime)?;
                Ok(SysRet::Unit)
            }

            // ---- chmod: owner or CAP_FOWNER ---------------------------------
            SysCall::Chmod { path, perm } => {
                let p = self.abs(pid, &path);
                let ino = self.fs(fsid).resolve(&p, &access, FollowMode::Follow)?;
                let node = self.fs(fsid).inode(ino)?;
                if !access.owns(node.meta.uid) {
                    return Err(Errno::EPERM.into());
                }
                self.fs_mut(fsid).set_perm(ino, perm)?;
                Ok(SysRet::Unit)
            }

            // ---- chown family: the Figure 1b syscalls ------------------------
            SysCall::Chown { path, uid, gid } => {
                self.do_chown(pid, &path, uid, gid, FollowMode::Follow)
            }
            SysCall::Lchown { path, uid, gid } => {
                self.do_chown(pid, &path, uid, gid, FollowMode::NoFollow)
            }
            SysCall::Fchownat {
                path,
                uid,
                gid,
                nofollow,
            } => {
                let follow = if nofollow {
                    FollowMode::NoFollow
                } else {
                    FollowMode::Follow
                };
                self.do_chown(pid, &path, uid, gid, follow)
            }

            // ---- mknod: privileged for device nodes ---------------------------
            SysCall::Mknod { path, mode: m, dev } | SysCall::Mknodat { path, mode: m, dev } => {
                let p = self.abs(pid, &path);
                let kind = match mode::file_type(m) {
                    mode::S_IFCHR => {
                        if !self.capable_wrt_fs(pid, Cap::Mknod) {
                            return Err(Errno::EPERM.into());
                        }
                        FileKind::CharDev(dev)
                    }
                    mode::S_IFBLK => {
                        if !self.capable_wrt_fs(pid, Cap::Mknod) {
                            return Err(Errno::EPERM.into());
                        }
                        FileKind::BlockDev(dev)
                    }
                    mode::S_IFIFO => FileKind::Fifo,
                    mode::S_IFSOCK => FileKind::Socket,
                    0 | mode::S_IFREG => FileKind::File(zr_vfs::Blob::empty()),
                    _ => return Err(Errno::EINVAL.into()),
                };
                let perm = (m & 0o7777) & !self.process(pid).umask;
                self.fs_mut(fsid).mknod(&p, kind, perm, &access)?;
                Ok(SysRet::Unit)
            }

            // ---- xattrs --------------------------------------------------------
            SysCall::Setxattr { path, name, value } => {
                let p = self.abs(pid, &path);
                let ino = self.fs(fsid).resolve(&p, &access, FollowMode::Follow)?;
                self.xattr_set_policy(pid, &access, fsid, ino, &name)?;
                self.fs_mut(fsid).set_xattr(ino, &name, &value)?;
                Ok(SysRet::Unit)
            }
            SysCall::Getxattr { path, name } => {
                let p = self.abs(pid, &path);
                let ino = self.fs(fsid).resolve(&p, &access, FollowMode::Follow)?;
                Ok(SysRet::Bytes(self.fs(fsid).get_xattr(ino, &name)?))
            }
            SysCall::Listxattr { path } => {
                let p = self.abs(pid, &path);
                let ino = self.fs(fsid).resolve(&p, &access, FollowMode::Follow)?;
                Ok(SysRet::Entries(self.fs(fsid).list_xattr(ino)?))
            }
            SysCall::Removexattr { path, name } => {
                let p = self.abs(pid, &path);
                let ino = self.fs(fsid).resolve(&p, &access, FollowMode::Follow)?;
                self.xattr_set_policy(pid, &access, fsid, ino, &name)?;
                self.fs_mut(fsid).remove_xattr(ino, &name)?;
                Ok(SysRet::Unit)
            }

            // ---- identity queries (never privileged; zero consistency means
            // these tell the truth) ---------------------------------------------
            SysCall::Getuid => Ok(SysRet::Id(self.shadowed_or(
                pid,
                |s| s.uids.0,
                |k, p| k.namespaces.get(p.cred.userns).from_kuid(p.cred.ruid),
            ))),
            SysCall::Geteuid => Ok(SysRet::Id(self.shadowed_or(
                pid,
                |s| s.uids.1,
                |k, p| k.namespaces.get(p.cred.userns).from_kuid(p.cred.euid),
            ))),
            SysCall::Getgid => Ok(SysRet::Id(self.shadowed_or(
                pid,
                |s| s.gids.0,
                |k, p| k.namespaces.get(p.cred.userns).from_kgid(p.cred.rgid),
            ))),
            SysCall::Getegid => Ok(SysRet::Id(self.shadowed_or(
                pid,
                |s| s.gids.1,
                |k, p| k.namespaces.get(p.cred.userns).from_kgid(p.cred.egid),
            ))),
            SysCall::Getresuid => {
                if let Some(s) = self.shadow_of(pid) {
                    return Ok(SysRet::Triple(s.uids.0, s.uids.1, s.uids.2));
                }
                let ids = self.observed_ids(pid);
                Ok(SysRet::Triple(ids.uids.0, ids.uids.1, ids.uids.2))
            }
            SysCall::Getresgid => {
                if let Some(s) = self.shadow_of(pid) {
                    return Ok(SysRet::Triple(s.gids.0, s.gids.1, s.gids.2));
                }
                let ids = self.observed_ids(pid);
                Ok(SysRet::Triple(ids.gids.0, ids.gids.1, ids.gids.2))
            }
            SysCall::Getgroups => {
                if let Some(s) = self.shadow_of(pid) {
                    return Ok(SysRet::Groups(s.groups.clone()));
                }
                Ok(SysRet::Groups(self.observed_ids(pid).groups))
            }

            // ---- identity manipulation: filter class 2 when not faked ---------
            SysCall::Setuid { uid } => self.do_setuid(pid, uid),
            SysCall::Setgid { gid } => self.do_setgid(pid, gid),
            SysCall::Setresuid { r, e, s } => self.do_setresuid(pid, r, e, s),
            SysCall::Setresgid { r, e, s } => self.do_setresgid(pid, r, e, s),
            SysCall::Setreuid { r, e } => self.do_setresuid(pid, r, e, None),
            SysCall::Setregid { r, e } => self.do_setresgid(pid, r, e, None),
            SysCall::Setgroups { groups } => self.do_setgroups(pid, &groups),
            SysCall::Setfsuid { uid } => {
                let p = self.process(pid);
                let ns = self.namespaces.get(p.cred.userns);
                let old = ns.from_kuid(p.cred.fsuid);
                if let Some(kuid) = ns.make_kuid(uid) {
                    let capable = self.capable(pid, Cap::Setuid, p.cred.userns);
                    let p = self.process_mut(pid);
                    if capable || p.cred.any_uid_is(kuid) || p.cred.fsuid == kuid {
                        p.cred.fsuid = kuid;
                    }
                }
                // setfsuid never fails; it returns the previous value.
                Ok(SysRet::Id(old))
            }
            SysCall::Setfsgid { gid } => {
                let p = self.process(pid);
                let ns = self.namespaces.get(p.cred.userns);
                let old = ns.from_kgid(p.cred.fsgid);
                if let Some(kgid) = ns.make_kgid(gid) {
                    let capable = self.capable(pid, Cap::Setgid, p.cred.userns);
                    let p = self.process_mut(pid);
                    if capable || p.cred.any_gid_is(kgid) || p.cred.fsgid == kgid {
                        p.cred.fsgid = kgid;
                    }
                }
                Ok(SysRet::Id(old))
            }
            SysCall::Capget => {
                let p = self.process(pid);
                Ok(SysRet::Caps {
                    effective: p.cred.effective,
                    permitted: p.cred.permitted,
                })
            }
            SysCall::Capset {
                effective,
                permitted,
            } => {
                let p = self.process_mut(pid);
                // May not grow beyond permitted.
                if effective.intersect(p.cred.permitted) != effective
                    || permitted.intersect(p.cred.permitted) != permitted
                {
                    return Err(Errno::EPERM.into());
                }
                p.cred.effective = effective;
                p.cred.permitted = permitted;
                Ok(SysRet::Unit)
            }

            // ---- process state ---------------------------------------------------
            SysCall::Getpid => Ok(SysRet::Id(pid)),
            SysCall::Umask { mask } => {
                let p = self.process_mut(pid);
                let old = p.umask;
                p.umask = mask & 0o777;
                Ok(SysRet::Mask(old))
            }
            SysCall::Chdir { path } => {
                let p = self.abs(pid, &path);
                let ino = self.fs(fsid).resolve(&p, &access, FollowMode::Follow)?;
                if !self.fs(fsid).inode(ino)?.is_dir() {
                    return Err(Errno::ENOTDIR.into());
                }
                let canonical = self.fs(fsid).path_of(ino)?;
                self.process_mut(pid).cwd = canonical;
                Ok(SysRet::Unit)
            }
            SysCall::Getcwd => Ok(SysRet::Text(self.process(pid).cwd.clone())),
            SysCall::SetNoNewPrivs => {
                self.process_mut(pid).no_new_privs = true;
                Ok(SysRet::Unit)
            }
            SysCall::SeccompInstall { prog } => {
                let p = self.process(pid);
                if !p.no_new_privs && !self.capable(pid, Cap::SysAdmin, p.cred.userns) {
                    return Err(Errno::EACCES.into());
                }
                zr_bpf::validate(&prog).map_err(|_| Errno::EINVAL)?;
                zr_seccomp::check::check_seccomp(&prog).map_err(|_| Errno::EINVAL)?;
                self.process_mut(pid).seccomp.push(prog);
                Ok(SysRet::Unit)
            }
            SysCall::KexecLoad => {
                // Privileged: CAP_SYS_BOOT in the *initial* namespace. This
                // is why it makes a safe filter self-test (§5 class 4).
                if self.capable(pid, Cap::SysBoot, 0) {
                    Ok(SysRet::Unit)
                } else {
                    Err(Errno::EPERM.into())
                }
            }
            SysCall::Spawn { path, argv, env } => self.do_spawn(pid, &path, argv, env),
            SysCall::ConsoleWrite { line } => {
                self.console.push(line);
                Ok(SysRet::Unit)
            }
            SysCall::GetRandom { len } => {
                // Deterministic entropy: a splitmix64 stream keyed on the
                // injected seed (audit mode) or 0 (default). Two kernels
                // with equal configs replay identical bytes; differing
                // `gen_seed`s force "generated file" payload divergence.
                let seed = self.config.nondet.gen_seed.unwrap_or(0);
                let mut out = Vec::with_capacity(len as usize);
                while (out.len() as u64) < len {
                    let mut z = seed
                        .wrapping_add(self.rng_counter.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                        .wrapping_add(0x9e37_79b9_7f4a_7c15);
                    self.rng_counter += 1;
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                    z ^= z >> 31;
                    for b in z.to_le_bytes() {
                        if (out.len() as u64) < len {
                            out.push(b);
                        }
                    }
                }
                Ok(SysRet::Bytes(out))
            }
        }
    }

    fn shadow_of(&self, pid: Pid) -> Option<&ShadowIds> {
        self.shadow.get(&pid)
    }

    fn shadowed_or(
        &self,
        pid: Pid,
        pick: impl Fn(&ShadowIds) -> u32,
        fallback: impl Fn(&Kernel, &Process) -> u32,
    ) -> u32 {
        if let Some(s) = self.shadow.get(&pid) {
            pick(s)
        } else {
            fallback(self, self.process(pid))
        }
    }

    fn map_stat(&self, pid: Pid, mut st: zr_vfs::inode::Stat) -> zr_vfs::inode::Stat {
        let ns = self.namespaces.get(self.process(pid).cred.userns);
        st.uid = ns.from_kuid(st.uid);
        st.gid = ns.from_kgid(st.gid);
        st
    }

    /// chown policy, shared by the whole family. This is where Figure 1b
    /// dies: targets must be mapped in the caller's namespace (else
    /// `EINVAL`) and real ownership changes need `CAP_CHOWN` *relative to
    /// the superblock's owning namespace* (else `EPERM`) — capabilities
    /// inside an unprivileged container satisfy neither.
    fn do_chown(
        &mut self,
        pid: Pid,
        path: &str,
        uid: Option<u32>,
        gid: Option<u32>,
        follow: FollowMode,
    ) -> SysResult<SysRet> {
        let access = self.access_for(pid);
        let fsid = self.process(pid).fs;
        let p = self.abs(pid, path);
        let ino = self.fs(fsid).resolve(&p, &access, follow)?;
        let node = self.fs(fsid).inode(ino)?;
        let (cur_uid, cur_gid) = (node.meta.uid, node.meta.gid);

        let ns = self.namespaces.get(self.process(pid).cred.userns);
        let kuid = match uid {
            None => None,
            Some(u) => Some(ns.make_kuid(u).ok_or(Errno::EINVAL)?),
        };
        let kgid = match gid {
            None => None,
            Some(g) => Some(ns.make_kgid(g).ok_or(Errno::EINVAL)?),
        };

        if let Some(ku) = kuid {
            if ku != cur_uid && !self.capable_wrt_fs(pid, Cap::Chown) {
                return Err(Errno::EPERM.into());
            }
        }
        if let Some(kg) = kgid {
            if kg != cur_gid {
                let cred = &self.process(pid).cred;
                let owner_and_member = cred.fsuid == cur_uid && cred.in_group(kg);
                if !owner_and_member && !self.capable_wrt_fs(pid, Cap::Chown) {
                    return Err(Errno::EPERM.into());
                }
            }
        }

        let new_uid = kuid.unwrap_or(cur_uid);
        let new_gid = kgid.unwrap_or(cur_gid);
        self.fs_mut(fsid).set_owner(ino, new_uid, new_gid)?;
        Ok(SysRet::Unit)
    }

    fn do_setuid(&mut self, pid: Pid, uid: u32) -> SysResult<SysRet> {
        let p = self.process(pid);
        let ns = self.namespaces.get(p.cred.userns);
        let kuid = ns.make_kuid(uid).ok_or(Errno::EINVAL)?;
        let capable = self.capable(pid, Cap::Setuid, p.cred.userns);
        let p = self.process_mut(pid);
        if capable {
            p.cred.ruid = kuid;
            p.cred.euid = kuid;
            p.cred.suid = kuid;
            p.cred.fsuid = kuid;
            Ok(SysRet::Unit)
        } else if p.cred.any_uid_is(kuid) {
            p.cred.euid = kuid;
            p.cred.fsuid = kuid;
            Ok(SysRet::Unit)
        } else {
            Err(Errno::EPERM.into())
        }
    }

    fn do_setgid(&mut self, pid: Pid, gid: u32) -> SysResult<SysRet> {
        let p = self.process(pid);
        let ns = self.namespaces.get(p.cred.userns);
        let kgid = ns.make_kgid(gid).ok_or(Errno::EINVAL)?;
        let capable = self.capable(pid, Cap::Setgid, p.cred.userns);
        let p = self.process_mut(pid);
        if capable {
            p.cred.rgid = kgid;
            p.cred.egid = kgid;
            p.cred.sgid = kgid;
            p.cred.fsgid = kgid;
            Ok(SysRet::Unit)
        } else if p.cred.any_gid_is(kgid) {
            p.cred.egid = kgid;
            p.cred.fsgid = kgid;
            Ok(SysRet::Unit)
        } else {
            Err(Errno::EPERM.into())
        }
    }

    fn do_setresuid(
        &mut self,
        pid: Pid,
        r: Option<u32>,
        e: Option<u32>,
        s: Option<u32>,
    ) -> SysResult<SysRet> {
        let p = self.process(pid);
        let ns = self.namespaces.get(p.cred.userns);
        let map = |v: Option<u32>| -> Result<Option<u32>, Errno> {
            match v {
                None => Ok(None),
                Some(u) => Ok(Some(ns.make_kuid(u).ok_or(Errno::EINVAL)?)),
            }
        };
        let (kr, ke, ks) = (map(r)?, map(e)?, map(s)?);
        let capable = self.capable(pid, Cap::Setuid, p.cred.userns);
        let p = self.process_mut(pid);
        if !capable {
            for k in [kr, ke, ks].into_iter().flatten() {
                if !p.cred.any_uid_is(k) {
                    return Err(Errno::EPERM.into());
                }
            }
        }
        if let Some(k) = kr {
            p.cred.ruid = k;
        }
        if let Some(k) = ke {
            p.cred.euid = k;
            p.cred.fsuid = k;
        }
        if let Some(k) = ks {
            p.cred.suid = k;
        }
        Ok(SysRet::Unit)
    }

    fn do_setresgid(
        &mut self,
        pid: Pid,
        r: Option<u32>,
        e: Option<u32>,
        s: Option<u32>,
    ) -> SysResult<SysRet> {
        let p = self.process(pid);
        let ns = self.namespaces.get(p.cred.userns);
        let map = |v: Option<u32>| -> Result<Option<u32>, Errno> {
            match v {
                None => Ok(None),
                Some(g) => Ok(Some(ns.make_kgid(g).ok_or(Errno::EINVAL)?)),
            }
        };
        let (kr, ke, ks) = (map(r)?, map(e)?, map(s)?);
        let capable = self.capable(pid, Cap::Setgid, p.cred.userns);
        let p = self.process_mut(pid);
        if !capable {
            for k in [kr, ke, ks].into_iter().flatten() {
                if !p.cred.any_gid_is(k) {
                    return Err(Errno::EPERM.into());
                }
            }
        }
        if let Some(k) = kr {
            p.cred.rgid = k;
        }
        if let Some(k) = ke {
            p.cred.egid = k;
            p.cred.fsgid = k;
        }
        if let Some(k) = ks {
            p.cred.sgid = k;
        }
        Ok(SysRet::Unit)
    }

    fn do_setgroups(&mut self, pid: Pid, groups: &[u32]) -> SysResult<SysRet> {
        let p = self.process(pid);
        let ns_id = p.cred.userns;
        let ns = self.namespaces.get(ns_id);
        // user_namespaces(7): in a namespace created without privilege,
        // setgroups is denied once "deny" has been written (which Type III
        // setup does before writing gid_map).
        if !ns.setgroups_allowed {
            return Err(Errno::EPERM.into());
        }
        if !self.capable(pid, Cap::Setgid, ns_id) {
            return Err(Errno::EPERM.into());
        }
        let ns = self.namespaces.get(ns_id);
        let mut kgids = Vec::with_capacity(groups.len());
        for &g in groups {
            kgids.push(ns.make_kgid(g).ok_or(Errno::EINVAL)?);
        }
        self.process_mut(pid).cred.groups = kgids;
        Ok(SysRet::Unit)
    }

    fn xattr_set_policy(
        &self,
        pid: Pid,
        access: &Access,
        fsid: FsId,
        ino: zr_vfs::inode::Ino,
        name: &str,
    ) -> SysResult<()> {
        if name.starts_with("user.") {
            let node = self.fs(fsid).inode(ino)?;
            if !permitted(
                access,
                node.meta.uid,
                node.meta.gid,
                node.meta.perm,
                Want::W,
            ) {
                return Err(Errno::EACCES.into());
            }
            return Ok(());
        }
        // security.* / trusted.* / system.*: privileged relative to the
        // superblock. This is the call that breaks systemd installs in a
        // Type III container (§6 future work 1).
        let cap = if name.starts_with("security.") {
            Cap::Setfcap
        } else {
            Cap::SysAdmin
        };
        if !self.capable_wrt_fs(pid, cap) {
            return Err(Errno::EPERM.into());
        }
        Ok(())
    }

    // ====================================================================
    // exec
    // ====================================================================

    fn do_spawn(
        &mut self,
        parent: Pid,
        path: &str,
        argv: Vec<String>,
        env: Vec<(String, String)>,
    ) -> SysResult<SysRet> {
        self.counters.spawns += 1;
        let access = self.access_for(parent);
        let fsid = self.process(parent).fs;
        let abs = self.abs(parent, path);

        let target = self.fs(fsid).resolve(&abs, &access, FollowMode::Follow)?;
        let node = self.fs(fsid).inode(target)?;
        if node.is_dir() {
            return Err(Errno::EISDIR.into());
        }
        if !permitted(
            &access,
            node.meta.uid,
            node.meta.gid,
            node.meta.perm,
            Want::X,
        ) {
            return Err(Errno::EACCES.into());
        }

        // Match the executable *inode* against registered behaviours, so
        // symlinks (busybox-style) and hard links resolve correctly.
        let entry = self
            .registry
            .paths()
            .into_iter()
            .find(|rp| {
                self.fs(fsid)
                    .resolve(rp, &Access::root(), FollowMode::Follow)
                    .is_ok_and(|ino| ino == target)
            })
            .map(|rp| self.registry.get(rp).expect("listed path").clone());
        let Some(entry) = entry else {
            return Err(Errno::ENOEXEC.into());
        };

        let mut child = self.process(parent).fork_from(0);
        child.dynamic = entry.linkage == Linkage::Dynamic;
        if env.iter().any(|(k, _)| k == "LD_PRELOAD") {
            child.preload_active = true;
        }
        let child_pid = self.add_process(child);
        if self.id_consistency.get(&parent).copied().unwrap_or(false) {
            self.id_consistency.insert(child_pid, true);
        }

        let mut program = (entry.factory)();
        let mut exec_env = ExecEnv {
            argv,
            env,
            output: Vec::new(),
        };
        let code = {
            let mut ctx = SyscallCtx {
                kernel: self,
                pid: child_pid,
            };
            program.run(&mut ctx, &mut exec_env)
        };
        // Anything the program buffered in its ExecEnv joins the console.
        self.console.extend(exec_env.output);

        let killed = !self.process(child_pid).alive;
        self.shadow.remove(&child_pid);
        self.id_consistency.remove(&child_pid);
        self.processes.remove(&child_pid);

        // SIGSYS/KILL by filter shows as 128+31 like a shell would report.
        Ok(SysRet::Exit(if killed { 159 } else { code }))
    }
}

/// Execution context handed to programs: implements the libc boundary by
/// dispatching into the kernel.
pub struct SyscallCtx<'k> {
    kernel: &'k mut Kernel,
    pid: Pid,
}

impl SyscallCtx<'_> {
    /// The calling process's pid.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Escape hatch for tests and emulator internals.
    pub fn kernel(&mut self) -> &mut Kernel {
        self.kernel
    }
}

impl Sys for SyscallCtx<'_> {
    fn call(&mut self, call: SysCall) -> SysResult<SysRet> {
        self.kernel.syscall(self.pid, call)
    }
}

// ========================================================================
// libc → syscall-number mapping
// ========================================================================

/// Pick the first syscall the architecture implements — how libc selects
/// between legacy and modern entry points (footnote 7 of the paper).
fn pick(arch: Arch, prefs: &[Sysno]) -> Sysno {
    for &s in prefs {
        if s.number(arch).is_some() {
            return s;
        }
    }
    // Fall back to the last preference; encode() will still produce a
    // number for tracing via syscall_nr's fallback.
    *prefs.last().expect("non-empty preference list")
}

/// The raw number for tracing/filtering; unknown-on-arch resolves to an
/// impossible high number that no filter matches (like an ENOSYS call).
fn syscall_nr(arch: Arch, sysno: Sysno) -> u32 {
    sysno.number(arch).unwrap_or(0xFFFF)
}

/// Lower a logical libc call to (syscall, seccomp args) for `arch`.
fn encode(arch: Arch, call: &SysCall) -> (Sysno, [u64; 6]) {
    let id = |v: Option<u32>| v.map_or(ID_UNCHANGED, u64::from);
    match call {
        SysCall::ReadFile { .. } => (Sysno::Read, [3, FAKE_PTR, 4096, 0, 0, 0]),
        SysCall::WriteFile { .. } | SysCall::AppendFile { .. } | SysCall::ConsoleWrite { .. } => {
            (Sysno::Write, [1, FAKE_PTR, 0, 0, 0, 0])
        }
        SysCall::Mkdir { perm, .. } => (
            pick(arch, &[Sysno::Mkdir, Sysno::Mkdirat]),
            [FAKE_PTR, u64::from(*perm), 0, 0, 0, 0],
        ),
        SysCall::Unlink { .. } => (
            pick(arch, &[Sysno::Unlink, Sysno::Unlinkat]),
            [FAKE_PTR, 0, 0, 0, 0, 0],
        ),
        SysCall::Rmdir { .. } => (
            pick(arch, &[Sysno::Rmdir, Sysno::Unlinkat]),
            [FAKE_PTR, 0, 0, 0, 0, 0],
        ),
        SysCall::Rename { .. } => (
            pick(arch, &[Sysno::Rename, Sysno::Renameat]),
            [FAKE_PTR, FAKE_PTR, 0, 0, 0, 0],
        ),
        SysCall::Symlink { .. } => (
            pick(arch, &[Sysno::Symlink, Sysno::Symlinkat]),
            [FAKE_PTR, FAKE_PTR, 0, 0, 0, 0],
        ),
        SysCall::Link { .. } => (
            pick(arch, &[Sysno::Link, Sysno::Linkat]),
            [FAKE_PTR, FAKE_PTR, 0, 0, 0, 0],
        ),
        SysCall::Readlink { .. } => (
            pick(arch, &[Sysno::Readlink, Sysno::Readlinkat]),
            [FAKE_PTR, FAKE_PTR, 4096, 0, 0, 0],
        ),
        SysCall::Stat { .. } => (
            pick(arch, &[Sysno::Stat, Sysno::Newfstatat]),
            [FAKE_PTR, FAKE_PTR, 0, 0, 0, 0],
        ),
        SysCall::Lstat { .. } => (
            pick(arch, &[Sysno::Lstat, Sysno::Newfstatat]),
            [FAKE_PTR, FAKE_PTR, AT_SYMLINK_NOFOLLOW, 0, 0, 0],
        ),
        SysCall::ReadDir { .. } => (Sysno::Getdents64, [3, FAKE_PTR, 32768, 0, 0, 0]),
        SysCall::Chmod { perm, .. } => (
            pick(arch, &[Sysno::Chmod, Sysno::Fchmodat]),
            [FAKE_PTR, u64::from(*perm), 0, 0, 0, 0],
        ),
        SysCall::Chown { uid, gid, .. } => {
            let sy = pick(arch, &[Sysno::Chown32, Sysno::Chown, Sysno::Fchownat]);
            if sy == Sysno::Fchownat {
                (sy, [AT_FDCWD, FAKE_PTR, id(*uid), id(*gid), 0, 0])
            } else {
                (sy, [FAKE_PTR, id(*uid), id(*gid), 0, 0, 0])
            }
        }
        SysCall::Lchown { uid, gid, .. } => {
            let sy = pick(arch, &[Sysno::Lchown32, Sysno::Lchown, Sysno::Fchownat]);
            if sy == Sysno::Fchownat {
                (
                    sy,
                    [
                        AT_FDCWD,
                        FAKE_PTR,
                        id(*uid),
                        id(*gid),
                        AT_SYMLINK_NOFOLLOW,
                        0,
                    ],
                )
            } else {
                (sy, [FAKE_PTR, id(*uid), id(*gid), 0, 0, 0])
            }
        }
        SysCall::Fchownat {
            uid, gid, nofollow, ..
        } => (
            Sysno::Fchownat,
            [
                AT_FDCWD,
                FAKE_PTR,
                id(*uid),
                id(*gid),
                if *nofollow { AT_SYMLINK_NOFOLLOW } else { 0 },
                0,
            ],
        ),
        SysCall::Mknod { mode, dev, .. } => {
            let sy = pick(arch, &[Sysno::Mknod, Sysno::Mknodat]);
            if sy == Sysno::Mknodat {
                (sy, [AT_FDCWD, FAKE_PTR, u64::from(*mode), *dev, 0, 0])
            } else {
                (sy, [FAKE_PTR, u64::from(*mode), *dev, 0, 0, 0])
            }
        }
        SysCall::Mknodat { mode, dev, .. } => (
            Sysno::Mknodat,
            [AT_FDCWD, FAKE_PTR, u64::from(*mode), *dev, 0, 0],
        ),
        SysCall::Truncate { size, .. } => (Sysno::Truncate, [FAKE_PTR, *size, 0, 0, 0, 0]),
        SysCall::Utimens { .. } => (Sysno::Utimensat, [AT_FDCWD, FAKE_PTR, FAKE_PTR, 0, 0, 0]),
        SysCall::Setxattr { .. } => (Sysno::Setxattr, [FAKE_PTR, FAKE_PTR, FAKE_PTR, 0, 0, 0]),
        SysCall::Getxattr { .. } => (Sysno::Getxattr, [FAKE_PTR, FAKE_PTR, FAKE_PTR, 0, 0, 0]),
        SysCall::Listxattr { .. } => (Sysno::Listxattr, [FAKE_PTR, FAKE_PTR, 0, 0, 0, 0]),
        SysCall::Removexattr { .. } => (Sysno::Removexattr, [FAKE_PTR, FAKE_PTR, 0, 0, 0, 0]),
        SysCall::Getuid => (Sysno::Getuid, [0; 6]),
        SysCall::Geteuid => (Sysno::Geteuid, [0; 6]),
        SysCall::Getgid => (Sysno::Getgid, [0; 6]),
        SysCall::Getegid => (Sysno::Getegid, [0; 6]),
        SysCall::Getresuid => (Sysno::Getresuid, [FAKE_PTR, FAKE_PTR, FAKE_PTR, 0, 0, 0]),
        SysCall::Getresgid => (Sysno::Getresgid, [FAKE_PTR, FAKE_PTR, FAKE_PTR, 0, 0, 0]),
        SysCall::Getgroups => (Sysno::Getgroups, [0, FAKE_PTR, 0, 0, 0, 0]),
        SysCall::Setuid { uid } => (
            pick(arch, &[Sysno::Setuid32, Sysno::Setuid]),
            [u64::from(*uid), 0, 0, 0, 0, 0],
        ),
        SysCall::Setgid { gid } => (
            pick(arch, &[Sysno::Setgid32, Sysno::Setgid]),
            [u64::from(*gid), 0, 0, 0, 0, 0],
        ),
        SysCall::Setreuid { r, e } => (
            pick(arch, &[Sysno::Setreuid32, Sysno::Setreuid]),
            [id(*r), id(*e), 0, 0, 0, 0],
        ),
        SysCall::Setregid { r, e } => (
            pick(arch, &[Sysno::Setregid32, Sysno::Setregid]),
            [id(*r), id(*e), 0, 0, 0, 0],
        ),
        SysCall::Setresuid { r, e, s } => (
            pick(arch, &[Sysno::Setresuid32, Sysno::Setresuid]),
            [id(*r), id(*e), id(*s), 0, 0, 0],
        ),
        SysCall::Setresgid { r, e, s } => (
            pick(arch, &[Sysno::Setresgid32, Sysno::Setresgid]),
            [id(*r), id(*e), id(*s), 0, 0, 0],
        ),
        SysCall::Setgroups { groups } => (
            pick(arch, &[Sysno::Setgroups32, Sysno::Setgroups]),
            [groups.len() as u64, FAKE_PTR, 0, 0, 0, 0],
        ),
        SysCall::Setfsuid { uid } => (
            pick(arch, &[Sysno::Setfsuid32, Sysno::Setfsuid]),
            [u64::from(*uid), 0, 0, 0, 0, 0],
        ),
        SysCall::Setfsgid { gid } => (
            pick(arch, &[Sysno::Setfsgid32, Sysno::Setfsgid]),
            [u64::from(*gid), 0, 0, 0, 0, 0],
        ),
        SysCall::Capget => (Sysno::Capget, [FAKE_PTR, FAKE_PTR, 0, 0, 0, 0]),
        SysCall::Capset { .. } => (Sysno::Capset, [FAKE_PTR, FAKE_PTR, 0, 0, 0, 0]),
        SysCall::Getpid => (Sysno::Getpid, [0; 6]),
        SysCall::Umask { mask } => (Sysno::Umask, [u64::from(*mask), 0, 0, 0, 0, 0]),
        SysCall::Chdir { .. } => (Sysno::Chdir, [FAKE_PTR, 0, 0, 0, 0, 0]),
        SysCall::Getcwd => (Sysno::Getcwd, [FAKE_PTR, 4096, 0, 0, 0, 0]),
        SysCall::SetNoNewPrivs => (Sysno::Prctl, [38, 1, 0, 0, 0, 0]),
        SysCall::SeccompInstall { .. } => (Sysno::Seccomp, [1, 0, FAKE_PTR, 0, 0, 0]),
        SysCall::KexecLoad => (Sysno::KexecLoad, [0; 6]),
        SysCall::Spawn { .. } => (Sysno::Execve, [FAKE_PTR, FAKE_PTR, FAKE_PTR, 0, 0, 0]),
        SysCall::GetRandom { len } => (Sysno::Getrandom, [FAKE_PTR, *len, 0, 0, 0, 0]),
    }
}

/// The value a faked syscall appears to return (always the success shape).
fn fake_success_ret(call: &SysCall) -> SysRet {
    match call {
        SysCall::Getuid
        | SysCall::Geteuid
        | SysCall::Getgid
        | SysCall::Getegid
        | SysCall::Setfsuid { .. }
        | SysCall::Setfsgid { .. }
        | SysCall::Getpid => SysRet::Id(0),
        SysCall::Getresuid | SysCall::Getresgid => SysRet::Triple(0, 0, 0),
        SysCall::Getgroups => SysRet::Groups(Vec::new()),
        SysCall::Umask { .. } => SysRet::Mask(0),
        SysCall::Capget => SysRet::Caps {
            effective: zr_syscalls::caps::CapSet::EMPTY,
            permitted: zr_syscalls::caps::CapSet::EMPTY,
        },
        SysCall::Getcwd => SysRet::Text("/".into()),
        SysCall::Readlink { .. } => SysRet::Text(String::new()),
        SysCall::ReadFile { .. } | SysCall::Getxattr { .. } => SysRet::Bytes(Vec::new()),
        SysCall::ReadDir { .. } | SysCall::Listxattr { .. } => SysRet::Entries(Vec::new()),
        SysCall::Stat { .. } | SysCall::Lstat { .. } => SysRet::Stat(zr_vfs::inode::Stat {
            ino: 0,
            mode: 0,
            uid: 0,
            gid: 0,
            size: 0,
            nlink: 0,
            rdev: 0,
            mtime: 0,
        }),
        SysCall::Spawn { .. } => SysRet::Exit(0),
        SysCall::GetRandom { .. } => SysRet::Bytes(Vec::new()),
        _ => SysRet::Unit,
    }
}

fn errno_from_raw(raw: u16) -> Errno {
    match raw {
        1 => Errno::EPERM,
        2 => Errno::ENOENT,
        13 => Errno::EACCES,
        22 => Errno::EINVAL,
        38 => Errno::ENOSYS,
        _ => Errno::EPERM,
    }
}

fn note_for(call: &SysCall) -> String {
    match call {
        SysCall::Chown { path, uid, gid, .. }
        | SysCall::Lchown { path, uid, gid, .. }
        | SysCall::Fchownat { path, uid, gid, .. } => {
            format!("path={path} uid={uid:?} gid={gid:?}")
        }
        SysCall::Mknod { path, mode, .. } | SysCall::Mknodat { path, mode, .. } => {
            format!("path={path} mode={mode:#o}")
        }
        SysCall::Setuid { uid } => format!("uid={uid}"),
        SysCall::Setresuid { r, e, s } => format!("r={r:?} e={e:?} s={s:?}"),
        SysCall::Setgroups { groups } => format!("n={}", groups.len()),
        SysCall::ReadFile { path }
        | SysCall::WriteFile { path, .. }
        | SysCall::Mkdir { path, .. }
        | SysCall::Unlink { path }
        | SysCall::Stat { path }
        | SysCall::Lstat { path }
        | SysCall::Setxattr { path, .. }
        | SysCall::Chmod { path, .. } => format!("path={path}"),
        SysCall::Spawn { path, argv, .. } => format!("path={path} argv={argv:?}"),
        _ => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sys::SysExt;

    fn kernel() -> Kernel {
        Kernel::default_kernel()
    }

    #[test]
    fn boot_state() {
        let k = kernel();
        assert!(k.has_process(Kernel::INIT_PID));
        assert!(k.has_process(Kernel::HOST_USER_PID));
        assert_eq!(k.process(Kernel::HOST_USER_PID).cred.euid, 1000);
    }

    #[test]
    fn getrandom_is_deterministic_per_config() {
        let mut a = kernel();
        let mut b = kernel();
        let bytes_a = a.ctx(Kernel::HOST_USER_PID).getrandom(20).unwrap();
        let bytes_b = b.ctx(Kernel::HOST_USER_PID).getrandom(20).unwrap();
        assert_eq!(bytes_a.len(), 20);
        assert_eq!(bytes_a, bytes_b, "equal configs replay the same stream");
        // The stream advances: a second draw differs from the first.
        let again = a.ctx(Kernel::HOST_USER_PID).getrandom(20).unwrap();
        assert_ne!(bytes_a, again);
    }

    #[test]
    fn getrandom_diverges_under_injected_seed() {
        let mut cfg = KernelConfig::default();
        cfg.nondet.gen_seed = Some(7);
        let mut skewed = Kernel::new(cfg);
        let mut clean = kernel();
        let sk = skewed.ctx(Kernel::HOST_USER_PID).getrandom(16).unwrap();
        let cl = clean.ctx(Kernel::HOST_USER_PID).getrandom(16).unwrap();
        assert_ne!(sk, cl, "an injected gen_seed forces payload divergence");
    }

    #[test]
    fn host_user_writes_in_home() {
        let mut k = kernel();
        // /home/user is root-owned 0755 in the skeleton; give it away
        // first as root would have at account creation.
        let ino = k
            .fs(0)
            .resolve("/home/user", &Access::root(), FollowMode::Follow)
            .unwrap();
        k.fs_mut(0).set_owner(ino, 1000, 1000).unwrap();

        let mut ctx = k.ctx(Kernel::HOST_USER_PID);
        ctx.write_file("/home/user/x", 0o644, b"hi".to_vec())
            .unwrap();
        let st = ctx.stat("/home/user/x").unwrap();
        assert_eq!((st.uid, st.gid), (1000, 1000));
        // umask applied.
        assert_eq!(st.mode & 0o777, 0o644);
    }

    #[test]
    fn host_user_cannot_chown() {
        let mut k = kernel();
        let mut ctx = k.ctx(Kernel::HOST_USER_PID);
        // A real ownership change (target differs from current owner).
        assert_eq!(
            ctx.chown("/tmp", 1234, 1234),
            Err(SysError::Errno(Errno::EPERM))
        );
        // chown to the current owner is a permitted no-op.
        ctx.chown("/tmp", 0, 0).unwrap();
    }

    #[test]
    fn init_root_can_chown() {
        let mut k = kernel();
        let mut ctx = k.ctx(Kernel::INIT_PID);
        ctx.write_file("/f", 0o644, vec![]).unwrap();
        ctx.chown("/f", 1234, 5678).unwrap();
        let st = ctx.stat("/f").unwrap();
        assert_eq!((st.uid, st.gid), (1234, 5678));
    }

    #[test]
    fn chown_to_current_owner_is_allowed_unprivileged() {
        // The no-op chown rule that lets tar/apk-style extraction succeed
        // when ids happen to match.
        let mut k = kernel();
        let ino = k
            .fs(0)
            .resolve("/home/user", &Access::root(), FollowMode::Follow)
            .unwrap();
        k.fs_mut(0).set_owner(ino, 1000, 1000).unwrap();
        let mut ctx = k.ctx(Kernel::HOST_USER_PID);
        ctx.write_file("/home/user/f", 0o644, vec![]).unwrap();
        ctx.chown("/home/user/f", 1000, 1000).unwrap(); // no-op: fine
        assert_eq!(
            ctx.chown("/home/user/f", 1001, 1000),
            Err(SysError::Errno(Errno::EPERM))
        );
    }

    #[test]
    fn mknod_device_requires_privilege() {
        let mut k = kernel();
        let dev = mode::makedev(1, 3);
        {
            let mut ctx = k.ctx(Kernel::HOST_USER_PID);
            assert_eq!(
                ctx.mknod("/tmp/null", mode::S_IFCHR | 0o666, dev),
                Err(SysError::Errno(Errno::EPERM))
            );
            // FIFOs are not privileged.
            ctx.mknod("/tmp/fifo", mode::S_IFIFO | 0o644, 0).unwrap();
        }
        let mut ctx = k.ctx(Kernel::INIT_PID);
        ctx.mknod("/dev-null", mode::S_IFCHR | 0o666, dev).unwrap();
        let st = ctx.stat("/dev-null").unwrap();
        assert_eq!(st.rdev, dev);
    }

    #[test]
    fn setuid_rules() {
        let mut k = kernel();
        {
            let mut ctx = k.ctx(Kernel::HOST_USER_PID);
            // To an arbitrary uid: EPERM (no CAP_SETUID).
            assert_eq!(ctx.setuid(0), Err(SysError::Errno(Errno::EPERM)));
            // To own uid: fine.
            ctx.setuid(1000).unwrap();
        }
        let mut ctx = k.ctx(Kernel::INIT_PID);
        ctx.setuid(500).unwrap(); // root may become anyone
        assert_eq!(ctx.geteuid(), 500);
    }

    #[test]
    fn seccomp_install_needs_nnp() {
        let mut k = kernel();
        let prog =
            zr_seccomp::compile(&zr_seccomp::spec::zero_consistency(&[Arch::X8664])).unwrap();
        let mut ctx = k.ctx(Kernel::HOST_USER_PID);
        assert_eq!(
            ctx.seccomp_install(prog.clone()),
            Err(SysError::Errno(Errno::EACCES))
        );
        ctx.set_no_new_privs().unwrap();
        ctx.seccomp_install(prog).unwrap();
    }

    #[test]
    fn filter_fakes_chown_for_host_user() {
        let mut k = kernel();
        let prog =
            zr_seccomp::compile(&zr_seccomp::spec::zero_consistency(&[Arch::X8664])).unwrap();
        let mut ctx = k.ctx(Kernel::HOST_USER_PID);
        ctx.set_no_new_privs().unwrap();
        ctx.seccomp_install(prog).unwrap();
        // chown now "succeeds"...
        ctx.chown("/tmp", 0, 0).unwrap();
        // ...but the zero-consistency lie is visible: nothing changed.
        let st = ctx.stat("/tmp").unwrap();
        assert_eq!(st.uid, 0, "already was 0; key point is no EPERM");
        ctx.chown("/tmp", 4321, 4321).unwrap();
        assert_eq!(ctx.stat("/tmp").unwrap().uid, 0, "stat tells the truth");
        // kexec self-test (§5 class 4).
        ctx.kexec_load().unwrap();
    }

    #[test]
    fn kexec_load_eperm_without_filter() {
        let mut k = kernel();
        let mut ctx = k.ctx(Kernel::HOST_USER_PID);
        assert_eq!(ctx.kexec_load(), Err(SysError::Errno(Errno::EPERM)));
    }

    #[test]
    fn filter_taxes_every_syscall_counter() {
        let mut k = kernel();
        let before = k.counters;
        {
            let mut ctx = k.ctx(Kernel::HOST_USER_PID);
            let _ = ctx.getpid();
        }
        let unfiltered_cost = k.counters.since(&before).bpf_instructions;
        assert_eq!(unfiltered_cost, 0);

        let prog =
            zr_seccomp::compile(&zr_seccomp::spec::zero_consistency(&[Arch::X8664])).unwrap();
        {
            let mut ctx = k.ctx(Kernel::HOST_USER_PID);
            ctx.set_no_new_privs().unwrap();
            ctx.seccomp_install(prog).unwrap();
        }
        let before = k.counters;
        {
            let mut ctx = k.ctx(Kernel::HOST_USER_PID);
            let _ = ctx.getpid();
        }
        let filtered_cost = k.counters.since(&before).bpf_instructions;
        assert!(filtered_cost > 0, "§6: every syscall pays the filter tax");
    }

    #[test]
    fn kill_filter_kills() {
        let mut k = kernel();
        let mut spec = zr_seccomp::spec::zero_consistency(&[Arch::X8664]);
        for r in &mut spec.rules {
            if let zr_seccomp::Rule::Always(a) = &mut r.rule {
                *a = zr_seccomp::Action::KillProcess;
            }
        }
        let prog = zr_seccomp::compile(&spec).unwrap();
        let mut ctx = k.ctx(Kernel::HOST_USER_PID);
        ctx.set_no_new_privs().unwrap();
        ctx.seccomp_install(prog).unwrap();
        assert_eq!(ctx.chown("/tmp", 0, 0), Err(SysError::Killed));
        // Process is dead: every further syscall fails the same way.
        assert_eq!(ctx.call(SysCall::Getpid), Err(SysError::Killed));
    }

    #[test]
    fn umask_roundtrip() {
        let mut k = kernel();
        let mut ctx = k.ctx(Kernel::HOST_USER_PID);
        let old = ctx.umask(0o077);
        assert_eq!(old, 0o022);
        assert_eq!(ctx.umask(0o022), 0o077);
    }

    #[test]
    fn chdir_getcwd() {
        let mut k = kernel();
        let mut ctx = k.ctx(Kernel::INIT_PID);
        ctx.mkdir_p("/a/b", 0o755).unwrap();
        ctx.chdir("/a/b").unwrap();
        assert_eq!(ctx.getcwd(), "/a/b");
        // Relative paths resolve against cwd now.
        ctx.write_file("rel.txt", 0o644, b"x".to_vec()).unwrap();
        assert!(ctx.exists("/a/b/rel.txt"));
        ctx.chdir("..").unwrap();
        assert_eq!(ctx.getcwd(), "/a");
    }

    #[test]
    fn trace_records_dispositions() {
        let mut k = kernel();
        {
            let mut ctx = k.ctx(Kernel::HOST_USER_PID);
            let _ = ctx.chown("/tmp", 1234, 1234); // EPERM
        }
        let stats = k.trace.stats();
        assert_eq!(stats.privileged, 1);
        assert_eq!(stats.failed, 1);
        assert!(k.trace.any_privileged());
    }

    #[test]
    fn setgroups_denied_without_cap() {
        let mut k = kernel();
        let mut ctx = k.ctx(Kernel::HOST_USER_PID);
        assert_eq!(ctx.setgroups(&[1000]), Err(SysError::Errno(Errno::EPERM)));
        let mut ctx = k.ctx(Kernel::INIT_PID);
        ctx.setgroups(&[1, 2, 3]).unwrap();
        assert_eq!(ctx.getgroups(), vec![1, 2, 3]);
    }

    #[test]
    fn capset_cannot_grow() {
        let mut k = kernel();
        let mut ctx = k.ctx(Kernel::HOST_USER_PID);
        let full = zr_syscalls::caps::CapSet::full();
        assert_eq!(ctx.capset(full, full), Err(SysError::Errno(Errno::EPERM)));
        // Root can shrink.
        let mut ctx = k.ctx(Kernel::INIT_PID);
        let empty = zr_syscalls::caps::CapSet::EMPTY;
        ctx.capset(empty, empty).unwrap();
        let (eff, perm) = ctx.capget();
        assert!(eff.is_empty() && perm.is_empty());
    }

    #[test]
    fn arch_changes_syscall_identity_in_trace() {
        let mut k = kernel();
        k.process_mut(Kernel::HOST_USER_PID).arch = Arch::Aarch64;
        {
            let mut ctx = k.ctx(Kernel::HOST_USER_PID);
            let _ = ctx.chown("/tmp", 0, 0);
        }
        // On aarch64 there is no chown(2); libc used fchownat (footnote 7).
        assert_eq!(k.trace.count(Sysno::Chown), 0);
        assert_eq!(k.trace.count(Sysno::Fchownat), 1);
    }

    #[test]
    fn i386_uses_chown32() {
        let mut k = kernel();
        k.process_mut(Kernel::HOST_USER_PID).arch = Arch::I386;
        {
            let mut ctx = k.ctx(Kernel::HOST_USER_PID);
            let _ = ctx.chown("/tmp", 0, 0);
        }
        assert_eq!(k.trace.count(Sysno::Chown32), 1);
    }

    #[test]
    fn console_write_is_a_syscall() {
        let mut k = kernel();
        let before = k.counters.syscalls;
        {
            let mut ctx = k.ctx(Kernel::HOST_USER_PID);
            ctx.println("hello");
        }
        assert_eq!(k.counters.syscalls, before + 1);
        assert_eq!(k.take_console(), vec!["hello".to_string()]);
    }
}
