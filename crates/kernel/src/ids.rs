//! User namespaces, id maps, and namespace-relative capability checks.
//!
//! Ids come in two flavours, as in Linux: *kernel ids* (`kuid`/`kgid`,
//! global, what inodes and credentials store) and *namespace-local ids*
//! (what processes see and pass to syscalls). A namespace's `uid_map`
//! translates between them; ids with no mapping are invalid targets
//! (`EINVAL` from `chown`/`setuid`) and read back as the overflow id
//! 65534 — both behaviours are central to why Figure 1b fails.

use zr_syscalls::caps::Cap;

/// The uid/gid that unmapped kernel ids display as (`/proc/sys/kernel/
/// overflowuid`).
pub const OVERFLOW_ID: u32 = 65534;

/// Index of a user namespace in the kernel's table.
pub type NsId = usize;

/// One extent of an id map: `count` ids starting at `inside_first` map to
/// kernel ids starting at `outside_first`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdMap {
    /// First namespace-local id.
    pub inside_first: u32,
    /// First kernel id it maps to.
    pub outside_first: u32,
    /// Number of consecutive ids mapped.
    pub count: u32,
}

impl IdMap {
    /// Map a namespace-local id to a kernel id.
    fn map_to_kernel(self, inside: u32) -> Option<u32> {
        if inside >= self.inside_first && inside - self.inside_first < self.count {
            Some(self.outside_first + (inside - self.inside_first))
        } else {
            None
        }
    }

    /// Map a kernel id to a namespace-local id.
    fn map_to_inside(self, kernel: u32) -> Option<u32> {
        if kernel >= self.outside_first && kernel - self.outside_first < self.count {
            Some(self.inside_first + (kernel - self.outside_first))
        } else {
            None
        }
    }
}

/// A user namespace.
#[derive(Debug, Clone)]
pub struct UserNs {
    /// This namespace's id.
    pub id: NsId,
    /// Parent namespace (`None` only for the initial namespace).
    pub parent: Option<NsId>,
    /// Kernel uid of the creator — the owner has every capability *in*
    /// this namespace.
    pub owner_kuid: u32,
    /// uid extents.
    pub uid_map: Vec<IdMap>,
    /// gid extents.
    pub gid_map: Vec<IdMap>,
    /// Whether `setgroups(2)` is permitted (must be denied before an
    /// unprivileged gid_map write, per user_namespaces(7)).
    pub setgroups_allowed: bool,
}

impl UserNs {
    /// The initial namespace: identity maps for every id.
    pub fn init() -> UserNs {
        UserNs {
            id: 0,
            parent: None,
            owner_kuid: 0,
            uid_map: vec![IdMap {
                inside_first: 0,
                outside_first: 0,
                count: u32::MAX,
            }],
            gid_map: vec![IdMap {
                inside_first: 0,
                outside_first: 0,
                count: u32::MAX,
            }],
            setgroups_allowed: true,
        }
    }

    /// Namespace-local uid → kernel uid.
    pub fn make_kuid(&self, uid: u32) -> Option<u32> {
        self.uid_map.iter().find_map(|m| m.map_to_kernel(uid))
    }

    /// Namespace-local gid → kernel gid.
    pub fn make_kgid(&self, gid: u32) -> Option<u32> {
        self.gid_map.iter().find_map(|m| m.map_to_kernel(gid))
    }

    /// Kernel uid → namespace-local uid ([`OVERFLOW_ID`] if unmapped).
    pub fn from_kuid(&self, kuid: u32) -> u32 {
        self.uid_map
            .iter()
            .find_map(|m| m.map_to_inside(kuid))
            .unwrap_or(OVERFLOW_ID)
    }

    /// Kernel gid → namespace-local gid ([`OVERFLOW_ID`] if unmapped).
    pub fn from_kgid(&self, kgid: u32) -> u32 {
        self.gid_map
            .iter()
            .find_map(|m| m.map_to_inside(kgid))
            .unwrap_or(OVERFLOW_ID)
    }
}

/// The kernel's namespace table.
#[derive(Debug, Clone)]
pub struct NsTable {
    table: Vec<UserNs>,
}

impl Default for NsTable {
    fn default() -> NsTable {
        NsTable::new()
    }
}

impl NsTable {
    /// Table containing only the initial namespace (id 0).
    pub fn new() -> NsTable {
        NsTable {
            table: vec![UserNs::init()],
        }
    }

    /// Borrow a namespace.
    pub fn get(&self, id: NsId) -> &UserNs {
        &self.table[id]
    }

    /// Mutably borrow a namespace.
    pub fn get_mut(&mut self, id: NsId) -> &mut UserNs {
        &mut self.table[id]
    }

    /// Create a child namespace of `parent`, owned by `owner_kuid`, with
    /// empty id maps (to be written before ids become usable).
    pub fn create_child(&mut self, parent: NsId, owner_kuid: u32) -> NsId {
        let id = self.table.len();
        self.table.push(UserNs {
            id,
            parent: Some(parent),
            owner_kuid,
            uid_map: Vec::new(),
            gid_map: Vec::new(),
            setgroups_allowed: true,
        });
        id
    }

    /// `ns_capable`: does a credential (in `cred_ns`, with `effective`
    /// capability bit for `cap`, euid `cred_euid_kuid`) hold `cap` over
    /// `target` namespace?
    ///
    /// Mirrors the kernel's `cap_capable` walk: ascend from the target; if
    /// we reach the credential's namespace, the answer is its capability
    /// bit; if the credential's namespace is the *parent* of some
    /// intermediate namespace that the credential's euid *owns*, the
    /// credential has every capability there.
    pub fn ns_capable(
        &self,
        cred_ns: NsId,
        cred_euid_kuid: u32,
        has_cap: bool,
        target: NsId,
        _cap: Cap,
    ) -> bool {
        let mut ns = target;
        loop {
            if ns == cred_ns {
                return has_cap;
            }
            let Some(parent) = self.get(ns).parent else {
                return false; // walked past the root without meeting cred_ns
            };
            if parent == cred_ns && self.get(ns).owner_kuid == cred_euid_kuid {
                return true; // owner of the child ns: all caps within it
            }
            ns = parent;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_ns_is_identity() {
        let ns = UserNs::init();
        assert_eq!(ns.make_kuid(0), Some(0));
        assert_eq!(ns.make_kuid(12345), Some(12345));
        assert_eq!(ns.from_kuid(99), 99);
    }

    #[test]
    fn single_id_map_type_iii() {
        // The Charliecloud Type III map: container 0 <-> host 1000.
        let mut t = NsTable::new();
        let child = t.create_child(0, 1000);
        t.get_mut(child).uid_map.push(IdMap {
            inside_first: 0,
            outside_first: 1000,
            count: 1,
        });
        let ns = t.get(child);
        assert_eq!(ns.make_kuid(0), Some(1000));
        assert_eq!(ns.make_kuid(1), None, "only one id is mapped");
        assert_eq!(ns.make_kuid(998), None, "ssh_keys gid would be unmappable");
        assert_eq!(ns.from_kuid(1000), 0);
        assert_eq!(ns.from_kuid(0), OVERFLOW_ID, "host root reads as nobody");
    }

    #[test]
    fn range_map_type_ii() {
        let mut t = NsTable::new();
        let child = t.create_child(0, 1000);
        t.get_mut(child).uid_map.push(IdMap {
            inside_first: 0,
            outside_first: 100_000,
            count: 65_536,
        });
        let ns = t.get(child);
        assert_eq!(ns.make_kuid(0), Some(100_000));
        assert_eq!(ns.make_kuid(998), Some(100_998));
        assert_eq!(ns.make_kuid(65_535), Some(165_535));
        assert_eq!(ns.make_kuid(65_536), None);
        assert_eq!(ns.from_kuid(100_998), 998);
    }

    #[test]
    fn ns_capable_same_ns_uses_bit() {
        let t = NsTable::new();
        assert!(t.ns_capable(0, 0, true, 0, Cap::Chown));
        assert!(!t.ns_capable(0, 0, false, 0, Cap::Chown));
    }

    #[test]
    fn container_root_not_capable_over_init() {
        // THE paper-critical property: full caps inside an unprivileged
        // user namespace grant nothing over init-owned objects.
        let mut t = NsTable::new();
        let child = t.create_child(0, 1000);
        assert!(
            !t.ns_capable(child, 1000, true, 0, Cap::Chown),
            "child ns caps must not reach the init namespace"
        );
    }

    #[test]
    fn owner_is_capable_over_child_ns() {
        let mut t = NsTable::new();
        let child = t.create_child(0, 1000);
        // The creating user (kuid 1000, in init ns) owns the child.
        assert!(t.ns_capable(0, 1000, false, child, Cap::SysAdmin));
        // A different user is not.
        assert!(!t.ns_capable(0, 1001, false, child, Cap::SysAdmin));
        // init root with the bit reaches anything below.
        assert!(t.ns_capable(0, 0, true, child, Cap::SysAdmin));
    }

    #[test]
    fn grandchild_walk() {
        let mut t = NsTable::new();
        let child = t.create_child(0, 1000);
        let grand = t.create_child(child, 1000);
        // init root reaches the grandchild via the bit.
        assert!(t.ns_capable(0, 0, true, grand, Cap::Chown));
        // child-ns cred with the bit reaches grandchild.
        assert!(t.ns_capable(child, 1000, true, grand, Cap::Chown));
        // grandchild cred cannot reach child.
        assert!(!t.ns_capable(grand, 1000, true, child, Cap::Chown));
    }
}
