//! The syscall surface as data, and the `Sys` trait — the model's *libc
//! boundary*.
//!
//! Simulated programs never touch the kernel directly: they hold a
//! `&mut dyn Sys` and issue [`SysCall`] values through it (usually via the
//! typed [`SysExt`] helpers). The kernel's `SyscallCtx` implements `Sys`
//! by dispatching; userspace emulators (the LD_PRELOAD fakeroot of §3.1)
//! implement it by *wrapping* another `Sys` — a faithful model of shared-
//! library interposition, including its blind spot: statically linked
//! programs are handed the raw context and bypass any wrapper.

use zr_syscalls::caps::CapSet;
use zr_syscalls::Errno;
use zr_vfs::inode::Stat;

/// Everything a simulated program can ask of the OS.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field names mirror the corresponding man pages
pub enum SysCall {
    // --- files ---------------------------------------------------------
    ReadFile {
        path: String,
    },
    WriteFile {
        path: String,
        perm: u32,
        data: Vec<u8>,
    },
    AppendFile {
        path: String,
        data: Vec<u8>,
    },
    Mkdir {
        path: String,
        perm: u32,
    },
    Unlink {
        path: String,
    },
    Rmdir {
        path: String,
    },
    Rename {
        old: String,
        new: String,
    },
    Symlink {
        target: String,
        linkpath: String,
    },
    Link {
        existing: String,
        newpath: String,
    },
    Readlink {
        path: String,
    },
    Stat {
        path: String,
    },
    Lstat {
        path: String,
    },
    ReadDir {
        path: String,
    },
    Chmod {
        path: String,
        perm: u32,
    },
    /// `chown(2)`: follow symlinks. `None` = leave unchanged (-1).
    Chown {
        path: String,
        uid: Option<u32>,
        gid: Option<u32>,
    },
    /// `lchown(2)`: operate on the symlink itself.
    Lchown {
        path: String,
        uid: Option<u32>,
        gid: Option<u32>,
    },
    /// `fchownat(2)` with `AT_SYMLINK_NOFOLLOW` optionally set.
    Fchownat {
        path: String,
        uid: Option<u32>,
        gid: Option<u32>,
        nofollow: bool,
    },
    /// `mknod(2)`: `mode` carries type bits; `dev` is the packed device.
    Mknod {
        path: String,
        mode: u32,
        dev: u64,
    },
    /// `mknodat(2)` (mode is the *third* argument — the filter cares).
    Mknodat {
        path: String,
        mode: u32,
        dev: u64,
    },
    Truncate {
        path: String,
        size: u64,
    },
    Utimens {
        path: String,
        mtime: u64,
    },
    Setxattr {
        path: String,
        name: String,
        value: Vec<u8>,
    },
    Getxattr {
        path: String,
        name: String,
    },
    Listxattr {
        path: String,
    },
    Removexattr {
        path: String,
        name: String,
    },

    // --- identity -------------------------------------------------------
    Getuid,
    Geteuid,
    Getgid,
    Getegid,
    Getresuid,
    Getresgid,
    Getgroups,
    Setuid {
        uid: u32,
    },
    Setgid {
        gid: u32,
    },
    Setreuid {
        r: Option<u32>,
        e: Option<u32>,
    },
    Setregid {
        r: Option<u32>,
        e: Option<u32>,
    },
    Setresuid {
        r: Option<u32>,
        e: Option<u32>,
        s: Option<u32>,
    },
    Setresgid {
        r: Option<u32>,
        e: Option<u32>,
        s: Option<u32>,
    },
    Setgroups {
        groups: Vec<u32>,
    },
    Setfsuid {
        uid: u32,
    },
    Setfsgid {
        gid: u32,
    },
    Capget,
    Capset {
        effective: CapSet,
        permitted: CapSet,
    },

    // --- process ----------------------------------------------------------
    Getpid,
    Umask {
        mask: u32,
    },
    Chdir {
        path: String,
    },
    Getcwd,
    /// `prctl(PR_SET_NO_NEW_PRIVS, 1)` — prerequisite for an unprivileged
    /// filter install.
    SetNoNewPrivs,
    /// `seccomp(SECCOMP_SET_MODE_FILTER)` with an already-compiled program.
    SeccompInstall {
        prog: zr_bpf::Program,
    },
    /// `kexec_load(2)` with null arguments — the filter self-test.
    KexecLoad,
    /// fork + execve + waitpid, collapsed: run `path` to completion.
    Spawn {
        path: String,
        argv: Vec<String>,
        env: Vec<(String, String)>,
    },
    /// `write(2)` to stdout: one console line. Goes through the full
    /// dispatch so output, too, pays the per-syscall filter tax (§6).
    ConsoleWrite {
        line: String,
    },
    /// `getrandom(2)`: `len` bytes of kernel entropy. The simulated
    /// stream is deterministic (seeded per kernel) so independent
    /// builds agree byte-for-byte — unless an audit-mode nondeterminism
    /// seed is injected to model a machine-local RNG.
    GetRandom {
        len: u64,
    },
}

impl SysCall {
    /// Short name for traces (matches the *logical* libc call; the kernel
    /// records the per-arch syscall actually used).
    pub fn name(&self) -> &'static str {
        match self {
            SysCall::ReadFile { .. } => "read",
            SysCall::WriteFile { .. } => "write",
            SysCall::AppendFile { .. } => "append",
            SysCall::Mkdir { .. } => "mkdir",
            SysCall::Unlink { .. } => "unlink",
            SysCall::Rmdir { .. } => "rmdir",
            SysCall::Rename { .. } => "rename",
            SysCall::Symlink { .. } => "symlink",
            SysCall::Link { .. } => "link",
            SysCall::Readlink { .. } => "readlink",
            SysCall::Stat { .. } => "stat",
            SysCall::Lstat { .. } => "lstat",
            SysCall::ReadDir { .. } => "readdir",
            SysCall::Chmod { .. } => "chmod",
            SysCall::Chown { .. } => "chown",
            SysCall::Lchown { .. } => "lchown",
            SysCall::Fchownat { .. } => "fchownat",
            SysCall::Mknod { .. } => "mknod",
            SysCall::Mknodat { .. } => "mknodat",
            SysCall::Truncate { .. } => "truncate",
            SysCall::Utimens { .. } => "utimens",
            SysCall::Setxattr { .. } => "setxattr",
            SysCall::Getxattr { .. } => "getxattr",
            SysCall::Listxattr { .. } => "listxattr",
            SysCall::Removexattr { .. } => "removexattr",
            SysCall::Getuid => "getuid",
            SysCall::Geteuid => "geteuid",
            SysCall::Getgid => "getgid",
            SysCall::Getegid => "getegid",
            SysCall::Getresuid => "getresuid",
            SysCall::Getresgid => "getresgid",
            SysCall::Getgroups => "getgroups",
            SysCall::Setuid { .. } => "setuid",
            SysCall::Setgid { .. } => "setgid",
            SysCall::Setreuid { .. } => "setreuid",
            SysCall::Setregid { .. } => "setregid",
            SysCall::Setresuid { .. } => "setresuid",
            SysCall::Setresgid { .. } => "setresgid",
            SysCall::Setgroups { .. } => "setgroups",
            SysCall::Setfsuid { .. } => "setfsuid",
            SysCall::Setfsgid { .. } => "setfsgid",
            SysCall::Capget => "capget",
            SysCall::Capset { .. } => "capset",
            SysCall::Getpid => "getpid",
            SysCall::Umask { .. } => "umask",
            SysCall::Chdir { .. } => "chdir",
            SysCall::Getcwd => "getcwd",
            SysCall::SetNoNewPrivs => "prctl",
            SysCall::SeccompInstall { .. } => "seccomp",
            SysCall::KexecLoad => "kexec_load",
            SysCall::Spawn { .. } => "execve",
            SysCall::ConsoleWrite { .. } => "write",
            SysCall::GetRandom { .. } => "getrandom",
        }
    }
}

/// Values a syscall can return.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum SysRet {
    Unit,
    Id(u32),
    Triple(u32, u32, u32),
    Groups(Vec<u32>),
    Stat(Stat),
    Bytes(Vec<u8>),
    Text(String),
    Entries(Vec<String>),
    Caps {
        effective: CapSet,
        permitted: CapSet,
    },
    Exit(i32),
    Mask(u32),
}

/// How a syscall can fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysError {
    /// Ordinary errno.
    Errno(Errno),
    /// The process was killed (by a seccomp KILL disposition); the caller
    /// must unwind immediately.
    Killed,
}

impl From<Errno> for SysError {
    fn from(e: Errno) -> SysError {
        SysError::Errno(e)
    }
}

impl std::fmt::Display for SysError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SysError::Errno(e) => write!(f, "{e}"),
            SysError::Killed => write!(f, "killed by seccomp filter"),
        }
    }
}

impl std::error::Error for SysError {}

/// Result of a syscall.
pub type SysResult<T> = Result<T, SysError>;

/// The libc boundary. One object-safe method so interposers (fakeroot)
/// forward with a single `match`.
pub trait Sys {
    /// Issue a syscall.
    fn call(&mut self, call: SysCall) -> SysResult<SysRet>;
}

macro_rules! expect_ret {
    ($value:expr, $pattern:pat => $out:expr, $what:literal) => {
        match $value {
            $pattern => Ok($out),
            other => unreachable!(
                concat!("kernel returned wrong shape for ", $what, ": {:?}"),
                other
            ),
        }
    };
}

/// Typed convenience wrappers over [`Sys::call`]. Blanket-implemented, so
/// `&mut dyn Sys` gets them all.
#[allow(missing_docs)] // thin wrappers; semantics documented on SysCall
pub trait SysExt: Sys {
    fn read_file(&mut self, path: &str) -> SysResult<Vec<u8>> {
        expect_ret!(self.call(SysCall::ReadFile { path: path.into() })?, SysRet::Bytes(b) => b, "read")
    }
    fn write_file(&mut self, path: &str, perm: u32, data: Vec<u8>) -> SysResult<()> {
        expect_ret!(self.call(SysCall::WriteFile { path: path.into(), perm, data })?, SysRet::Unit => (), "write")
    }
    fn append_file(&mut self, path: &str, data: &[u8]) -> SysResult<()> {
        expect_ret!(self.call(SysCall::AppendFile { path: path.into(), data: data.to_vec() })?, SysRet::Unit => (), "append")
    }
    fn mkdir(&mut self, path: &str, perm: u32) -> SysResult<()> {
        expect_ret!(self.call(SysCall::Mkdir { path: path.into(), perm })?, SysRet::Unit => (), "mkdir")
    }
    /// `mkdir -p` built on mkdir/stat (a userspace convenience, like
    /// coreutils).
    fn mkdir_p(&mut self, path: &str, perm: u32) -> SysResult<()> {
        let norm = zr_vfs::path::normalize(path);
        let mut built = String::new();
        for comp in norm.split('/').filter(|c| !c.is_empty()) {
            built.push('/');
            built.push_str(comp);
            match self.mkdir(&built, perm) {
                Ok(()) => {}
                Err(SysError::Errno(Errno::EEXIST)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
    fn unlink(&mut self, path: &str) -> SysResult<()> {
        expect_ret!(self.call(SysCall::Unlink { path: path.into() })?, SysRet::Unit => (), "unlink")
    }
    fn rmdir(&mut self, path: &str) -> SysResult<()> {
        expect_ret!(self.call(SysCall::Rmdir { path: path.into() })?, SysRet::Unit => (), "rmdir")
    }
    fn rename(&mut self, old: &str, new: &str) -> SysResult<()> {
        expect_ret!(self.call(SysCall::Rename { old: old.into(), new: new.into() })?, SysRet::Unit => (), "rename")
    }
    fn symlink(&mut self, target: &str, linkpath: &str) -> SysResult<()> {
        expect_ret!(self.call(SysCall::Symlink { target: target.into(), linkpath: linkpath.into() })?, SysRet::Unit => (), "symlink")
    }
    fn link(&mut self, existing: &str, newpath: &str) -> SysResult<()> {
        expect_ret!(self.call(SysCall::Link { existing: existing.into(), newpath: newpath.into() })?, SysRet::Unit => (), "link")
    }
    fn readlink(&mut self, path: &str) -> SysResult<String> {
        expect_ret!(self.call(SysCall::Readlink { path: path.into() })?, SysRet::Text(t) => t, "readlink")
    }
    fn stat(&mut self, path: &str) -> SysResult<Stat> {
        expect_ret!(self.call(SysCall::Stat { path: path.into() })?, SysRet::Stat(s) => s, "stat")
    }
    fn lstat(&mut self, path: &str) -> SysResult<Stat> {
        expect_ret!(self.call(SysCall::Lstat { path: path.into() })?, SysRet::Stat(s) => s, "lstat")
    }
    fn exists(&mut self, path: &str) -> bool {
        self.stat(path).is_ok()
    }
    fn read_dir(&mut self, path: &str) -> SysResult<Vec<String>> {
        expect_ret!(self.call(SysCall::ReadDir { path: path.into() })?, SysRet::Entries(e) => e, "readdir")
    }
    fn chmod(&mut self, path: &str, perm: u32) -> SysResult<()> {
        expect_ret!(self.call(SysCall::Chmod { path: path.into(), perm })?, SysRet::Unit => (), "chmod")
    }
    fn chown(&mut self, path: &str, uid: u32, gid: u32) -> SysResult<()> {
        expect_ret!(self.call(SysCall::Chown { path: path.into(), uid: Some(uid), gid: Some(gid) })?, SysRet::Unit => (), "chown")
    }
    fn lchown(&mut self, path: &str, uid: u32, gid: u32) -> SysResult<()> {
        expect_ret!(self.call(SysCall::Lchown { path: path.into(), uid: Some(uid), gid: Some(gid) })?, SysRet::Unit => (), "lchown")
    }
    fn fchownat(&mut self, path: &str, uid: u32, gid: u32, nofollow: bool) -> SysResult<()> {
        expect_ret!(self.call(SysCall::Fchownat { path: path.into(), uid: Some(uid), gid: Some(gid), nofollow })?, SysRet::Unit => (), "fchownat")
    }
    fn mknod(&mut self, path: &str, mode: u32, dev: u64) -> SysResult<()> {
        expect_ret!(self.call(SysCall::Mknod { path: path.into(), mode, dev })?, SysRet::Unit => (), "mknod")
    }
    fn mknodat(&mut self, path: &str, mode: u32, dev: u64) -> SysResult<()> {
        expect_ret!(self.call(SysCall::Mknodat { path: path.into(), mode, dev })?, SysRet::Unit => (), "mknodat")
    }
    fn truncate(&mut self, path: &str, size: u64) -> SysResult<()> {
        expect_ret!(self.call(SysCall::Truncate { path: path.into(), size })?, SysRet::Unit => (), "truncate")
    }
    fn utimens(&mut self, path: &str, mtime: u64) -> SysResult<()> {
        expect_ret!(self.call(SysCall::Utimens { path: path.into(), mtime })?, SysRet::Unit => (), "utimens")
    }
    fn setxattr(&mut self, path: &str, name: &str, value: &[u8]) -> SysResult<()> {
        expect_ret!(self.call(SysCall::Setxattr { path: path.into(), name: name.into(), value: value.to_vec() })?, SysRet::Unit => (), "setxattr")
    }
    fn getxattr(&mut self, path: &str, name: &str) -> SysResult<Vec<u8>> {
        expect_ret!(self.call(SysCall::Getxattr { path: path.into(), name: name.into() })?, SysRet::Bytes(b) => b, "getxattr")
    }
    fn listxattr(&mut self, path: &str) -> SysResult<Vec<String>> {
        expect_ret!(self.call(SysCall::Listxattr { path: path.into() })?, SysRet::Entries(e) => e, "listxattr")
    }
    fn removexattr(&mut self, path: &str, name: &str) -> SysResult<()> {
        expect_ret!(self.call(SysCall::Removexattr { path: path.into(), name: name.into() })?, SysRet::Unit => (), "removexattr")
    }

    fn getuid(&mut self) -> u32 {
        match self.call(SysCall::Getuid) {
            Ok(SysRet::Id(u)) => u,
            other => unreachable!("getuid cannot fail: {other:?}"),
        }
    }
    fn geteuid(&mut self) -> u32 {
        match self.call(SysCall::Geteuid) {
            Ok(SysRet::Id(u)) => u,
            other => unreachable!("geteuid cannot fail: {other:?}"),
        }
    }
    fn getgid(&mut self) -> u32 {
        match self.call(SysCall::Getgid) {
            Ok(SysRet::Id(u)) => u,
            other => unreachable!("getgid cannot fail: {other:?}"),
        }
    }
    fn getegid(&mut self) -> u32 {
        match self.call(SysCall::Getegid) {
            Ok(SysRet::Id(u)) => u,
            other => unreachable!("getegid cannot fail: {other:?}"),
        }
    }
    fn getresuid(&mut self) -> (u32, u32, u32) {
        match self.call(SysCall::Getresuid) {
            Ok(SysRet::Triple(r, e, s)) => (r, e, s),
            other => unreachable!("getresuid cannot fail: {other:?}"),
        }
    }
    fn getresgid(&mut self) -> (u32, u32, u32) {
        match self.call(SysCall::Getresgid) {
            Ok(SysRet::Triple(r, e, s)) => (r, e, s),
            other => unreachable!("getresgid cannot fail: {other:?}"),
        }
    }
    fn getgroups(&mut self) -> Vec<u32> {
        match self.call(SysCall::Getgroups) {
            Ok(SysRet::Groups(g)) => g,
            other => unreachable!("getgroups cannot fail: {other:?}"),
        }
    }
    fn setuid(&mut self, uid: u32) -> SysResult<()> {
        expect_ret!(self.call(SysCall::Setuid { uid })?, SysRet::Unit => (), "setuid")
    }
    fn setgid(&mut self, gid: u32) -> SysResult<()> {
        expect_ret!(self.call(SysCall::Setgid { gid })?, SysRet::Unit => (), "setgid")
    }
    fn setresuid(&mut self, r: Option<u32>, e: Option<u32>, s: Option<u32>) -> SysResult<()> {
        expect_ret!(self.call(SysCall::Setresuid { r, e, s })?, SysRet::Unit => (), "setresuid")
    }
    fn setresgid(&mut self, r: Option<u32>, e: Option<u32>, s: Option<u32>) -> SysResult<()> {
        expect_ret!(self.call(SysCall::Setresgid { r, e, s })?, SysRet::Unit => (), "setresgid")
    }
    fn setgroups(&mut self, groups: &[u32]) -> SysResult<()> {
        expect_ret!(self.call(SysCall::Setgroups { groups: groups.to_vec() })?, SysRet::Unit => (), "setgroups")
    }
    fn capget(&mut self) -> (CapSet, CapSet) {
        match self.call(SysCall::Capget) {
            Ok(SysRet::Caps {
                effective,
                permitted,
            }) => (effective, permitted),
            other => unreachable!("capget cannot fail: {other:?}"),
        }
    }
    fn capset(&mut self, effective: CapSet, permitted: CapSet) -> SysResult<()> {
        expect_ret!(self.call(SysCall::Capset { effective, permitted })?, SysRet::Unit => (), "capset")
    }

    fn getpid(&mut self) -> u32 {
        match self.call(SysCall::Getpid) {
            Ok(SysRet::Id(p)) => p,
            other => unreachable!("getpid cannot fail: {other:?}"),
        }
    }
    fn umask(&mut self, mask: u32) -> u32 {
        match self.call(SysCall::Umask { mask }) {
            Ok(SysRet::Mask(old)) => old,
            other => unreachable!("umask cannot fail: {other:?}"),
        }
    }
    fn chdir(&mut self, path: &str) -> SysResult<()> {
        expect_ret!(self.call(SysCall::Chdir { path: path.into() })?, SysRet::Unit => (), "chdir")
    }
    fn getcwd(&mut self) -> String {
        match self.call(SysCall::Getcwd) {
            Ok(SysRet::Text(t)) => t,
            other => unreachable!("getcwd cannot fail: {other:?}"),
        }
    }
    fn set_no_new_privs(&mut self) -> SysResult<()> {
        expect_ret!(self.call(SysCall::SetNoNewPrivs)?, SysRet::Unit => (), "prctl")
    }
    fn seccomp_install(&mut self, prog: zr_bpf::Program) -> SysResult<()> {
        expect_ret!(self.call(SysCall::SeccompInstall { prog })?, SysRet::Unit => (), "seccomp")
    }
    fn kexec_load(&mut self) -> SysResult<()> {
        expect_ret!(self.call(SysCall::KexecLoad)?, SysRet::Unit => (), "kexec_load")
    }
    fn spawn(&mut self, path: &str, argv: &[&str], env: &[(&str, &str)]) -> SysResult<i32> {
        let call = SysCall::Spawn {
            path: path.into(),
            argv: argv.iter().map(|s| s.to_string()).collect(),
            env: env
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        };
        expect_ret!(self.call(call)?, SysRet::Exit(code) => code, "spawn")
    }
    /// Spawn with owned argv/env (avoids &str gymnastics at call sites).
    fn spawn_owned(
        &mut self,
        path: &str,
        argv: Vec<String>,
        env: Vec<(String, String)>,
    ) -> SysResult<i32> {
        let call = SysCall::Spawn {
            path: path.into(),
            argv,
            env,
        };
        expect_ret!(self.call(call)?, SysRet::Exit(code) => code, "spawn")
    }
    /// Print one line to the build console (a `write(2)`).
    fn println(&mut self, line: impl Into<String>) {
        // Best effort, like ignoring a write error on stdout.
        let _ = self.call(SysCall::ConsoleWrite { line: line.into() });
    }
    fn getrandom(&mut self, len: u64) -> SysResult<Vec<u8>> {
        expect_ret!(self.call(SysCall::GetRandom { len })?, SysRet::Bytes(b) => b, "getrandom")
    }
}

impl<T: Sys + ?Sized> SysExt for T {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy Sys that answers a fixed uid, to exercise the blanket impl.
    struct FixedUid(u32);

    impl Sys for FixedUid {
        fn call(&mut self, call: SysCall) -> SysResult<SysRet> {
            match call {
                SysCall::Getuid | SysCall::Geteuid => Ok(SysRet::Id(self.0)),
                SysCall::Chown { .. } => Err(Errno::EPERM.into()),
                _ => Ok(SysRet::Unit),
            }
        }
    }

    #[test]
    fn ext_wrappers_route_through_call() {
        let mut s = FixedUid(42);
        assert_eq!(s.getuid(), 42);
        assert_eq!(s.geteuid(), 42);
        assert_eq!(s.chown("/x", 0, 0), Err(SysError::Errno(Errno::EPERM)));
        assert!(s.mkdir("/y", 0o755).is_ok());
    }

    #[test]
    fn dyn_sys_gets_the_extension_methods() {
        let mut s = FixedUid(7);
        let d: &mut dyn Sys = &mut s;
        assert_eq!(d.getuid(), 7);
    }

    #[test]
    fn syscall_names() {
        assert_eq!(SysCall::KexecLoad.name(), "kexec_load");
        assert_eq!(
            SysCall::Chown {
                path: "/".into(),
                uid: None,
                gid: None
            }
            .name(),
            "chown"
        );
    }

    #[test]
    fn sys_error_display() {
        assert_eq!(SysError::from(Errno::EPERM).to_string(), "EPERM");
        assert_eq!(SysError::Killed.to_string(), "killed by seccomp filter");
    }
}
