//! Process credentials: uids, gids, groups, capability sets.
//!
//! All ids stored here are **kernel ids**; translation to and from the
//! process's user namespace happens at the syscall boundary in
//! `kernel.rs`, mirroring `struct cred` in Linux.

use crate::ids::NsId;
use zr_syscalls::caps::CapSet;

/// A process's security context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cred {
    /// Real uid (kernel id).
    pub ruid: u32,
    /// Effective uid.
    pub euid: u32,
    /// Saved uid.
    pub suid: u32,
    /// Filesystem uid (tracks euid unless set explicitly).
    pub fsuid: u32,
    /// Real gid.
    pub rgid: u32,
    /// Effective gid.
    pub egid: u32,
    /// Saved gid.
    pub sgid: u32,
    /// Filesystem gid.
    pub fsgid: u32,
    /// Supplementary groups (kernel gids).
    pub groups: Vec<u32>,
    /// Effective capability set (relative to `userns`).
    pub effective: CapSet,
    /// Permitted capability set.
    pub permitted: CapSet,
    /// The user namespace the capabilities are relative to.
    pub userns: NsId,
}

impl Cred {
    /// Credentials for a process whose every id is `uid`/`gid`, with the
    /// given capability sets, in `userns`.
    pub fn new(uid: u32, gid: u32, caps: CapSet, userns: NsId) -> Cred {
        Cred {
            ruid: uid,
            euid: uid,
            suid: uid,
            fsuid: uid,
            rgid: gid,
            egid: gid,
            sgid: gid,
            fsgid: gid,
            groups: Vec::new(),
            effective: caps,
            permitted: caps,
            userns,
        }
    }

    /// True root in the initial namespace.
    pub fn init_root() -> Cred {
        Cred::new(0, 0, CapSet::full(), 0)
    }

    /// An unprivileged user in the initial namespace.
    pub fn init_user(uid: u32, gid: u32) -> Cred {
        Cred::new(uid, gid, CapSet::EMPTY, 0)
    }

    /// Is any of the three uids equal to `kuid`? (setuid eligibility.)
    pub fn any_uid_is(&self, kuid: u32) -> bool {
        self.ruid == kuid || self.euid == kuid || self.suid == kuid
    }

    /// Is any of the three gids equal to `kgid`?
    pub fn any_gid_is(&self, kgid: u32) -> bool {
        self.rgid == kgid || self.egid == kgid || self.sgid == kgid
    }

    /// Group membership including the effective/filesystem gid.
    pub fn in_group(&self, kgid: u32) -> bool {
        self.fsgid == kgid || self.egid == kgid || self.groups.contains(&kgid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zr_syscalls::caps::Cap;

    #[test]
    fn new_sets_all_ids() {
        let c = Cred::new(7, 8, CapSet::EMPTY, 3);
        assert_eq!((c.ruid, c.euid, c.suid, c.fsuid), (7, 7, 7, 7));
        assert_eq!((c.rgid, c.egid, c.sgid, c.fsgid), (8, 8, 8, 8));
        assert_eq!(c.userns, 3);
    }

    #[test]
    fn init_root_has_all_caps() {
        let c = Cred::init_root();
        assert!(c.effective.has(Cap::Chown));
        assert!(c.effective.has(Cap::SysAdmin));
    }

    #[test]
    fn init_user_has_none() {
        let c = Cred::init_user(1000, 1000);
        assert!(c.effective.is_empty());
        assert!(c.permitted.is_empty());
    }

    #[test]
    fn membership_helpers() {
        let mut c = Cred::init_user(1000, 1000);
        assert!(c.any_uid_is(1000));
        assert!(!c.any_uid_is(0));
        c.suid = 0;
        assert!(c.any_uid_is(0));
        assert!(c.in_group(1000));
        c.groups.push(44);
        assert!(c.in_group(44));
        assert!(!c.in_group(45));
    }
}
