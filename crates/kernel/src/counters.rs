//! Cost accounting for the overhead experiments (§6 item 1 and future
//! work item 3).
//!
//! The simulated kernel cannot measure real nanoseconds, so it counts the
//! *mechanistic* cost drivers each emulation strategy incurs. Criterion
//! benches report both these counters and wall-clock time of the
//! simulation itself.

/// Monotonic cost counters, reset per experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Syscalls dispatched.
    pub syscalls: u64,
    /// BPF instructions executed across all filter evaluations.
    pub bpf_instructions: u64,
    /// Individual filter evaluations (stack depth × syscalls).
    pub filter_evaluations: u64,
    /// Syscalls whose result was faked by a filter.
    pub faked: u64,
    /// Syscalls denied (filter or kernel policy).
    pub denied: u64,
    /// ptrace stops (2 context switches each: into tracer and back).
    pub ptrace_stops: u64,
    /// LD_PRELOAD interceptions (one extra userspace hop each).
    pub preload_hops: u64,
    /// fakeroot-daemon round trips (IPC; the consistent emulators'
    /// state-maintenance cost).
    pub daemon_round_trips: u64,
    /// Processes spawned.
    pub spawns: u64,
}

impl Counters {
    /// Difference since `earlier` (for scoped measurements).
    pub fn since(&self, earlier: &Counters) -> Counters {
        Counters {
            syscalls: self.syscalls - earlier.syscalls,
            bpf_instructions: self.bpf_instructions - earlier.bpf_instructions,
            filter_evaluations: self.filter_evaluations - earlier.filter_evaluations,
            faked: self.faked - earlier.faked,
            denied: self.denied - earlier.denied,
            ptrace_stops: self.ptrace_stops - earlier.ptrace_stops,
            preload_hops: self.preload_hops - earlier.preload_hops,
            daemon_round_trips: self.daemon_round_trips - earlier.daemon_round_trips,
            spawns: self.spawns - earlier.spawns,
        }
    }

    /// A scalar "context switch equivalents" figure used by the overhead
    /// tables: ptrace stops count double (enter + resume), daemon round
    /// trips double (send + receive).
    pub fn context_switch_equivalents(&self) -> u64 {
        2 * self.ptrace_stops + 2 * self.daemon_round_trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts() {
        let a = Counters {
            syscalls: 10,
            bpf_instructions: 100,
            ..Default::default()
        };
        let b = Counters {
            syscalls: 25,
            bpf_instructions: 180,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.syscalls, 15);
        assert_eq!(d.bpf_instructions, 80);
    }

    #[test]
    fn context_switch_equivalents() {
        let c = Counters {
            ptrace_stops: 3,
            daemon_round_trips: 2,
            ..Default::default()
        };
        assert_eq!(c.context_switch_equivalents(), 10);
    }
}
