//! Kernel-side interception points for the *consistent* root emulators.
//!
//! Two hook sites mirror reality:
//!
//! * **Preload hooks** run before the syscall reaches the kernel, and only
//!   for dynamically linked programs whose environment carries the shim —
//!   the LD_PRELOAD mechanism of fakeroot(1) (§3.1).
//! * **Tracer hooks** run at syscall entry inside the kernel — the
//!   ptrace(2) mechanism of PRoot and fakeroot-ng (§3.2). Each
//!   interception costs ptrace stops; classic tracers stop for *every*
//!   syscall, seccomp-accelerated ones (PRoot's trick) only for the calls
//!   a helper filter marked.
//!
//! A hook sees the call, may consume it (returning the emulated result) or
//! let it pass through. Hooks receive `&mut Kernel` so they can issue
//! *underlying* operations via [`crate::kernel::Kernel::syscall_nohook`]
//! without re-entering themselves.

use crate::kernel::Kernel;
use crate::process::Pid;
use crate::sys::{SysCall, SysResult, SysRet};

/// What a hook decided.
pub enum HookVerdict {
    /// Not interested: the kernel proceeds normally.
    PassThrough,
    /// The hook handled the call; this is the result the caller sees.
    Emulated(SysResult<SysRet>),
}

/// A syscall interceptor (fakeroot daemon + shim, or a ptrace tracer).
pub trait SyscallHook: Send {
    /// Inspect (and possibly handle) `call` issued by `pid`.
    fn on_syscall(&mut self, kernel: &mut Kernel, pid: Pid, call: &SysCall) -> HookVerdict;

    /// Short name for diagnostics.
    fn name(&self) -> &'static str {
        "hook"
    }
}
