//! The process table entry.

use crate::cred::Cred;
use zr_seccomp::FilterStack;
use zr_syscalls::Arch;

/// Process id.
pub type Pid = u32;

/// Index of a filesystem in the kernel's table (a process's root — each
/// container has its own).
pub type FsId = usize;

/// One simulated process.
#[derive(Debug, Clone)]
pub struct Process {
    /// Its pid.
    pub pid: Pid,
    /// Parent pid (0 for the initial process).
    pub ppid: Pid,
    /// Credentials (kernel ids).
    pub cred: Cred,
    /// Which filesystem is its root.
    pub fs: FsId,
    /// Current working directory (absolute, within `fs`).
    pub cwd: String,
    /// File-creation mask.
    pub umask: u32,
    /// The architecture its syscalls use (decides syscall numbers and
    /// which legacy calls exist — paper footnote 7).
    pub arch: Arch,
    /// Installed seccomp filters. Inherited on fork, kept on exec,
    /// never removable (§4).
    pub seccomp: FilterStack,
    /// `PR_SET_NO_NEW_PRIVS` latch.
    pub no_new_privs: bool,
    /// Is the current program image dynamically linked? (Gates
    /// LD_PRELOAD interposition.)
    pub dynamic: bool,
    /// Does the environment carry an active LD_PRELOAD shim?
    pub preload_active: bool,
    /// Is a ptrace-style tracer attached?
    pub traced: bool,
    /// Still runnable? (false once killed by a filter).
    pub alive: bool,
}

impl Process {
    /// Child inherits everything fork(2) copies.
    pub fn fork_from(&self, pid: Pid) -> Process {
        Process {
            pid,
            ppid: self.pid,
            cred: self.cred.clone(),
            fs: self.fs,
            cwd: self.cwd.clone(),
            umask: self.umask,
            arch: self.arch,
            seccomp: self.seccomp.clone(),
            no_new_privs: self.no_new_privs,
            dynamic: self.dynamic,
            preload_active: self.preload_active,
            traced: self.traced,
            alive: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cred::Cred;

    fn proto() -> Process {
        Process {
            pid: 10,
            ppid: 1,
            cred: Cred::init_user(1000, 1000),
            fs: 0,
            cwd: "/home".into(),
            umask: 0o022,
            arch: Arch::X8664,
            seccomp: FilterStack::new(),
            no_new_privs: true,
            dynamic: true,
            preload_active: true,
            traced: true,
            alive: true,
        }
    }

    #[test]
    fn fork_copies_inheritable_state() {
        let parent = proto();
        let child = parent.fork_from(11);
        assert_eq!(child.pid, 11);
        assert_eq!(child.ppid, 10);
        assert_eq!(child.cwd, parent.cwd);
        assert_eq!(child.umask, parent.umask);
        assert!(child.no_new_privs, "NNP is inherited");
        assert!(child.preload_active, "LD_PRELOAD env survives fork");
        assert!(child.traced, "ptrace follows forks (PTRACE_O_TRACEFORK)");
        assert!(child.alive);
    }
}
