//! # zr-kernel — the simulated Linux kernel
//!
//! The substrate the paper's experiments run on. A deterministic,
//! single-threaded model of the slice of Linux that container image builds
//! exercise:
//!
//! * [`ids`] — user namespaces with uid/gid maps (`make_kuid`/`from_kuid`)
//!   and the `ns_capable` walk — the machinery that makes capabilities in
//!   an unprivileged namespace "an illusion" (§1 of the paper).
//! * [`cred`] — per-process credentials: the four uids/gids, supplementary
//!   groups, capability sets.
//! * [`sys`] — the syscall surface as a data type ([`sys::SysCall`]) plus
//!   the [`sys::Sys`] trait, which is the *libc boundary*: simulated
//!   programs call through `&mut dyn Sys`, which is how LD_PRELOAD-style
//!   emulators interpose (and why they cannot wrap static binaries).
//! * [`kernel`] — the dispatcher: libc→syscall-number mapping per
//!   architecture (aarch64's missing `chown` becomes `fchownat`, i386's
//!   becomes `chown32`, exactly per the paper's footnote 7), seccomp
//!   filter evaluation via the real BPF interpreter, hook points for
//!   ptrace-style tracers, then execution against `zr-vfs`.
//! * [`program`] — the simulated-binary registry: executables in the
//!   image filesystem map to Rust [`program::Program`] implementations,
//!   each declaring static or dynamic linkage.
//! * [`container`] — the paper's tripartite container classification
//!   (§2): Type I (mount ns, privileged), Type II (privileged user ns) and
//!   Type III (fully unprivileged) setup, with the setup-privilege rules
//!   that motivate the whole exercise.
//! * [`counters`] — cost accounting (syscalls, BPF instructions, ptrace
//!   stops, preload hops, daemon round-trips) feeding the overhead
//!   experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod container;
pub mod counters;
pub mod cred;
pub mod hooks;
pub mod ids;
pub mod kernel;
pub mod process;
pub mod program;
pub mod sys;

pub use container::{ContainerConfig, ContainerType};
pub use counters::Counters;
pub use cred::Cred;
pub use hooks::{HookVerdict, SyscallHook};
pub use ids::{IdMap, NsId, UserNs};
pub use kernel::{Kernel, KernelConfig, SyscallCtx};
pub use process::{Pid, Process};
pub use program::{ExecEnv, Program, ProgramEntry, ProgramRegistry};
pub use sys::{Sys, SysCall, SysError, SysExt, SysResult, SysRet};
