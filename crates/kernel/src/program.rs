//! Simulated binaries: the program registry.
//!
//! An executable in the image filesystem is a real inode (so permission
//! bits, ownership, and symlinks behave normally); its *behaviour* is a
//! Rust [`Program`] registered under the canonical path. `execve` resolves
//! the path through the VFS, checks execute permission, then instantiates
//! the program.
//!
//! Each registration declares **linkage**: `LD_PRELOAD`-style emulators
//! only interpose on dynamically linked programs (§3.1 — "LD_PRELOAD …
//! cannot wrap statically linked executables"); busybox-style static
//! binaries bypass them, which the compatibility experiment (E-compat)
//! demonstrates.

use std::collections::HashMap;
use std::sync::Arc;

use crate::sys::Sys;

/// What `execve` passes to a program.
#[derive(Debug, Clone, Default)]
pub struct ExecEnv {
    /// argv, `argv[0]` first.
    pub argv: Vec<String>,
    /// Environment variables.
    pub env: Vec<(String, String)>,
    /// Collected stdout/stderr lines (the program appends; the spawner
    /// harvests). Shared output sink, like an inherited fd 1.
    pub output: Vec<String>,
}

impl ExecEnv {
    /// Look up an environment variable.
    pub fn getenv(&self, key: &str) -> Option<&str> {
        self.env
            .iter()
            .rev() // later assignments win
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// argv[1..] as &str.
    pub fn args(&self) -> Vec<&str> {
        self.argv.iter().skip(1).map(String::as_str).collect()
    }

    /// Append an output line.
    pub fn say(&mut self, line: impl Into<String>) {
        self.output.push(line.into());
    }
}

/// A simulated program: runs to completion against the libc boundary.
pub trait Program: Send {
    /// Run; return the exit status (0 = success).
    fn run(&mut self, sys: &mut dyn Sys, env: &mut ExecEnv) -> i32;
}

/// Linkage of a registered binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Dynamically linked: LD_PRELOAD shims see its libc calls.
    Dynamic,
    /// Statically linked: immune to LD_PRELOAD.
    Static,
}

/// Factory producing fresh program instances per exec.
pub type ProgramFactory = Arc<dyn Fn() -> Box<dyn Program> + Send + Sync>;

/// Registry entry.
#[derive(Clone)]
pub struct ProgramEntry {
    /// Builds an instance per exec.
    pub factory: ProgramFactory,
    /// Static or dynamic.
    pub linkage: Linkage,
}

impl std::fmt::Debug for ProgramEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgramEntry")
            .field("linkage", &self.linkage)
            .finish_non_exhaustive()
    }
}

/// Canonical path → behaviour.
#[derive(Debug, Clone, Default)]
pub struct ProgramRegistry {
    map: HashMap<String, ProgramEntry>,
}

impl ProgramRegistry {
    /// Empty registry.
    pub fn new() -> ProgramRegistry {
        ProgramRegistry::default()
    }

    /// Register `factory` at `path` with the given linkage.
    pub fn register<F>(&mut self, path: &str, linkage: Linkage, factory: F)
    where
        F: Fn() -> Box<dyn Program> + Send + Sync + 'static,
    {
        self.map.insert(
            path.to_string(),
            ProgramEntry {
                factory: Arc::new(factory),
                linkage,
            },
        );
    }

    /// Look up by canonical path.
    pub fn get(&self, path: &str) -> Option<&ProgramEntry> {
        self.map.get(path)
    }

    /// Registered paths (sorted, for diagnostics).
    pub fn paths(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.map.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sys::{SysCall, SysResult, SysRet};

    struct NullSys;
    impl Sys for NullSys {
        fn call(&mut self, _call: SysCall) -> SysResult<SysRet> {
            Ok(SysRet::Unit)
        }
    }

    struct Hello;
    impl Program for Hello {
        fn run(&mut self, _sys: &mut dyn Sys, env: &mut ExecEnv) -> i32 {
            env.say("hello");
            0
        }
    }

    #[test]
    fn registry_roundtrip() {
        let mut reg = ProgramRegistry::new();
        reg.register("/bin/hello", Linkage::Static, || Box::new(Hello));
        let entry = reg.get("/bin/hello").expect("registered");
        assert_eq!(entry.linkage, Linkage::Static);
        let mut prog = (entry.factory)();
        let mut env = ExecEnv {
            argv: vec!["hello".into()],
            ..Default::default()
        };
        assert_eq!(prog.run(&mut NullSys, &mut env), 0);
        assert_eq!(env.output, vec!["hello".to_string()]);
        assert!(reg.get("/bin/missing").is_none());
        assert_eq!(reg.paths(), vec!["/bin/hello"]);
    }

    #[test]
    fn env_lookup_later_wins() {
        let env = ExecEnv {
            argv: vec![],
            env: vec![
                ("PATH".into(), "/bin".into()),
                ("PATH".into(), "/usr/bin".into()),
            ],
            output: vec![],
        };
        assert_eq!(env.getenv("PATH"), Some("/usr/bin"));
        assert_eq!(env.getenv("HOME"), None);
    }

    #[test]
    fn args_skips_argv0() {
        let env = ExecEnv {
            argv: vec!["apk".into(), "add".into(), "sl".into()],
            ..Default::default()
        };
        assert_eq!(env.args(), vec!["add", "sl"]);
    }
}
