//! Daemon mode: a long-lived build service whose worker pool persists
//! across batches.
//!
//! A per-batch [`Scheduler`](crate::Scheduler) spawns and joins its
//! threads on every `build_many`; a [`Daemon`] spawns its pool once
//! and keeps it parked on a shared signal between submissions — the
//! shape a `zr build --daemon` service wants. Batches submitted to a
//! daemon return the same [`BatchHandle`] the scheduler does (status
//! polling, cancellation, per-stage log subscription), but `wait`
//! only blocks for completion; the threads live on for the next batch.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use zeroroot_core::sync::lock_or_poisoned;
use zr_image::{LayerStore, ShardedRegistry};

use crate::scheduler::{
    make_batch, run_task, Affinity, BatchHandle, BatchShared, BuildReport, BuildRequest, Scheduler,
    SchedulerConfig, WorkSignal,
};

/// Shared between the daemon handle and its resident workers.
struct DaemonCore {
    /// Live batches, submission order. Completed batches are pruned on
    /// the next submit; handles keep their own `Arc` to the state.
    batches: Mutex<Vec<Arc<BatchShared>>>,
    signal: Arc<WorkSignal>,
    shutdown: AtomicBool,
}

/// A resident worker pool over one shared registry and layer cache.
///
/// ```
/// use zr_sched::{BuildRequest, Daemon, SchedulerConfig};
///
/// let daemon = Daemon::new(SchedulerConfig { jobs: 2, ..SchedulerConfig::default() });
/// let first = daemon.build_many(vec![BuildRequest::new("a", "FROM alpine:3.19\n")]);
/// let second = daemon.build_many(vec![BuildRequest::new("b", "FROM alpine:3.19\n")]);
/// assert!(first[0].result.success && second[0].result.success);
/// // Same pool, same caches: the second batch replayed the pull.
/// daemon.shutdown();
/// ```
pub struct Daemon {
    registry: Arc<ShardedRegistry>,
    layers: LayerStore,
    disk: Option<Arc<zr_store::DiskLayers>>,
    fail_fast: bool,
    core: Arc<DaemonCore>,
    workers: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// A daemon built from `config` (`jobs` resident workers). Panics
    /// if `config.cache_dir` cannot be opened — use
    /// [`try_new`](Self::try_new) to surface store errors.
    pub fn new(config: SchedulerConfig) -> Daemon {
        Daemon::try_new(config).expect("cannot open --cache-dir store")
    }

    /// [`new`](Self::new), with persistent-store failures returned
    /// instead of panicking.
    pub fn try_new(config: SchedulerConfig) -> zr_store::Result<Daemon> {
        // Reuse the scheduler's store plumbing, then keep only the
        // shared handles — the throwaway scheduler spawns no threads.
        let sched = Scheduler::try_new(config.clone())?;
        let registry = sched.registry().clone();
        let layers = sched.layers().clone();
        let disk = sched.disk().cloned();
        let core = Arc::new(DaemonCore {
            batches: Mutex::new(Vec::new()),
            signal: Arc::new(WorkSignal::default()),
            shutdown: AtomicBool::new(false),
        });
        let jobs = config.jobs.max(1);
        let workers = (0..jobs)
            .map(|i| {
                let core = Arc::clone(&core);
                // Alternate affinities so high-priority work always has
                // a preferring worker once the pool has two threads.
                let affinity = if i % 2 == 1 {
                    Affinity::High
                } else {
                    Affinity::Normal
                };
                std::thread::spawn(move || daemon_worker(&core, affinity))
            })
            .collect();
        Ok(Daemon {
            registry,
            layers,
            disk,
            fail_fast: config.fail_fast,
            core,
            workers,
        })
    }

    /// The shared registry handle.
    pub fn registry(&self) -> &Arc<ShardedRegistry> {
        &self.registry
    }

    /// The shared layer-cache handle.
    pub fn layers(&self) -> &LayerStore {
        &self.layers
    }

    /// The persistent store tier, when built with a `cache_dir`.
    pub fn disk(&self) -> Option<&Arc<zr_store::DiskLayers>> {
        self.disk.as_ref()
    }

    /// Enqueue a batch on the resident pool and return immediately.
    /// The handle supports everything a scheduler batch does —
    /// statuses, cancellation, log subscription, `wait` — but the
    /// workers are the daemon's and survive the batch.
    pub fn submit(&self, requests: Vec<BuildRequest>) -> BatchHandle {
        // Admission-path fault hooks (`sched.daemon.submit.*`): a
        // stall delays the enqueue (arg = milliseconds), widening the
        // submit/shutdown race window for soak runs.
        if let Some(ms) = zr_fault::hit(zr_fault::points::SCHED_DAEMON_SUBMIT_STALL) {
            std::thread::sleep(std::time::Duration::from_millis(if ms == 0 {
                50
            } else {
                ms
            }));
        }
        let shared = make_batch(
            requests,
            self.fail_fast,
            self.registry.clone(),
            self.layers.clone(),
            self.core.signal.clone(),
        );
        // A poisoned submit panics inside the queue's critical section
        // (poisoning the mutex exactly as a crashed submitter would).
        // The panic is absorbed here and the enqueue retried: resident
        // workers recover poisoned guards, so the pool must ride it out.
        let enqueue = || {
            let mut batches = lock_or_poisoned(&self.core.batches);
            if zr_fault::fires(zr_fault::points::SCHED_DAEMON_SUBMIT_POISON) {
                panic!("injected daemon submit poison");
            }
            batches.retain(|b| !b.is_complete());
            batches.push(shared.clone());
        };
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(enqueue)).is_err() {
            zr_fault::count_retry();
            let mut batches = lock_or_poisoned(&self.core.batches);
            batches.retain(|b| !b.is_complete());
            batches.push(shared.clone());
        }
        self.core.signal.notify();
        BatchHandle::new(shared, Vec::new())
    }

    /// Build a whole batch and block for its reports, in input order.
    pub fn build_many(&self, requests: Vec<BuildRequest>) -> Vec<BuildReport> {
        self.submit(requests).wait()
    }

    /// Stop the pool: workers finish whatever is queued, then exit.
    /// (Dropping the daemon does the same.)
    pub fn shutdown(self) {}
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.core.shutdown.store(true, Ordering::SeqCst);
        self.core.signal.notify();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// One resident worker: scan live batches for a task (earliest batch
/// first, stealing across priority classes within each), park on the
/// shared signal when everything is drained, exit on shutdown.
fn daemon_worker(core: &Arc<DaemonCore>, affinity: Affinity) {
    loop {
        let grabbed = {
            let batches = lock_or_poisoned(&core.batches);
            let mut found = None;
            for batch in batches.iter() {
                if let Some((task, stolen)) = batch.try_pop(affinity) {
                    found = Some((Arc::clone(batch), task, stolen));
                    break;
                }
            }
            found
        };
        match grabbed {
            Some((batch, task, stolen)) => {
                if stolen {
                    batch.note_steal();
                }
                run_task(&batch, task);
            }
            None => {
                if core.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                core.signal.wait_until(|| {
                    core.shutdown.load(Ordering::SeqCst)
                        || lock_or_poisoned(&core.batches).iter().any(|b| b.has_work())
                });
            }
        }
    }
}
