//! The worker pool, its queues, the stage-DAG execution engine, and
//! per-build status tracking.
//!
//! A submitted batch decomposes each request into tasks. Single-stage
//! Dockerfiles (and anything that fails to plan — the builder then
//! reproduces the error) run as one *opaque* task, exactly the
//! pre-DAG behavior. Multi-stage Dockerfiles compile to a
//! [`BuildPlan`] and run as one task per retained stage: a stage task
//! is queued the moment every stage it depends on has an image, so
//! independent stages of one build overlap on different workers while
//! `COPY --from=` consumers wait for their producers. The per-stage
//! layer cache and the assembled log are byte-identical to a serial
//! [`Builder::build`] of the same file.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use zeroroot_core::sync::lock_or_poisoned;

use zr_build::{finish_log, BuildError, BuildOptions, BuildResult, Builder, CacheStats};
use zr_image::{Image, LayerStore, PullCost, RegistryBackend, ShardedRegistry};
use zr_kernel::Kernel;
use zr_plan::BuildPlan;

/// Queue class for one request. Half the worker pool is affine to each
/// class when both are populated: high-priority work never waits behind
/// a deep normal backlog, and an idle worker *steals* from the other
/// class rather than spinning (the steal count is observable on the
/// batch handle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// The default FIFO queue.
    #[default]
    Normal,
    /// Drains first on the high-affinity workers; jumps ahead of every
    /// queued normal-priority build when only one worker exists.
    High,
}

/// One build in a batch: a Dockerfile plus its options, under a caller
/// chosen id (the id labels trace output and names the report).
#[derive(Debug, Clone)]
pub struct BuildRequest {
    /// Caller-chosen build id (also the default tag).
    pub id: String,
    /// Dockerfile text.
    pub dockerfile: String,
    /// Build options (tag, --force mode, cache policy, context, ...).
    pub options: BuildOptions,
    /// Queue class.
    pub priority: Priority,
}

impl BuildRequest {
    /// A normal-priority request with default options, tagged `id`.
    pub fn new(id: &str, dockerfile: &str) -> BuildRequest {
        let options = BuildOptions {
            tag: id.to_string(),
            ..BuildOptions::default()
        };
        BuildRequest {
            id: id.to_string(),
            dockerfile: dockerfile.to_string(),
            options,
            priority: Priority::Normal,
        }
    }

    /// A request with explicit options.
    pub fn with_options(id: &str, dockerfile: &str, options: BuildOptions) -> BuildRequest {
        BuildRequest {
            id: id.to_string(),
            dockerfile: dockerfile.to_string(),
            options,
            priority: Priority::Normal,
        }
    }

    /// Move this request to the high-priority queue.
    pub fn high_priority(mut self) -> BuildRequest {
        self.priority = Priority::High;
        self
    }
}

/// Where one build is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BuildStatus {
    /// Waiting in a queue.
    #[default]
    Queued,
    /// A worker is executing it (for a multi-stage build: at least one
    /// stage has started).
    Running,
    /// Finished successfully.
    Done,
    /// Finished successfully, but only by degrading: a `FROM` pull
    /// fell back to a locally cached base, or a stage succeeded on a
    /// retry after a worker panic. The result's image is real; the
    /// status flags that the batch was not fault-free.
    Degraded,
    /// Finished with a failure (the report's result says why).
    Failed,
    /// Never ran to completion: the batch (or this build) was cancelled
    /// while work was still queued.
    Cancelled,
}

impl BuildStatus {
    /// Has this build reached a final state (no further transitions)?
    pub fn terminal(self) -> bool {
        matches!(
            self,
            BuildStatus::Done
                | BuildStatus::Degraded
                | BuildStatus::Failed
                | BuildStatus::Cancelled
        )
    }

    /// Did the build produce its image (fault-free or degraded)?
    pub fn succeeded(self) -> bool {
        matches!(self, BuildStatus::Done | BuildStatus::Degraded)
    }
}

impl std::fmt::Display for BuildStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BuildStatus::Queued => "queued",
            BuildStatus::Running => "running",
            BuildStatus::Done => "done",
            BuildStatus::Degraded => "degraded",
            BuildStatus::Failed => "failed",
            BuildStatus::Cancelled => "cancelled",
        };
        f.write_str(s)
    }
}

/// One event on a build's log subscription (see
/// [`BatchHandle::subscribe`]). Subscribers receive each completed
/// unit of work as it lands — per stage for a multi-stage build, the
/// whole log at once for a single-stage build — then a terminal
/// [`LogEvent::Done`]. Subscribing late replays what was missed.
#[derive(Debug, Clone)]
pub enum LogEvent {
    /// One completed unit's log lines.
    Stage {
        /// Request index within the batch.
        build: usize,
        /// Stage display name (alias or index; `"build"` for a
        /// single-stage build's whole log).
        stage: String,
        /// The log lines that unit produced.
        lines: Vec<String>,
    },
    /// The build reached a terminal status. The assembled, ordered log
    /// (with stage banners) is in the build's [`BuildReport`].
    Done {
        /// Request index within the batch.
        build: usize,
        /// Terminal status.
        status: BuildStatus,
    },
}

/// Scheduler construction knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Worker threads per batch (clamped to at least 1).
    pub jobs: usize,
    /// Cancel the rest of the batch when any build fails.
    pub fail_fast: bool,
    /// Shard count for the scheduler-owned registry.
    pub registry_shards: usize,
    /// Modeled network cost of registry pulls (benchmarks dial this up
    /// to measure how well workers overlap their pulls).
    pub pull_cost: PullCost,
    /// Layer-cache size budget in bytes (0 = unlimited).
    pub cache_limit: u64,
    /// Registry blob-cache byte budget (0 = unlimited): per-shard LRU
    /// eviction against one global counter.
    pub blob_budget: u64,
    /// Persistent layer-store directory (`--cache-dir`). When set, the
    /// shared layer store is backed by `zr-store`: every worker's
    /// layers are written through to disk, and a later scheduler (or
    /// another process) opening the same directory replays them.
    pub cache_dir: Option<std::path::PathBuf>,
    /// On-disk store size budget in bytes (`--store-limit`, 0 =
    /// unlimited): the persistent CAS under `cache_dir` evicts whole
    /// least-recently-pinned layer roots (and their dependents) until
    /// physical bytes fit. The disk-side mirror of `cache_limit`.
    /// `None` leaves whatever budget the store itself has persisted;
    /// `Some` overrides it (and the override is persisted in turn).
    pub store_limit: Option<u64>,
    /// Where the scheduler-owned registry fetches cache misses. `None`
    /// uses the built-in catalog (the simulator); `Some` plugs in a
    /// live backend such as `zr-registry`'s wire client, so `FROM`
    /// resolves against a real OCI distribution endpoint.
    pub backend: Option<Arc<dyn RegistryBackend>>,
}

impl Default for SchedulerConfig {
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            jobs: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            fail_fast: false,
            registry_shards: ShardedRegistry::DEFAULT_SHARDS,
            pull_cost: PullCost::default(),
            cache_limit: 0,
            blob_budget: 0,
            cache_dir: None,
            store_limit: None,
            backend: None,
        }
    }
}

/// What one build in a batch produced.
#[derive(Debug, Clone)]
pub struct BuildReport {
    /// The request's id.
    pub id: String,
    /// Terminal status ([`BuildStatus::Done`], `Failed`, or
    /// `Cancelled`).
    pub status: BuildStatus,
    /// The build result (synthesized with
    /// [`BuildError::Cancelled`] for builds that never ran).
    pub result: BuildResult,
    /// Syscall statistics from this build's private kernel (summed
    /// over the per-stage kernels of a multi-stage build).
    pub trace: zr_trace::Stats,
    /// Completion sequence within the batch (0 = finished first);
    /// `None` for cancelled builds.
    pub seq: Option<usize>,
}

/// One slot of batch state, indexed by request position.
#[derive(Debug, Default)]
struct Slot {
    status: BuildStatus,
    result: Option<BuildResult>,
    trace: Option<zr_trace::Stats>,
    seq: Option<usize>,
    /// Has the opaque whole-build log been streamed to subscribers?
    log_streamed: bool,
    /// Has the terminal [`LogEvent::Done`] been streamed?
    done_streamed: bool,
}

/// One schedulable unit: a whole build, or one stage of a planned
/// multi-stage build.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Task {
    build: usize,
    /// `None` = opaque whole-build task.
    stage: Option<usize>,
}

/// Which queue class a worker drains first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Affinity {
    /// Prefer the high-priority queue; steal normal work when idle.
    High,
    /// Prefer the normal queue; steal high-priority work when idle.
    Normal,
}

/// The two task queues. `pop_for` takes from the worker's own class
/// first, FIFO, then *steals* the front of the other class — the
/// returned flag says whether the pop crossed classes.
#[derive(Debug, Default)]
struct Queues {
    high: VecDeque<Task>,
    normal: VecDeque<Task>,
}

impl Queues {
    fn push(&mut self, priority: Priority, task: Task) {
        match priority {
            Priority::High => self.high.push_back(task),
            Priority::Normal => self.normal.push_back(task),
        }
    }

    fn pop_for(&mut self, affinity: Affinity) -> Option<(Task, bool)> {
        let (own, other) = match affinity {
            Affinity::High => (&mut self.high, &mut self.normal),
            Affinity::Normal => (&mut self.normal, &mut self.high),
        };
        if let Some(task) = own.pop_front() {
            return Some((task, false));
        }
        other.pop_front().map(|task| (task, true))
    }

    fn is_empty(&self) -> bool {
        self.high.is_empty() && self.normal.is_empty()
    }
}

/// Wakeup channel between task producers (stage completions, batch
/// submission, cancellation) and idle workers. The timeout on the wait
/// bounds any lost-wakeup stall, so correctness never depends on a
/// perfectly placed `notify`.
#[derive(Default)]
pub(crate) struct WorkSignal {
    mutex: Mutex<()>,
    cond: Condvar,
}

impl WorkSignal {
    pub(crate) fn notify(&self) {
        let _guard = lock(&self.mutex);
        self.cond.notify_all();
    }

    /// Block until `ready()` holds, re-checking under the signal lock
    /// (so a notify between check and wait is never lost) and on a
    /// short timeout.
    pub(crate) fn wait_until(&self, mut ready: impl FnMut() -> bool) {
        loop {
            if ready() {
                return;
            }
            let guard = lock(&self.mutex);
            if ready() {
                return;
            }
            let _unused = self
                .cond
                .wait_timeout(guard, Duration::from_millis(25))
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// The DAG half of one multi-stage build: the compiled plan plus the
/// mutable stage bookkeeping every worker touching this build shares.
struct DagBuild {
    plan: BuildPlan,
    state: Mutex<DagState>,
}

/// Progress of one multi-stage build.
#[derive(Default)]
struct DagState {
    /// Result image per completed stage index.
    images: HashMap<usize, Image>,
    /// Log chunk per attempted stage index.
    logs: HashMap<usize, Vec<String>>,
    /// Stage indices whose log chunk was already streamed to
    /// subscribers (late subscribers replay these).
    streamed: BTreeSet<usize>,
    /// Summed cache counters across stages.
    stats: CacheStats,
    /// Summed `--force` RUN rewrites across stages.
    modified: u32,
    /// Summed syscall statistics across per-stage kernels.
    trace: zr_trace::Stats,
    /// Unreleased stages → number of incomplete dependencies.
    pending: HashMap<usize, usize>,
    /// Stages whose worker panicked once and were requeued. A second
    /// panic of the same stage fails the build like any stage error.
    panicked: BTreeSet<usize>,
    /// Stage tasks currently executing on workers.
    inflight: usize,
    /// Retained stages not yet completed successfully.
    remaining: usize,
    /// First stage failure (halts release of dependents).
    error: Option<BuildError>,
}

/// State shared by every worker of one batch.
pub(crate) struct BatchShared {
    requests: Vec<BuildRequest>,
    /// Parallel to `requests`: `Some` for planned multi-stage builds.
    dags: Vec<Option<DagBuild>>,
    queue: Mutex<Queues>,
    slots: Mutex<Vec<Slot>>,
    /// Completion counter (assigns `BuildReport::seq`).
    seq: AtomicUsize,
    /// Builds that reached a terminal status.
    completed: AtomicUsize,
    cancelled: AtomicBool,
    /// Per-build cancellation flags (input order).
    build_cancelled: Vec<AtomicBool>,
    fail_fast: bool,
    registry: Arc<ShardedRegistry>,
    layers: LayerStore,
    signal: Arc<WorkSignal>,
    /// Tasks executing right now / the high-water mark of that gauge.
    running: AtomicUsize,
    peak: AtomicUsize,
    /// Cross-class queue pops (see [`Queues::pop_for`]).
    steals: AtomicUsize,
    /// Log subscribers per build index.
    subs: Mutex<HashMap<usize, Vec<mpsc::Sender<LogEvent>>>>,
}

impl BatchShared {
    pub(crate) fn is_complete(&self) -> bool {
        self.completed.load(Ordering::SeqCst) >= self.requests.len()
    }

    pub(crate) fn has_work(&self) -> bool {
        !lock(&self.queue).is_empty()
    }

    pub(crate) fn try_pop(&self, affinity: Affinity) -> Option<(Task, bool)> {
        lock(&self.queue).pop_for(affinity)
    }

    pub(crate) fn note_steal(&self) {
        self.steals.fetch_add(1, Ordering::SeqCst);
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    lock_or_poisoned(m)
}

/// A failed [`BuildResult`] for a build that never ran.
fn synthesized_failure(tag: &str, error: BuildError) -> BuildResult {
    BuildResult {
        success: false,
        log: vec![format!("error: build failed: {error}")],
        image: None,
        modified_run_instructions: 0,
        tag: tag.to_string(),
        cache: zr_build::CacheStats::default(),
        degraded: false,
        error: Some(error),
    }
}

fn merge_trace(into: &mut zr_trace::Stats, from: &zr_trace::Stats) {
    into.total += from.total;
    into.privileged += from.privileged;
    into.faked += from.faked;
    into.failed += from.failed;
    into.emulated += from.emulated;
    into.filter_steps += from.filter_steps;
    for (name, count) in &from.by_sysno {
        *into.by_sysno.entry(name).or_insert(0) += count;
    }
}

/// Compile a request into a stage DAG, or `None` for the opaque
/// single-task path: single-stage files (the common case), parse
/// failures, and plan failures all go through [`Builder::build`],
/// which reproduces the error with its usual diagnostics.
fn plan_request(request: &BuildRequest) -> Option<DagBuild> {
    let df = zr_dockerfile::parse(&request.dockerfile).ok()?;
    df.base_image()?;
    let plan = BuildPlan::compile(&df, request.options.target.as_deref()).ok()?;
    if plan.order().len() < 2 {
        return None;
    }
    let mut pending = HashMap::new();
    for &i in plan.order() {
        let deps = &plan.stages()[i].deps;
        if !deps.is_empty() {
            pending.insert(i, deps.len());
        }
    }
    let remaining = plan.order().len();
    Some(DagBuild {
        state: Mutex::new(DagState {
            pending,
            remaining,
            ..DagState::default()
        }),
        plan,
    })
}

/// Assemble a batch: plan every request, seed the queues with opaque
/// tasks and dependency-free root stages, and allocate the slots.
pub(crate) fn make_batch(
    requests: Vec<BuildRequest>,
    fail_fast: bool,
    registry: Arc<ShardedRegistry>,
    layers: LayerStore,
    signal: Arc<WorkSignal>,
) -> Arc<BatchShared> {
    let dags: Vec<Option<DagBuild>> = requests.iter().map(plan_request).collect();
    let mut queues = Queues::default();
    for (idx, request) in requests.iter().enumerate() {
        match &dags[idx] {
            Some(dag) => {
                for &i in dag.plan.order() {
                    if dag.plan.stages()[i].deps.is_empty() {
                        queues.push(
                            request.priority,
                            Task {
                                build: idx,
                                stage: Some(i),
                            },
                        );
                    }
                }
            }
            None => queues.push(
                request.priority,
                Task {
                    build: idx,
                    stage: None,
                },
            ),
        }
    }
    let slots = (0..requests.len()).map(|_| Slot::default()).collect();
    let build_cancelled = (0..requests.len())
        .map(|_| AtomicBool::new(false))
        .collect();
    Arc::new(BatchShared {
        requests,
        dags,
        queue: Mutex::new(queues),
        slots: Mutex::new(slots),
        seq: AtomicUsize::new(0),
        completed: AtomicUsize::new(0),
        cancelled: AtomicBool::new(false),
        build_cancelled,
        fail_fast,
        registry,
        layers,
        signal,
        running: AtomicUsize::new(0),
        peak: AtomicUsize::new(0),
        steals: AtomicUsize::new(0),
        subs: Mutex::new(HashMap::new()),
    })
}

/// Record a build's terminal outcome exactly once: first caller wins,
/// later calls are no-ops. Assigns the completion `seq` (except to
/// cancellations, which never ran to completion), trips `fail_fast`,
/// bumps the completion counter, and streams the terminal event.
fn finalize(
    shared: &BatchShared,
    build: usize,
    status: BuildStatus,
    result: BuildResult,
    trace: zr_trace::Stats,
) {
    {
        let mut slots = lock(&shared.slots);
        let slot = &mut slots[build];
        if slot.status.terminal() {
            return;
        }
        slot.status = status;
        if status != BuildStatus::Cancelled {
            slot.seq = Some(shared.seq.fetch_add(1, Ordering::SeqCst));
        }
        slot.result = Some(result);
        slot.trace = Some(trace);
    }
    if status == BuildStatus::Failed && shared.fail_fast {
        shared.cancelled.store(true, Ordering::SeqCst);
    }
    // Stream the terminal event before ticking the completion counter,
    // so a `wait` that wakes on completion always finds it delivered.
    publish_done(shared, build);
    shared.completed.fetch_add(1, Ordering::SeqCst);
    shared.signal.notify();
}

/// Send `event` to every subscriber of `build`, dropping closed ones.
fn deliver(subs: &mut HashMap<usize, Vec<mpsc::Sender<LogEvent>>>, build: usize, event: &LogEvent) {
    if let Some(senders) = subs.get_mut(&build) {
        senders.retain(|tx| tx.send(event.clone()).is_ok());
    }
}

/// Stream one completed stage's log chunk (once — the `streamed` set
/// dedupes against late-subscriber replay, under the same lock order
/// `subs` → `state` that [`BatchHandle::subscribe`] uses).
fn publish_stage(shared: &BatchShared, build: usize, stage: usize) {
    let Some(dag) = shared.dags[build].as_ref() else {
        return;
    };
    let mut subs = lock(&shared.subs);
    let mut state = lock(&dag.state);
    if !state.streamed.insert(stage) {
        return;
    }
    let Some(lines) = state.logs.get(&stage) else {
        return;
    };
    let event = LogEvent::Stage {
        build,
        stage: dag.plan.stage_name(stage),
        lines: lines.clone(),
    };
    deliver(&mut subs, build, &event);
}

/// Stream the terminal event (and, for opaque builds, the whole log
/// first — their single "stage" completes when the build does).
fn publish_done(shared: &BatchShared, build: usize) {
    let mut subs = lock(&shared.subs);
    let mut slots = lock(&shared.slots);
    let slot = &mut slots[build];
    if !slot.status.terminal() {
        return;
    }
    if shared.dags[build].is_none() && !slot.log_streamed {
        slot.log_streamed = true;
        if let Some(result) = &slot.result {
            let event = LogEvent::Stage {
                build,
                stage: "build".into(),
                lines: result.log.clone(),
            };
            deliver(&mut subs, build, &event);
        }
    }
    if !slot.done_streamed {
        slot.done_streamed = true;
        let event = LogEvent::Done {
            build,
            status: slot.status,
        };
        deliver(&mut subs, build, &event);
    }
}

/// The pruning notes and per-stage banners + chunks, in plan order —
/// byte-identical to what a serial [`Builder::build`] logs, whatever
/// order the stages actually finished in.
fn assemble_dag_log(plan: &BuildPlan, logs: &HashMap<usize, Vec<String>>) -> Vec<String> {
    let mut log = Vec::new();
    for &p in plan.pruned() {
        log.push(format!("skipping unused stage: {}", plan.stage_name(p)));
    }
    let total = plan.order().len();
    for (pos, &idx) in plan.order().iter().enumerate() {
        let Some(lines) = logs.get(&idx) else {
            continue;
        };
        log.push(format!(
            "=== stage {} ({}/{}) ===",
            plan.stage_name(idx),
            pos + 1,
            total
        ));
        log.extend(lines.iter().cloned());
    }
    log
}

/// Finalize a fully built DAG: tag the target stage's image and close
/// the assembled log exactly like the serial builder. The status is
/// [`BuildStatus::Degraded`] when any stage used a base-image fallback
/// or succeeded only on a post-panic retry.
fn dag_success(shared: &BatchShared, build: usize, dag: &DagBuild) {
    let request = &shared.requests[build];
    let (status, result, trace) = {
        let state = lock(&dag.state);
        let image = state
            .images
            .get(&dag.plan.target())
            .expect("target stage built")
            .clone();
        let mut meta = image.meta.clone();
        meta.tag = request.options.tag.clone();
        let image = Image { meta, fs: image.fs };
        let mut log = assemble_dag_log(&dag.plan, &state.logs);
        let walked: usize = dag
            .plan
            .order()
            .iter()
            .map(|&i| dag.plan.stage_instructions(i).len())
            .sum();
        finish_log(&mut log, &request.options, state.modified, walked);
        let degraded = state.stats.base_fallbacks > 0 || !state.panicked.is_empty();
        (
            if degraded {
                BuildStatus::Degraded
            } else {
                BuildStatus::Done
            },
            BuildResult {
                success: true,
                log,
                image: Some(image),
                modified_run_instructions: state.modified,
                tag: request.options.tag.clone(),
                cache: state.stats,
                degraded,
                error: None,
            },
            state.trace.clone(),
        )
    };
    finalize(shared, build, status, result, trace);
}

/// Finalize a halted DAG (`Failed` after a stage error, `Cancelled`
/// otherwise) with whatever stage logs were produced.
fn dag_halted(shared: &BatchShared, build: usize, dag: &DagBuild, status: BuildStatus) {
    let request = &shared.requests[build];
    let (result, trace) = {
        let state = lock(&dag.state);
        let error = match status {
            BuildStatus::Failed => state.error.clone().unwrap_or(BuildError::Cancelled),
            _ => BuildError::Cancelled,
        };
        let mut log = assemble_dag_log(&dag.plan, &state.logs);
        log.push(format!("error: build failed: {error}"));
        (
            BuildResult {
                success: false,
                log,
                image: None,
                modified_run_instructions: state.modified,
                tag: request.options.tag.clone(),
                cache: state.stats,
                degraded: false,
                error: Some(error),
            },
            state.trace.clone(),
        )
    };
    finalize(shared, build, status, result, trace);
}

/// A popped task whose build (or batch) is already cancelled: end the
/// build now if no sibling stage is still running (the last running
/// sibling otherwise finalizes on completion).
fn cancel_task(shared: &BatchShared, task: Task) {
    match task.stage {
        None => finalize(
            shared,
            task.build,
            BuildStatus::Cancelled,
            synthesized_failure(
                &shared.requests[task.build].options.tag,
                BuildError::Cancelled,
            ),
            zr_trace::Stats::default(),
        ),
        Some(_) => {
            let dag = shared.dags[task.build]
                .as_ref()
                .expect("stage task without a plan");
            let idle = lock(&dag.state).inflight == 0;
            if idle {
                dag_halted(shared, task.build, dag, BuildStatus::Cancelled);
            }
        }
    }
}

/// Run one opaque request on a private kernel with shared
/// registry/cache handles. The kernel's tracer is labeled with the
/// build id so interleaved trace output from concurrent builds stays
/// attributable.
fn run_one(shared: &BatchShared, idx: usize) -> (BuildResult, zr_trace::Stats) {
    worker_fault_hooks();
    let request = &shared.requests[idx];
    let mut kernel = Kernel::default_kernel();
    kernel.trace.set_label(&request.id);
    let mut builder = Builder::with_shared(shared.registry.clone(), shared.layers.clone());
    let result = builder.build(&mut kernel, &request.dockerfile, &request.options);
    let trace = kernel.trace.stats();
    (result, trace)
}

fn execute_opaque(shared: &BatchShared, build: usize) {
    lock(&shared.slots)[build].status = BuildStatus::Running;
    let outcome = catch_unwind(AssertUnwindSafe(|| run_one(shared, build)));
    let (result, trace) = outcome.unwrap_or_else(|_| {
        let tag = &shared.requests[build].options.tag;
        (
            synthesized_failure(
                tag,
                BuildError::Instruction {
                    instruction: 0,
                    message: "builder panicked".into(),
                },
            ),
            zr_trace::Stats::default(),
        )
    });
    let status = if !result.success {
        BuildStatus::Failed
    } else if result.degraded {
        BuildStatus::Degraded
    } else {
        BuildStatus::Done
    };
    finalize(shared, build, status, result, trace);
}

/// The worker-side fault hooks, evaluated at the top of every task
/// body (inside the panic guard): `sched.stage.stall` parks the worker
/// for its argument in milliseconds, `sched.stage.panic` panics like a
/// builder bug would.
fn worker_fault_hooks() {
    if let Some(ms) = zr_fault::hit(zr_fault::points::SCHED_STAGE_STALL) {
        std::thread::sleep(Duration::from_millis(if ms == 0 { 50 } else { ms }));
    }
    if zr_fault::fires(zr_fault::points::SCHED_STAGE_PANIC) {
        panic!("injected worker panic");
    }
}

/// Execute one released stage on a private kernel, then advance the
/// build's DAG: release newly unblocked dependents, or finalize when
/// this was the last stage (successfully or not).
fn execute_stage(shared: &BatchShared, build: usize, stage: usize) {
    let dag = shared.dags[build]
        .as_ref()
        .expect("stage task without a plan");
    let deps = {
        let mut state = lock(&dag.state);
        if state.error.is_some() {
            // A sibling already failed this build — drop the task; if
            // nothing else is running the build can end now.
            let idle = state.inflight == 0;
            drop(state);
            if idle {
                dag_halted(shared, build, dag, BuildStatus::Failed);
            }
            return;
        }
        state.inflight += 1;
        let mut deps = HashMap::new();
        for &d in &dag.plan.stages()[stage].deps {
            if let Some(image) = state.images.get(&d) {
                deps.insert(d, image.clone());
            }
        }
        deps
    };
    {
        let mut slots = lock(&shared.slots);
        if slots[build].status == BuildStatus::Queued {
            slots[build].status = BuildStatus::Running;
        }
    }
    let request = &shared.requests[build];
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        worker_fault_hooks();
        let mut kernel = Kernel::default_kernel();
        kernel
            .trace
            .set_label(&format!("{}:{}", request.id, dag.plan.stage_name(stage)));
        let mut builder = Builder::with_shared(shared.registry.clone(), shared.layers.clone());
        let mut log = Vec::new();
        let mut modified = 0u32;
        let mut stats = CacheStats::default();
        let result = builder.build_stage(
            &mut kernel,
            &dag.plan,
            stage,
            &request.options,
            &deps,
            &mut log,
            &mut modified,
            &mut stats,
        );
        (result, log, modified, stats, kernel.trace.stats())
    }));
    let panicked = outcome.is_err();
    let (result, log, modified, stats, trace) = outcome.unwrap_or_else(|_| {
        (
            Err(BuildError::Instruction {
                instruction: 0,
                message: "builder panicked".into(),
            }),
            Vec::new(),
            0,
            CacheStats::default(),
            zr_trace::Stats::default(),
        )
    });

    let mut released = Vec::new();
    let mut terminal = None;
    {
        let mut state = lock(&dag.state);
        state.inflight -= 1;
        // A panicked stage gets exactly one retry: the worker survived
        // (the panic was caught), the stage never recorded a result,
        // and the build's other stages are untouched — so requeue it
        // and let the batch proceed, marking the build degraded if it
        // ultimately succeeds. A second panic of the same stage fails
        // the build like any stage error.
        let halted = shared.cancelled.load(Ordering::SeqCst)
            || shared.build_cancelled[build].load(Ordering::SeqCst);
        if panicked && !halted && state.error.is_none() && state.panicked.insert(stage) {
            drop(state);
            zr_fault::count_panic_retried();
            lock(&shared.queue).push(
                request.priority,
                Task {
                    build,
                    stage: Some(stage),
                },
            );
            shared.signal.notify();
            return;
        }
        state.logs.insert(stage, log);
        state.stats.hits += stats.hits;
        state.stats.misses += stats.misses;
        state.stats.base_fallbacks += stats.base_fallbacks;
        state.modified += modified;
        merge_trace(&mut state.trace, &trace);
        match result {
            Ok(image) => {
                state.images.insert(stage, image);
                state.remaining -= 1;
                if state.remaining == 0 && state.error.is_none() {
                    terminal = Some(BuildStatus::Done);
                } else {
                    let halted = state.error.is_some()
                        || shared.cancelled.load(Ordering::SeqCst)
                        || shared.build_cancelled[build].load(Ordering::SeqCst);
                    if !halted {
                        // Plan order keeps the release (and therefore
                        // single-worker execution) order deterministic.
                        for &next in dag.plan.order() {
                            if !dag.plan.stages()[next].deps.contains(&stage) {
                                continue;
                            }
                            if let Some(count) = state.pending.get_mut(&next) {
                                *count -= 1;
                                if *count == 0 {
                                    released.push(next);
                                }
                            }
                        }
                        for &n in &released {
                            state.pending.remove(&n);
                        }
                    } else if state.inflight == 0 {
                        terminal = Some(if state.error.is_some() {
                            BuildStatus::Failed
                        } else {
                            BuildStatus::Cancelled
                        });
                    }
                }
            }
            Err(e) => {
                if state.error.is_none() {
                    state.error = Some(e);
                }
                if state.inflight == 0 {
                    terminal = Some(BuildStatus::Failed);
                }
            }
        }
    }
    publish_stage(shared, build, stage);
    if !released.is_empty() {
        {
            let mut queue = lock(&shared.queue);
            for &next in &released {
                queue.push(
                    request.priority,
                    Task {
                        build,
                        stage: Some(next),
                    },
                );
            }
        }
        shared.signal.notify();
    }
    match terminal {
        Some(BuildStatus::Done) => dag_success(shared, build, dag),
        Some(status) => dag_halted(shared, build, dag, status),
        None => {}
    }
}

/// Run one popped task end to end, maintaining the concurrency gauge.
/// Every outcome — success, failure, panic, cancellation — lands in
/// the build's slot; nothing a build does can poison its neighbors.
pub(crate) fn run_task(shared: &BatchShared, task: Task) {
    if shared.cancelled.load(Ordering::SeqCst)
        || shared.build_cancelled[task.build].load(Ordering::SeqCst)
    {
        cancel_task(shared, task);
        return;
    }
    let running = shared.running.fetch_add(1, Ordering::SeqCst) + 1;
    shared.peak.fetch_max(running, Ordering::SeqCst);
    match task.stage {
        None => execute_opaque(shared, task.build),
        Some(stage) => execute_stage(shared, task.build, stage),
    }
    shared.running.fetch_sub(1, Ordering::SeqCst);
}

/// One batch worker: pop and run tasks until every build in the batch
/// is terminal. Unlike the pre-DAG engine, an empty queue is *not*
/// the end — stage completions release new tasks — so idle workers
/// park on the batch signal.
fn worker(shared: &Arc<BatchShared>, affinity: Affinity) {
    loop {
        match shared.try_pop(affinity) {
            Some((task, stolen)) => {
                if stolen {
                    shared.note_steal();
                }
                run_task(shared, task);
            }
            None => {
                if shared.is_complete() {
                    return;
                }
                shared
                    .signal
                    .wait_until(|| shared.has_work() || shared.is_complete());
            }
        }
    }
}

/// A submitted batch: poll statuses, cancel, subscribe to logs, and
/// wait for the reports.
pub struct BatchHandle {
    shared: Arc<BatchShared>,
    workers: Vec<JoinHandle<()>>,
}

impl BatchHandle {
    pub(crate) fn new(shared: Arc<BatchShared>, workers: Vec<JoinHandle<()>>) -> BatchHandle {
        BatchHandle { shared, workers }
    }

    /// Current status of request `idx` (input order).
    pub fn status(&self, idx: usize) -> Option<BuildStatus> {
        lock(&self.shared.slots).get(idx).map(|s| s.status)
    }

    /// Current status of every request, in input order.
    pub fn statuses(&self) -> Vec<BuildStatus> {
        lock(&self.shared.slots).iter().map(|s| s.status).collect()
    }

    /// Cancel every build that has not started yet. Running builds
    /// (and running stages) finish; queued work ends
    /// [`BuildStatus::Cancelled`]. For a multi-stage build this
    /// cancels its queued *descendant stages* too: completed stages
    /// stop releasing dependents the moment the flag is up.
    pub fn cancel(&self) {
        self.shared.cancelled.store(true, Ordering::SeqCst);
        self.shared.signal.notify();
    }

    /// Cancel one build by request index. Its queued tasks (including
    /// not-yet-released stages) never run; stages already on a worker
    /// finish, and the last one finalizes the build as `Cancelled`.
    /// Other builds in the batch are untouched.
    pub fn cancel_build(&self, idx: usize) {
        let Some(flag) = self.shared.build_cancelled.get(idx) else {
            return;
        };
        flag.store(true, Ordering::SeqCst);
        match self.shared.dags[idx].as_ref() {
            Some(dag) => {
                let idle = lock(&dag.state).inflight == 0;
                if idle {
                    dag_halted(&self.shared, idx, dag, BuildStatus::Cancelled);
                }
            }
            None => {
                let queued = lock(&self.shared.slots)[idx].status == BuildStatus::Queued;
                if queued {
                    finalize(
                        &self.shared,
                        idx,
                        BuildStatus::Cancelled,
                        synthesized_failure(
                            &self.shared.requests[idx].options.tag,
                            BuildError::Cancelled,
                        ),
                        zr_trace::Stats::default(),
                    );
                }
            }
        }
        self.shared.signal.notify();
    }

    /// High-water mark of tasks executing at once — ≥ 2 proves that
    /// independent stages (or builds) actually overlapped.
    pub fn peak_concurrency(&self) -> usize {
        self.shared.peak.load(Ordering::SeqCst)
    }

    /// How many queue pops crossed priority classes (an idle worker
    /// taking the other class's work instead of parking).
    pub fn steals(&self) -> usize {
        self.shared.steals.load(Ordering::SeqCst)
    }

    /// Subscribe to build `idx`'s log stream: one
    /// [`LogEvent::Stage`] per completed stage (the whole log at once
    /// for single-stage builds), then [`LogEvent::Done`]. Subscribing
    /// after work started replays every event already streamed, so the
    /// receiver always sees a complete history.
    pub fn subscribe(&self, idx: usize) -> mpsc::Receiver<LogEvent> {
        let (tx, rx) = mpsc::channel();
        let shared = &self.shared;
        let mut subs = lock(&shared.subs);
        if let Some(dag) = shared.dags.get(idx).and_then(|d| d.as_ref()) {
            let state = lock(&dag.state);
            for &s in dag.plan.order() {
                if state.streamed.contains(&s) {
                    if let Some(lines) = state.logs.get(&s) {
                        let _ = tx.send(LogEvent::Stage {
                            build: idx,
                            stage: dag.plan.stage_name(s),
                            lines: lines.clone(),
                        });
                    }
                }
            }
        }
        {
            let slots = lock(&shared.slots);
            if let Some(slot) = slots.get(idx) {
                if slot.log_streamed {
                    if let Some(result) = &slot.result {
                        let _ = tx.send(LogEvent::Stage {
                            build: idx,
                            stage: "build".into(),
                            lines: result.log.clone(),
                        });
                    }
                }
                if slot.done_streamed {
                    let _ = tx.send(LogEvent::Done {
                        build: idx,
                        status: slot.status,
                    });
                }
            }
        }
        subs.entry(idx).or_default().push(tx);
        rx
    }

    /// Block until every build is terminal and return one report per
    /// request, in input order.
    pub fn wait(self) -> Vec<BuildReport> {
        let own_workers = !self.workers.is_empty();
        self.shared.signal.wait_until(|| {
            self.shared.is_complete()
                || (own_workers && self.workers.iter().all(|w| w.is_finished()))
        });
        for w in self.workers {
            let _ = w.join();
        }
        // Belt and braces: if a worker died outside the panic guard,
        // drain and cancel whatever it left queued.
        while let Some((task, _)) = self.shared.try_pop(Affinity::Normal) {
            cancel_task(&self.shared, task);
        }
        let mut slots = lock(&self.shared.slots);
        self.shared
            .requests
            .iter()
            .zip(slots.iter_mut())
            .map(|(request, slot)| {
                let status = match slot.status {
                    BuildStatus::Queued | BuildStatus::Running => BuildStatus::Cancelled,
                    terminal => terminal,
                };
                let result = slot.result.take().unwrap_or_else(|| {
                    synthesized_failure(&request.options.tag, BuildError::Cancelled)
                });
                BuildReport {
                    id: request.id.clone(),
                    status,
                    result,
                    trace: slot.trace.take().unwrap_or_default(),
                    seq: slot.seq,
                }
            })
            .collect()
    }
}

/// The build scheduler: a configurable worker pool over one shared
/// registry and one shared layer cache.
///
/// Batches are independent — each `submit`/`build_many` spins up its
/// own workers — but the registry's pull-through blob cache and the
/// layer store persist across batches, so a second batch of familiar
/// Dockerfiles replays instead of executing. For a long-lived pool
/// that persists across batches, see [`Daemon`](crate::Daemon).
pub struct Scheduler {
    config: SchedulerConfig,
    registry: Arc<ShardedRegistry>,
    layers: LayerStore,
    /// The persistent tier behind `cache_dir`, kept so callers can
    /// surface absorbed store errors and stats (persist failures must
    /// not fail builds, but they must not be invisible either).
    disk: Option<Arc<zr_store::DiskLayers>>,
}

impl Default for Scheduler {
    fn default() -> Scheduler {
        Scheduler::new(SchedulerConfig::default())
    }
}

impl Scheduler {
    /// A scheduler with its own registry and layer cache, built from
    /// `config`. Panics if `config.cache_dir` cannot be opened — use
    /// [`try_new`](Self::try_new) to surface store errors.
    pub fn new(config: SchedulerConfig) -> Scheduler {
        Scheduler::try_new(config).expect("cannot open --cache-dir store")
    }

    /// [`new`](Self::new), with persistent-store failures returned
    /// instead of panicking.
    pub fn try_new(config: SchedulerConfig) -> zr_store::Result<Scheduler> {
        let registry = Arc::new(match &config.backend {
            Some(backend) => ShardedRegistry::with_backend(
                config.registry_shards,
                config.pull_cost,
                backend.clone(),
            ),
            None => ShardedRegistry::with_cost(config.registry_shards, config.pull_cost),
        });
        registry.set_blob_budget(config.blob_budget);
        let (layers, disk) = match &config.cache_dir {
            Some(dir) => {
                let (layers, disk) = zr_store::open_layer_store(dir)?;
                layers.set_budget(config.cache_limit);
                // No flag given → keep the budget the store persisted
                // at its last `--store-limit`; an explicit flag wins
                // and is re-persisted by `set_budget`.
                if let Some(limit) = config.store_limit {
                    disk.cas().set_budget(limit)?;
                }
                (layers, Some(disk))
            }
            None => (LayerStore::with_budget(config.cache_limit), None),
        };
        let mut sched = Scheduler::with_shared(config, registry, layers);
        sched.disk = disk;
        Ok(sched)
    }

    /// A scheduler over externally owned registry/cache handles (share
    /// them with other schedulers, a CLI builder, tests, ...).
    pub fn with_shared(
        config: SchedulerConfig,
        registry: Arc<ShardedRegistry>,
        layers: LayerStore,
    ) -> Scheduler {
        Scheduler {
            config,
            registry,
            layers,
            disk: None,
        }
    }

    /// The shared registry handle.
    pub fn registry(&self) -> &Arc<ShardedRegistry> {
        &self.registry
    }

    /// The shared layer-cache handle.
    pub fn layers(&self) -> &LayerStore {
        &self.layers
    }

    /// The persistent store tier, when the scheduler was built with a
    /// `cache_dir` (error counters, CAS stats, gc).
    pub fn disk(&self) -> Option<&Arc<zr_store::DiskLayers>> {
        self.disk.as_ref()
    }

    /// Enqueue a batch and return immediately with a [`BatchHandle`].
    ///
    /// The worker count is `jobs` clamped to the batch's task width —
    /// the total stage count, not the request count, so a single
    /// multi-stage build still gets enough workers to overlap its
    /// independent stages.
    pub fn submit(&self, requests: Vec<BuildRequest>) -> BatchHandle {
        let signal = Arc::new(WorkSignal::default());
        let has_high = requests.iter().any(|r| r.priority == Priority::High);
        let shared = make_batch(
            requests,
            self.config.fail_fast,
            self.registry.clone(),
            self.layers.clone(),
            signal,
        );
        let width: usize = shared
            .dags
            .iter()
            .map(|d| d.as_ref().map_or(1, |dag| dag.plan.order().len()))
            .sum();
        let n = self.config.jobs.max(1).min(width.max(1));
        let workers = (0..n)
            .map(|i| {
                let shared = Arc::clone(&shared);
                // With both classes populated, the first half of the
                // pool is affine to high-priority work (a lone worker
                // drains high first — strict priority, as before).
                let affinity = if has_high && i < n.div_ceil(2) {
                    Affinity::High
                } else {
                    Affinity::Normal
                };
                std::thread::spawn(move || worker(&shared, affinity))
            })
            .collect();
        BatchHandle::new(shared, workers)
    }

    /// Build a whole batch and block for its reports, in input order.
    pub fn build_many(&self, requests: Vec<BuildRequest>) -> Vec<BuildReport> {
        self.submit(requests).wait()
    }
}
