//! The worker pool, its queues, and per-build status tracking.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;

use zeroroot_core::sync::lock_or_poisoned;

use zr_build::{BuildError, BuildOptions, BuildResult, Builder};
use zr_image::{LayerStore, PullCost, RegistryBackend, ShardedRegistry};
use zr_kernel::Kernel;

/// Queue class for one request. High-priority requests drain before any
/// normal-priority request, FIFO within each class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// The default FIFO queue.
    #[default]
    Normal,
    /// Jumps ahead of every queued normal-priority build.
    High,
}

/// One build in a batch: a Dockerfile plus its options, under a caller
/// chosen id (the id labels trace output and names the report).
#[derive(Debug, Clone)]
pub struct BuildRequest {
    /// Caller-chosen build id (also the default tag).
    pub id: String,
    /// Dockerfile text.
    pub dockerfile: String,
    /// Build options (tag, --force mode, cache policy, context, ...).
    pub options: BuildOptions,
    /// Queue class.
    pub priority: Priority,
}

impl BuildRequest {
    /// A normal-priority request with default options, tagged `id`.
    pub fn new(id: &str, dockerfile: &str) -> BuildRequest {
        let options = BuildOptions {
            tag: id.to_string(),
            ..BuildOptions::default()
        };
        BuildRequest {
            id: id.to_string(),
            dockerfile: dockerfile.to_string(),
            options,
            priority: Priority::Normal,
        }
    }

    /// A request with explicit options.
    pub fn with_options(id: &str, dockerfile: &str, options: BuildOptions) -> BuildRequest {
        BuildRequest {
            id: id.to_string(),
            dockerfile: dockerfile.to_string(),
            options,
            priority: Priority::Normal,
        }
    }

    /// Move this request to the high-priority queue.
    pub fn high_priority(mut self) -> BuildRequest {
        self.priority = Priority::High;
        self
    }
}

/// Where one build is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BuildStatus {
    /// Waiting in a queue.
    #[default]
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished successfully.
    Done,
    /// Finished with a failure (the report's result says why).
    Failed,
    /// Never ran: the batch was cancelled (or `fail_fast` tripped)
    /// while it was still queued.
    Cancelled,
}

impl std::fmt::Display for BuildStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BuildStatus::Queued => "queued",
            BuildStatus::Running => "running",
            BuildStatus::Done => "done",
            BuildStatus::Failed => "failed",
            BuildStatus::Cancelled => "cancelled",
        };
        f.write_str(s)
    }
}

/// Scheduler construction knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Worker threads per batch (clamped to at least 1).
    pub jobs: usize,
    /// Cancel the rest of the batch when any build fails.
    pub fail_fast: bool,
    /// Shard count for the scheduler-owned registry.
    pub registry_shards: usize,
    /// Modeled network cost of registry pulls (benchmarks dial this up
    /// to measure how well workers overlap their pulls).
    pub pull_cost: PullCost,
    /// Layer-cache size budget in bytes (0 = unlimited).
    pub cache_limit: u64,
    /// Registry blob-cache byte budget (0 = unlimited): per-shard LRU
    /// eviction against one global counter.
    pub blob_budget: u64,
    /// Persistent layer-store directory (`--cache-dir`). When set, the
    /// shared layer store is backed by `zr-store`: every worker's
    /// layers are written through to disk, and a later scheduler (or
    /// another process) opening the same directory replays them.
    pub cache_dir: Option<std::path::PathBuf>,
    /// On-disk store size budget in bytes (`--store-limit`, 0 =
    /// unlimited): the persistent CAS under `cache_dir` evicts whole
    /// least-recently-pinned layer roots (and their dependents) until
    /// physical bytes fit. The disk-side mirror of `cache_limit`.
    /// `None` leaves whatever budget the store itself has persisted;
    /// `Some` overrides it (and the override is persisted in turn).
    pub store_limit: Option<u64>,
    /// Where the scheduler-owned registry fetches cache misses. `None`
    /// uses the built-in catalog (the simulator); `Some` plugs in a
    /// live backend such as `zr-registry`'s wire client, so `FROM`
    /// resolves against a real OCI distribution endpoint.
    pub backend: Option<Arc<dyn RegistryBackend>>,
}

impl Default for SchedulerConfig {
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            jobs: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            fail_fast: false,
            registry_shards: ShardedRegistry::DEFAULT_SHARDS,
            pull_cost: PullCost::default(),
            cache_limit: 0,
            blob_budget: 0,
            cache_dir: None,
            store_limit: None,
            backend: None,
        }
    }
}

/// What one build in a batch produced.
#[derive(Debug, Clone)]
pub struct BuildReport {
    /// The request's id.
    pub id: String,
    /// Terminal status ([`BuildStatus::Done`], `Failed`, or
    /// `Cancelled`).
    pub status: BuildStatus,
    /// The build result (synthesized with
    /// [`BuildError::Cancelled`] for builds that never ran).
    pub result: BuildResult,
    /// Syscall statistics from this build's private kernel.
    pub trace: zr_trace::Stats,
    /// Completion sequence within the batch (0 = finished first);
    /// `None` for cancelled builds.
    pub seq: Option<usize>,
}

/// One slot of batch state, indexed by request position.
#[derive(Debug, Default)]
struct Slot {
    status: BuildStatus,
    result: Option<BuildResult>,
    trace: Option<zr_trace::Stats>,
    seq: Option<usize>,
}

/// The two request queues (indices into `requests`).
#[derive(Debug, Default)]
struct Queues {
    high: VecDeque<usize>,
    normal: VecDeque<usize>,
}

impl Queues {
    fn pop(&mut self) -> Option<usize> {
        self.high.pop_front().or_else(|| self.normal.pop_front())
    }
}

/// State shared by every worker of one batch.
struct BatchShared {
    requests: Vec<BuildRequest>,
    queue: Mutex<Queues>,
    slots: Mutex<Vec<Slot>>,
    /// Completion counter (assigns `BuildReport::seq`).
    seq: AtomicUsize,
    cancelled: AtomicBool,
    fail_fast: bool,
    registry: Arc<ShardedRegistry>,
    layers: LayerStore,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    lock_or_poisoned(m)
}

/// A failed [`BuildResult`] for a build that never ran.
fn synthesized_failure(tag: &str, error: BuildError) -> BuildResult {
    BuildResult {
        success: false,
        log: vec![format!("error: build failed: {error}")],
        image: None,
        modified_run_instructions: 0,
        tag: tag.to_string(),
        cache: zr_build::CacheStats::default(),
        error: Some(error),
    }
}

/// Run one request on a private kernel with shared registry/cache
/// handles. The kernel's tracer is labeled with the build id so
/// interleaved trace output from concurrent builds stays attributable.
fn run_one(shared: &BatchShared, idx: usize) -> (BuildResult, zr_trace::Stats) {
    let request = &shared.requests[idx];
    let mut kernel = Kernel::default_kernel();
    kernel.trace.set_label(&request.id);
    let mut builder = Builder::with_shared(shared.registry.clone(), shared.layers.clone());
    let result = builder.build(&mut kernel, &request.dockerfile, &request.options);
    let trace = kernel.trace.stats();
    (result, trace)
}

/// One worker: drain the queues until empty. Every outcome — success,
/// failure, panic, cancellation — lands in the build's slot; nothing a
/// build does can poison its neighbors.
fn worker(shared: &Arc<BatchShared>) {
    loop {
        let Some(idx) = lock(&shared.queue).pop() else {
            return;
        };
        if shared.cancelled.load(Ordering::SeqCst) {
            let mut slots = lock(&shared.slots);
            slots[idx].status = BuildStatus::Cancelled;
            continue;
        }
        lock(&shared.slots)[idx].status = BuildStatus::Running;
        let outcome = catch_unwind(AssertUnwindSafe(|| run_one(shared, idx)));
        let (result, trace) = outcome.unwrap_or_else(|_| {
            let tag = &shared.requests[idx].options.tag;
            (
                synthesized_failure(
                    tag,
                    BuildError::Instruction {
                        instruction: 0,
                        message: "builder panicked".into(),
                    },
                ),
                zr_trace::Stats::default(),
            )
        });
        let failed = !result.success;
        {
            let mut slots = lock(&shared.slots);
            let slot = &mut slots[idx];
            slot.status = if failed {
                BuildStatus::Failed
            } else {
                BuildStatus::Done
            };
            slot.seq = Some(shared.seq.fetch_add(1, Ordering::SeqCst));
            slot.result = Some(result);
            slot.trace = Some(trace);
        }
        if failed && shared.fail_fast {
            shared.cancelled.store(true, Ordering::SeqCst);
        }
    }
}

/// A submitted batch: poll statuses, cancel what has not started, and
/// wait for the reports.
pub struct BatchHandle {
    shared: Arc<BatchShared>,
    workers: Vec<JoinHandle<()>>,
}

impl BatchHandle {
    /// Current status of request `idx` (input order).
    pub fn status(&self, idx: usize) -> Option<BuildStatus> {
        lock(&self.shared.slots).get(idx).map(|s| s.status)
    }

    /// Current status of every request, in input order.
    pub fn statuses(&self) -> Vec<BuildStatus> {
        lock(&self.shared.slots).iter().map(|s| s.status).collect()
    }

    /// Cancel every build that has not started yet. Running builds
    /// finish; queued ones end [`BuildStatus::Cancelled`].
    pub fn cancel(&self) {
        self.shared.cancelled.store(true, Ordering::SeqCst);
    }

    /// Block until the batch drains and return one report per request,
    /// in input order.
    pub fn wait(self) -> Vec<BuildReport> {
        for w in self.workers {
            // A worker that panicked already recorded the failure in its
            // slot (or the queue still holds its item — drained below).
            let _ = w.join();
        }
        // Belt and braces: if a worker died *between* popping an index
        // and recording it, or all workers died early, mark leftovers.
        while let Some(idx) = lock(&self.shared.queue).pop() {
            lock(&self.shared.slots)[idx].status = BuildStatus::Cancelled;
        }
        let mut slots = lock(&self.shared.slots);
        self.shared
            .requests
            .iter()
            .zip(slots.iter_mut())
            .map(|(request, slot)| {
                let status = match slot.status {
                    BuildStatus::Queued | BuildStatus::Running => BuildStatus::Cancelled,
                    terminal => terminal,
                };
                let result = slot.result.take().unwrap_or_else(|| {
                    synthesized_failure(&request.options.tag, BuildError::Cancelled)
                });
                BuildReport {
                    id: request.id.clone(),
                    status,
                    result,
                    trace: slot.trace.take().unwrap_or_default(),
                    seq: slot.seq,
                }
            })
            .collect()
    }
}

/// The build scheduler: a configurable worker pool over one shared
/// registry and one shared layer cache.
///
/// Batches are independent — each `submit`/`build_many` spins up its
/// own workers — but the registry's pull-through blob cache and the
/// layer store persist across batches, so a second batch of familiar
/// Dockerfiles replays instead of executing.
pub struct Scheduler {
    config: SchedulerConfig,
    registry: Arc<ShardedRegistry>,
    layers: LayerStore,
    /// The persistent tier behind `cache_dir`, kept so callers can
    /// surface absorbed store errors and stats (persist failures must
    /// not fail builds, but they must not be invisible either).
    disk: Option<Arc<zr_store::DiskLayers>>,
}

impl Default for Scheduler {
    fn default() -> Scheduler {
        Scheduler::new(SchedulerConfig::default())
    }
}

impl Scheduler {
    /// A scheduler with its own registry and layer cache, built from
    /// `config`. Panics if `config.cache_dir` cannot be opened — use
    /// [`try_new`](Self::try_new) to surface store errors.
    pub fn new(config: SchedulerConfig) -> Scheduler {
        Scheduler::try_new(config).expect("cannot open --cache-dir store")
    }

    /// [`new`](Self::new), with persistent-store failures returned
    /// instead of panicking.
    pub fn try_new(config: SchedulerConfig) -> zr_store::Result<Scheduler> {
        let registry = Arc::new(match &config.backend {
            Some(backend) => ShardedRegistry::with_backend(
                config.registry_shards,
                config.pull_cost,
                backend.clone(),
            ),
            None => ShardedRegistry::with_cost(config.registry_shards, config.pull_cost),
        });
        registry.set_blob_budget(config.blob_budget);
        let (layers, disk) = match &config.cache_dir {
            Some(dir) => {
                let (layers, disk) = zr_store::open_layer_store(dir)?;
                layers.set_budget(config.cache_limit);
                // No flag given → keep the budget the store persisted
                // at its last `--store-limit`; an explicit flag wins
                // and is re-persisted by `set_budget`.
                if let Some(limit) = config.store_limit {
                    disk.cas().set_budget(limit)?;
                }
                (layers, Some(disk))
            }
            None => (LayerStore::with_budget(config.cache_limit), None),
        };
        let mut sched = Scheduler::with_shared(config, registry, layers);
        sched.disk = disk;
        Ok(sched)
    }

    /// A scheduler over externally owned registry/cache handles (share
    /// them with other schedulers, a CLI builder, tests, ...).
    pub fn with_shared(
        config: SchedulerConfig,
        registry: Arc<ShardedRegistry>,
        layers: LayerStore,
    ) -> Scheduler {
        Scheduler {
            config,
            registry,
            layers,
            disk: None,
        }
    }

    /// The shared registry handle.
    pub fn registry(&self) -> &Arc<ShardedRegistry> {
        &self.registry
    }

    /// The shared layer-cache handle.
    pub fn layers(&self) -> &LayerStore {
        &self.layers
    }

    /// The persistent store tier, when the scheduler was built with a
    /// `cache_dir` (error counters, CAS stats, gc).
    pub fn disk(&self) -> Option<&Arc<zr_store::DiskLayers>> {
        self.disk.as_ref()
    }

    /// Enqueue a batch and return immediately with a [`BatchHandle`].
    pub fn submit(&self, requests: Vec<BuildRequest>) -> BatchHandle {
        let mut queues = Queues::default();
        for (idx, request) in requests.iter().enumerate() {
            match request.priority {
                Priority::High => queues.high.push_back(idx),
                Priority::Normal => queues.normal.push_back(idx),
            }
        }
        let slots = (0..requests.len()).map(|_| Slot::default()).collect();
        let workers = self.config.jobs.max(1).min(requests.len().max(1));
        let shared = Arc::new(BatchShared {
            requests,
            queue: Mutex::new(queues),
            slots: Mutex::new(slots),
            seq: AtomicUsize::new(0),
            cancelled: AtomicBool::new(false),
            fail_fast: self.config.fail_fast,
            registry: self.registry.clone(),
            layers: self.layers.clone(),
        });
        let workers = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker(&shared))
            })
            .collect();
        BatchHandle { shared, workers }
    }

    /// Build a whole batch and block for its reports, in input order.
    pub fn build_many(&self, requests: Vec<BuildRequest>) -> Vec<BuildReport> {
        self.submit(requests).wait()
    }
}
