//! # zr-sched — the concurrent build scheduler
//!
//! The paper's evaluation (§6) builds many images back-to-back; this
//! crate turns the single-build [`Builder`](zr_build::Builder) into a
//! batch engine. A [`Scheduler`] owns one shared
//! [`ShardedRegistry`](zr_image::ShardedRegistry) and one shared
//! [`LayerStore`](zr_image::LayerStore); each worker thread builds on a
//! private simulated kernel (per-build kernels already isolate state),
//! so the only shared edges are the pull-through blob cache and the
//! layer cache — both designed for concurrent access.
//!
//! ```
//! use zeroroot_core::Mode;
//! use zr_build::BuildOptions;
//! use zr_sched::{BuildRequest, Scheduler, SchedulerConfig};
//!
//! let sched = Scheduler::new(SchedulerConfig {
//!     jobs: 4,
//!     ..SchedulerConfig::default()
//! });
//! let reports = sched.build_many(vec![
//!     BuildRequest::new("a", "FROM alpine:3.19\nRUN apk add sl\n"),
//!     BuildRequest::with_options(
//!         "b",
//!         "FROM centos:7\nRUN yum install -y openssh\n",
//!         BuildOptions::new("b", Mode::Seccomp),
//!     ),
//! ]);
//! assert!(reports.iter().all(|r| r.result.success), "{}", reports[1].result.log_text());
//! // Results come back in input order, whatever order workers finished.
//! assert_eq!(reports[0].id, "a");
//! assert_eq!(reports[1].id, "b");
//! ```
//!
//! Concurrency never trades away determinism: building the same batch
//! serially and with 8 workers yields identical image digests — the
//! scheduler's test suite and the paper-report throughput gate both
//! check exactly that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod daemon;
mod scheduler;

pub use daemon::Daemon;
pub use scheduler::{
    BatchHandle, BuildReport, BuildRequest, BuildStatus, LogEvent, Priority, Scheduler,
    SchedulerConfig,
};
