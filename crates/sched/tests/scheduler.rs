//! Scheduler determinism, isolation, and cancellation.
//!
//! The load-bearing claim: concurrency is an implementation detail —
//! the same batch built serially and with 8 workers produces identical
//! image digests, and a failing (or cancelled) build never poisons its
//! neighbors.

use std::time::Duration;

use zeroroot_core::Mode;
use zr_build::BuildOptions;
use zr_image::PullCost;
use zr_sched::{BuildRequest, BuildStatus, Scheduler, SchedulerConfig};

/// A request building under `--force=seccomp` (the paper's setting —
/// package managers chown, so `Mode::None` fails by design).
fn seccomp_request(id: &str, dockerfile: &str) -> BuildRequest {
    BuildRequest::with_options(id, dockerfile, BuildOptions::new(id, Mode::Seccomp))
}

/// Eight distinct Dockerfiles over the catalog's bases: different
/// bases, different RUN chains, some context-free COPY-less variety.
fn distinct_batch() -> Vec<BuildRequest> {
    let dockerfiles = [
        "FROM alpine:3.19\nRUN apk add sl\n",
        "FROM centos:7\nRUN yum install -y openssh\n",
        "FROM debian:12\nRUN apt-get install -y hello\n",
        "FROM fedora:40\nRUN yum install -y openssh\n",
        "FROM alpine:3.19\nENV W=1\nRUN echo $W > /w && apk add fakeroot\n",
        "FROM centos:7\nWORKDIR /srv\nRUN echo centos > marker\n",
        "FROM debian:12\nARG V=2\nRUN echo $V > /v\n",
        "FROM alpine:3.19\nRUN touch /a && touch /b\n",
    ];
    dockerfiles
        .iter()
        .enumerate()
        .map(|(i, df)| seccomp_request(&format!("b{i}"), df))
        .collect()
}

fn scheduler(jobs: usize) -> Scheduler {
    Scheduler::new(SchedulerConfig {
        jobs,
        ..SchedulerConfig::default()
    })
}

#[test]
fn parallel_batch_matches_serial_digests() {
    let serial = scheduler(1).build_many(distinct_batch());
    let parallel = scheduler(8).build_many(distinct_batch());
    assert_eq!(serial.len(), 8);
    assert_eq!(parallel.len(), 8);
    for (i, (s, p)) in serial.iter().zip(parallel.iter()).enumerate() {
        // Input order is preserved regardless of completion order.
        assert_eq!(s.id, format!("b{i}"));
        assert_eq!(p.id, format!("b{i}"));
        assert_eq!(s.status, BuildStatus::Done, "{}", s.result.log_text());
        assert_eq!(p.status, BuildStatus::Done, "{}", p.result.log_text());
        let sd = s.result.image.as_ref().unwrap().digest();
        let pd = p.result.image.as_ref().unwrap().digest();
        assert_eq!(sd, pd, "digest of build {i} must not depend on jobs");
    }
    // All 8 builds completed, in some order: seqs are a permutation.
    let mut seqs: Vec<usize> = parallel.iter().map(|r| r.seq.unwrap()).collect();
    seqs.sort_unstable();
    assert_eq!(seqs, (0..8).collect::<Vec<_>>());
}

#[test]
fn cross_build_cache_hits_are_visible_and_monotonic() {
    // One Dockerfile, eight tags, one worker: the first build is cold,
    // the other seven replay layers a *different* builder instance
    // snapshotted — the cross-build hit the shared store exists for.
    let df = "FROM alpine:3.19\nRUN apk add sl\n";
    let batch = |round: usize| -> Vec<BuildRequest> {
        (0..8)
            .map(|i| seccomp_request(&format!("r{round}-{i}"), df))
            .collect()
    };
    let sched = scheduler(1);
    let first = sched.build_many(batch(0));
    assert!(first.iter().all(|r| r.result.success));
    assert_eq!(first[0].result.cache.hits, 0, "first build is cold");
    for r in &first[1..] {
        assert_eq!(r.result.cache.misses, 0, "later builds fully replay");
        assert!(r.result.cache.hits > 0, "cross-build hits visible");
    }
    let hits_first: u32 = first.iter().map(|r| r.result.cache.hits).sum();

    // A second batch through the same scheduler: everything replays,
    // and the store's lifetime hit counter only grows.
    let stats_before = sched.layers().stats();
    let second = sched.build_many(batch(1));
    assert!(second.iter().all(|r| r.result.cache.misses == 0));
    let hits_second: u32 = second.iter().map(|r| r.result.cache.hits).sum();
    assert!(
        hits_second >= hits_first,
        "hits are monotone across batches"
    );
    let stats_after = sched.layers().stats();
    assert!(stats_after.hits > stats_before.hits);
    assert_eq!(
        stats_after.layers, stats_before.layers,
        "no duplicate snapshots"
    );
}

#[test]
fn concurrent_identical_builds_do_not_duplicate_pulls() {
    // --no-cache forces every build to actually pull (a cached build
    // replays the FROM and never touches the registry), so this
    // exercises the pull-through blob cache alone.
    let df = "FROM debian:12\nRUN apt-get install -y hello\n";
    let sched = scheduler(8);
    let reports = sched.build_many(
        (0..8)
            .map(|i| {
                let mut r = seccomp_request(&format!("t{i}"), df);
                r.options.cache = zr_build::CacheMode::Disabled;
                r
            })
            .collect(),
    );
    assert!(reports.iter().all(|r| r.result.success));
    let stats = sched.registry().stats();
    assert_eq!(stats.pulls, 8);
    assert_eq!(stats.fetches, 1, "pull-through cache fetched the base once");
    assert_eq!(stats.blob_hits, 7);
}

#[test]
fn failure_is_isolated_to_its_build() {
    let mut requests = distinct_batch();
    requests[3] = BuildRequest::new("bad", "FROM nosuch:1\nRUN true\n");
    let reports = scheduler(4).build_many(requests);
    for (i, r) in reports.iter().enumerate() {
        if i == 3 {
            assert_eq!(r.status, BuildStatus::Failed);
            assert!(!r.result.success);
            assert!(r.result.log_text().contains("cannot pull nosuch:1"));
        } else {
            assert_eq!(r.status, BuildStatus::Done, "{}", r.result.log_text());
            assert!(r.result.image.is_some());
        }
    }
}

#[test]
fn fail_fast_cancels_queued_builds() {
    let sched = Scheduler::new(SchedulerConfig {
        jobs: 1,
        fail_fast: true,
        ..SchedulerConfig::default()
    });
    // One worker; the failing build is high priority, so it runs first
    // and the three good builds are still queued when it fails.
    let mut requests = vec![
        BuildRequest::new("ok-0", "FROM alpine:3.19\nRUN true\n"),
        BuildRequest::new("ok-1", "FROM alpine:3.19\nRUN true\n"),
        BuildRequest::new("ok-2", "FROM alpine:3.19\nRUN true\n"),
    ];
    requests.insert(
        0,
        BuildRequest::new("bad", "FROM nosuch:1\n").high_priority(),
    );
    let reports = sched.build_many(requests);
    assert_eq!(reports[0].status, BuildStatus::Failed);
    for r in &reports[1..] {
        assert_eq!(
            r.status,
            BuildStatus::Cancelled,
            "fail_fast cancels the queue"
        );
        assert!(!r.result.success);
        assert_eq!(
            r.result.error,
            Some(zr_build::BuildError::Cancelled),
            "cancelled builds report BuildError::Cancelled"
        );
        assert!(r.seq.is_none());
    }
}

#[test]
fn high_priority_builds_run_first() {
    // One worker and a queue populated before it starts: the high
    // priority request, though submitted last, completes first.
    let requests = vec![
        BuildRequest::new("n0", "FROM alpine:3.19\nRUN true\n"),
        BuildRequest::new("n1", "FROM alpine:3.19\nRUN true\n"),
        BuildRequest::new("urgent", "FROM alpine:3.19\nRUN true\n").high_priority(),
    ];
    let reports = scheduler(1).build_many(requests);
    assert_eq!(reports[2].id, "urgent");
    assert_eq!(reports[2].seq, Some(0), "high priority completed first");
    assert_eq!(reports[0].seq, Some(1));
    assert_eq!(reports[1].seq, Some(2));
}

#[test]
fn cancel_before_start_cancels_everything_queued() {
    // Modeled pull latency slows the first build enough that an
    // immediate cancel catches the rest of the single-worker queue.
    let sched = Scheduler::new(SchedulerConfig {
        jobs: 1,
        pull_cost: PullCost {
            round_trip: Duration::from_millis(20),
            fetch: Duration::from_millis(20),
        },
        ..SchedulerConfig::default()
    });
    let requests: Vec<BuildRequest> = (0..6)
        .map(|i| BuildRequest::new(&format!("c{i}"), "FROM alpine:3.19\nRUN true\n"))
        .collect();
    let handle = sched.submit(requests);
    handle.cancel();
    let reports = handle.wait();
    let cancelled = reports
        .iter()
        .filter(|r| r.status == BuildStatus::Cancelled)
        .count();
    assert!(cancelled >= 4, "cancel caught at most the in-flight build");
    for r in reports
        .iter()
        .filter(|r| r.status == BuildStatus::Cancelled)
    {
        assert_eq!(r.result.error, Some(zr_build::BuildError::Cancelled));
    }
}

#[test]
fn statuses_report_in_input_order() {
    let sched = scheduler(2);
    let handle = sched.submit(distinct_batch());
    let statuses = handle.statuses();
    assert_eq!(statuses.len(), 8);
    let reports = handle.wait();
    assert!(reports
        .iter()
        .all(|r| matches!(r.status, BuildStatus::Done)));
    assert_eq!(reports.len(), 8);
}

#[test]
fn empty_batch_is_fine() {
    assert!(scheduler(4).build_many(Vec::new()).is_empty());
}

#[test]
fn cache_dir_persists_layers_across_schedulers() {
    // Two schedulers over one --cache-dir: the second (fresh memory,
    // fresh registry — the "second process") must replay the first
    // one's layers with zero misses and no new pulls.
    let dir = std::env::temp_dir().join(format!("zr-sched-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = || SchedulerConfig {
        jobs: 2,
        cache_dir: Some(dir.clone()),
        ..SchedulerConfig::default()
    };
    let cold = Scheduler::try_new(config()).unwrap();
    let reports = cold.build_many(distinct_batch());
    assert!(reports.iter().all(|r| r.result.success));
    let digests: Vec<String> = reports
        .iter()
        .map(|r| r.result.image.as_ref().unwrap().digest())
        .collect();
    drop(cold);

    let warm = Scheduler::try_new(config()).unwrap();
    let reports = warm.build_many(distinct_batch());
    for (report, cold_digest) in reports.iter().zip(&digests) {
        assert!(report.result.success);
        assert_eq!(report.result.cache.misses, 0, "fully warm from disk");
        assert_eq!(
            &report.result.image.as_ref().unwrap().digest(),
            cold_digest,
            "disk replay reproduces the digest"
        );
    }
    assert_eq!(warm.registry().stats().pulls, 0, "no pulls when replaying");
    assert!(warm.layers().stats().disk_hits > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scheduler_cache_limit_bounds_the_store() {
    let sched = Scheduler::new(SchedulerConfig {
        jobs: 2,
        cache_limit: 64 * 1024,
        ..SchedulerConfig::default()
    });
    let reports = sched.build_many(distinct_batch());
    assert!(reports.iter().all(|r| r.result.success));
    let stats = sched.layers().stats();
    assert!(stats.bytes <= 64 * 1024, "store respects its budget");
    assert!(stats.evictions > 0, "distinct batch overflows 64 KiB");
}
