//! Stage-DAG scheduling: determinism, stage overlap, cancellation
//! across the DAG, work stealing, and daemon mode.

use std::time::Duration;

use zeroroot_core::Mode;
use zr_build::BuildOptions;
use zr_image::PullCost;
use zr_sched::{
    BatchHandle, BuildReport, BuildRequest, BuildStatus, Daemon, LogEvent, Scheduler,
    SchedulerConfig,
};

/// The canonical diamond: two independent middle stages off one base,
/// joined by `COPY --from=`. The middle stages install packages under
/// seccomp, so they are heavy enough to measurably overlap.
const DIAMOND: &str = "FROM alpine:3.19 AS base\nRUN echo shared > /shared\n\
                       FROM base AS left\nRUN apk add sl && echo l > /left\n\
                       FROM base AS right\nRUN apk add fakeroot && echo r > /right\n\
                       FROM alpine:3.19\n\
                       COPY --from=left /left /left\n\
                       COPY --from=right /right /right\n\
                       COPY --from=base /shared /shared\n";

fn diamond_request(id: &str) -> BuildRequest {
    BuildRequest::with_options(id, DIAMOND, BuildOptions::new(id, Mode::Seccomp))
}

fn scheduler(jobs: usize) -> Scheduler {
    Scheduler::new(SchedulerConfig {
        jobs,
        ..SchedulerConfig::default()
    })
}

fn terminal(s: &BuildStatus) -> bool {
    matches!(
        s,
        BuildStatus::Done | BuildStatus::Failed | BuildStatus::Cancelled
    )
}

/// Poll the handle until every build is terminal, tracking the peak
/// concurrency gauge and the steal counter, then wait for the reports.
fn wait_tracking(handle: BatchHandle, peak: &mut usize, steals: &mut usize) -> Vec<BuildReport> {
    loop {
        *peak = (*peak).max(handle.peak_concurrency());
        *steals = (*steals).max(handle.steals());
        if handle.statuses().iter().all(terminal) {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    *peak = (*peak).max(handle.peak_concurrency());
    *steals = (*steals).max(handle.steals());
    handle.wait()
}

#[test]
fn diamond_parallel_digest_and_log_match_serial() {
    let serial = scheduler(1).build_many(vec![diamond_request("d")]);
    let parallel = scheduler(8).build_many(vec![diamond_request("d")]);
    let s = &serial[0];
    let p = &parallel[0];
    assert_eq!(s.status, BuildStatus::Done, "{}", s.result.log_text());
    assert_eq!(p.status, BuildStatus::Done, "{}", p.result.log_text());
    assert_eq!(
        s.result.image.as_ref().unwrap().digest(),
        p.result.image.as_ref().unwrap().digest(),
        "digest must not depend on jobs"
    );
    // The assembled log is byte-identical too: stage banners come in
    // plan order whatever order the workers finished in.
    assert_eq!(s.result.log_text(), p.result.log_text());
    assert!(s.result.log_text().contains("=== stage left (2/4) ==="));
}

#[test]
fn diamond_overlaps_independent_stages() {
    // left and right are released together once base lands; with
    // enough workers they must run concurrently at least once in a
    // few cold attempts (each attempt uses a fresh scheduler so the
    // stages actually execute rather than replay).
    let mut peak = 0;
    for _ in 0..5 {
        let sched = scheduler(8);
        let handle = sched.submit(vec![diamond_request("d")]);
        let mut steals = 0;
        let reports = wait_tracking(handle, &mut peak, &mut steals);
        assert_eq!(reports[0].status, BuildStatus::Done);
        if peak >= 2 {
            break;
        }
    }
    assert!(peak >= 2, "independent stages never overlapped: {peak}");
}

#[test]
fn dag_warm_rebuild_replays_everything() {
    let sched = scheduler(4);
    let cold = sched.build_many(vec![diamond_request("d")]);
    assert_eq!(
        cold[0].status,
        BuildStatus::Done,
        "{}",
        cold[0].result.log_text()
    );
    assert_eq!(cold[0].result.cache.hits, 0, "cold build executes");
    let warm = sched.build_many(vec![diamond_request("d")]);
    assert_eq!(
        warm[0].result.cache.misses,
        0,
        "{}",
        warm[0].result.log_text()
    );
    assert_eq!(
        cold[0].result.image.as_ref().unwrap().digest(),
        warm[0].result.image.as_ref().unwrap().digest()
    );
}

#[test]
fn cancel_cancels_queued_descendant_stages() {
    // One worker and modeled pull latency: the cancel lands while the
    // base stage is still pulling, so the dependent stages — released
    // only on completion — must never run.
    let sched = Scheduler::new(SchedulerConfig {
        jobs: 1,
        pull_cost: PullCost {
            round_trip: Duration::from_millis(30),
            fetch: Duration::from_millis(30),
        },
        ..SchedulerConfig::default()
    });
    let handle = sched.submit(vec![diamond_request("d")]);
    handle.cancel();
    let reports = handle.wait();
    assert_eq!(reports[0].status, BuildStatus::Cancelled);
    assert_eq!(
        reports[0].result.error,
        Some(zr_build::BuildError::Cancelled)
    );
    let log = reports[0].result.log_text();
    assert!(
        !log.contains("=== stage left") && !log.contains("=== stage right"),
        "descendant stages must not have started:\n{log}"
    );
}

#[test]
fn fail_fast_stops_releasing_stages_and_cancels_neighbors() {
    // Build 0 (high priority, single worker → runs first) fails in its
    // base stage: its own dependent stage must never be released, and
    // fail_fast must cancel the still-queued neighbor build.
    let failing = "FROM alpine:3.19 AS base\nRUN exit 1\n\
                   FROM alpine:3.19\nCOPY --from=base /nope /nope\n";
    let sched = Scheduler::new(SchedulerConfig {
        jobs: 1,
        fail_fast: true,
        ..SchedulerConfig::default()
    });
    let bad = BuildRequest::new("bad", failing).high_priority();
    let reports = sched.build_many(vec![bad, diamond_request("ok")]);
    assert_eq!(reports[0].status, BuildStatus::Failed);
    assert!(
        matches!(
            reports[0].result.error,
            Some(zr_build::BuildError::RunFailed { status: 1, .. })
        ),
        "{:?}",
        reports[0].result.error
    );
    let log = reports[0].result.log_text();
    assert!(log.contains("=== stage base"), "{log}");
    assert_eq!(
        log.matches("=== stage ").count(),
        1,
        "failed stage must not release its dependent:\n{log}"
    );
    assert_eq!(reports[1].status, BuildStatus::Cancelled);
    assert!(reports[1].seq.is_none());
}

#[test]
fn failing_stage_lets_finished_sibling_keep_stable_layers() {
    // `right` is declared before `left`, so the single worker builds
    // it first; `left` then fails the build. The sibling's layers must
    // survive: a --target=right build afterwards replays fully warm
    // and digests identically to one from a fresh scheduler.
    let df = "FROM alpine:3.19 AS base\nRUN echo shared > /shared\n\
              FROM base AS right\nRUN echo r > /right\n\
              FROM base AS left\nRUN exit 1\n\
              FROM alpine:3.19\n\
              COPY --from=right /right /right\n\
              COPY --from=left /shared /shared\n";
    let sched = scheduler(1);
    let failed = sched.build_many(vec![BuildRequest::new("d", df)]);
    assert_eq!(failed[0].status, BuildStatus::Failed);
    let log = failed[0].result.log_text();
    assert!(log.contains("=== stage right"), "{log}");

    let right_only = || {
        let mut opts = BuildOptions::new("right-only", Mode::None);
        opts.target = Some("right".into());
        BuildRequest::with_options("right-only", df, opts)
    };
    let warm = sched.build_many(vec![right_only()]);
    assert_eq!(
        warm[0].status,
        BuildStatus::Done,
        "{}",
        warm[0].result.log_text()
    );
    assert_eq!(
        warm[0].result.cache.misses,
        0,
        "sibling layers replay warm: {}",
        warm[0].result.log_text()
    );

    let fresh = scheduler(1).build_many(vec![right_only()]);
    assert_eq!(
        warm[0].result.image.as_ref().unwrap().digest(),
        fresh[0].result.image.as_ref().unwrap().digest(),
        "sibling digest is stable across the failed run"
    );
}

#[test]
fn cancel_build_leaves_the_rest_of_the_batch_alone() {
    // Single worker: build 0 occupies it; build 1's root stage is
    // still queued when we cancel just that build.
    let sched = Scheduler::new(SchedulerConfig {
        jobs: 1,
        pull_cost: PullCost {
            round_trip: Duration::from_millis(20),
            fetch: Duration::from_millis(20),
        },
        ..SchedulerConfig::default()
    });
    let handle = sched.submit(vec![diamond_request("keep"), diamond_request("drop")]);
    handle.cancel_build(1);
    let reports = handle.wait();
    assert_eq!(
        reports[0].status,
        BuildStatus::Done,
        "{}",
        reports[0].result.log_text()
    );
    assert_eq!(reports[1].status, BuildStatus::Cancelled);
    assert_eq!(
        reports[1].result.error,
        Some(zr_build::BuildError::Cancelled)
    );
    assert!(reports[1].seq.is_none());
}

#[test]
fn lone_worker_steals_across_priority_classes() {
    // One worker, mixed classes: after draining its own (high) queue
    // it must steal the normal work rather than park, and the handle
    // counts those cross-class pops.
    let requests = vec![
        BuildRequest::new("n0", "FROM alpine:3.19\nRUN true\n"),
        BuildRequest::new("n1", "FROM alpine:3.19\nRUN true\n"),
        BuildRequest::new("urgent", "FROM alpine:3.19\nRUN true\n").high_priority(),
    ];
    let sched = scheduler(1);
    let handle = sched.submit(requests);
    let (mut peak, mut steals) = (0, 0);
    let reports = wait_tracking(handle, &mut peak, &mut steals);
    assert_eq!(reports[2].seq, Some(0), "high priority still first");
    assert!(steals >= 2, "both normal builds were stolen, saw {steals}");
    assert!(reports.iter().all(|r| r.status == BuildStatus::Done));
}

#[test]
fn uniform_class_batches_never_steal() {
    let sched = scheduler(4);
    let handle = sched.submit(vec![diamond_request("a"), diamond_request("b")]);
    let (mut peak, mut steals) = (0, 0);
    let reports = wait_tracking(handle, &mut peak, &mut steals);
    assert!(reports.iter().all(|r| r.status == BuildStatus::Done));
    assert_eq!(steals, 0, "all-normal batches have nothing to steal");
}

#[test]
fn daemon_pool_persists_caches_across_batches() {
    let daemon = Daemon::new(SchedulerConfig {
        jobs: 2,
        ..SchedulerConfig::default()
    });
    let first = daemon.build_many(vec![diamond_request("a")]);
    assert_eq!(
        first[0].status,
        BuildStatus::Done,
        "{}",
        first[0].result.log_text()
    );
    assert_eq!(first[0].result.cache.hits, 0);
    // Second batch, same resident pool: everything replays from the
    // shared layer store the first batch kept warm.
    let second = daemon.build_many(vec![diamond_request("b")]);
    assert_eq!(second[0].status, BuildStatus::Done);
    assert_eq!(
        second[0].result.cache.misses,
        0,
        "{}",
        second[0].result.log_text()
    );
    daemon.shutdown();
}

#[test]
fn daemon_streams_per_stage_logs() {
    let daemon = Daemon::new(SchedulerConfig {
        jobs: 2,
        ..SchedulerConfig::default()
    });
    let handle = daemon.submit(vec![diamond_request("d")]);
    let rx = handle.subscribe(0);
    let mut stages = Vec::new();
    let mut done = None;
    // Late subscription replays anything already streamed, so this
    // loop always sees the complete history ending in Done.
    for event in rx.iter() {
        match event {
            LogEvent::Stage { stage, lines, .. } => {
                assert!(!lines.is_empty(), "stage {stage} streamed an empty chunk");
                stages.push(stage);
            }
            LogEvent::Done { status, .. } => {
                done = Some(status);
                break;
            }
        }
    }
    assert_eq!(done, Some(BuildStatus::Done));
    for expected in ["base", "left", "right"] {
        assert!(
            stages.iter().any(|s| s == expected),
            "missing stage chunk {expected}: {stages:?}"
        );
    }
    let reports = handle.wait();
    assert_eq!(reports[0].status, BuildStatus::Done);
    daemon.shutdown();
}
