//! Scheduler behavior under injected worker faults: panic isolation,
//! retry-once degradation, deterministic dependent handling, and
//! daemon survival of a poisoned batch.
//!
//! Every test installs a [`zr_fault::FaultPlan`]; the returned guard
//! holds the fault plane's process-wide serial lock, so these tests
//! never see each other's injections (fault-free baselines are built
//! under an *empty* plan for the same reason).

use zeroroot_core::Mode;
use zr_build::BuildOptions;
use zr_fault::{points, FaultPlan};
use zr_sched::{BuildRequest, BuildStatus, Daemon, Scheduler, SchedulerConfig};

/// The canonical diamond from the DAG suite: two independent middle
/// stages off one base, joined by `COPY --from=`.
const DIAMOND: &str = "FROM alpine:3.19 AS base\nRUN echo shared > /shared\n\
                       FROM base AS left\nRUN apk add sl && echo l > /left\n\
                       FROM base AS right\nRUN apk add fakeroot && echo r > /right\n\
                       FROM alpine:3.19\n\
                       COPY --from=left /left /left\n\
                       COPY --from=right /right /right\n\
                       COPY --from=base /shared /shared\n";

fn diamond_request(id: &str) -> BuildRequest {
    BuildRequest::with_options(id, DIAMOND, BuildOptions::new(id, Mode::Seccomp))
}

fn scheduler(jobs: usize) -> Scheduler {
    Scheduler::new(SchedulerConfig {
        jobs,
        ..SchedulerConfig::default()
    })
}

/// The serial, fault-free diamond digest for `id` (the tag lands in
/// the image metadata, so the baseline must share it; built under an
/// empty plan so a concurrently running fault test cannot inject).
fn clean_digest(id: &str) -> String {
    let _guard = zr_fault::install(&FaultPlan::new());
    let reports = scheduler(1).build_many(vec![diamond_request(id)]);
    assert_eq!(reports[0].status, BuildStatus::Done);
    reports[0].result.image.as_ref().unwrap().digest()
}

#[test]
fn a_single_worker_panic_degrades_but_completes_the_build() {
    let want = clean_digest("d");
    let _guard = zr_fault::install(&FaultPlan::new().counted(points::SCHED_STAGE_PANIC, 1, 0, 0));
    let reports = scheduler(2).build_many(vec![diamond_request("d")]);
    let r = &reports[0];
    assert_eq!(r.status, BuildStatus::Degraded, "{}", r.result.log_text());
    assert!(r.result.success);
    assert!(r.result.degraded);
    assert_eq!(
        r.result.image.as_ref().unwrap().digest(),
        want,
        "a panic-retried build must digest identically to a clean one"
    );
    let c = zr_fault::counters();
    assert_eq!(c.injected, 1);
    assert_eq!(c.panics_retried, 1);
}

#[test]
fn a_repeatedly_panicking_stage_fails_only_its_own_build() {
    // One worker and a high-priority victim: both injected panics land
    // on the victim's base stage (first = retry, second = failure),
    // its dependent stages are never released, and the bystander then
    // builds clean on the same worker.
    let want = clean_digest("bystander");
    let _guard = zr_fault::install(&FaultPlan::new().counted(points::SCHED_STAGE_PANIC, 2, 0, 0));
    let victim = diamond_request("victim").high_priority();
    let bystander = diamond_request("bystander");
    let reports = scheduler(1).build_many(vec![victim, bystander]);

    let v = &reports[0];
    assert_eq!(v.status, BuildStatus::Failed, "{}", v.result.log_text());
    assert!(!v.result.success);
    let log = v.result.log_text();
    assert!(
        !log.contains("=== stage left") && !log.contains("=== stage right"),
        "a failed base must not release dependents:\n{log}"
    );

    let b = &reports[1];
    assert_eq!(b.status, BuildStatus::Done, "{}", b.result.log_text());
    assert_eq!(
        b.result.image.as_ref().unwrap().digest(),
        want,
        "the bystander build must be untouched by its neighbor's panics"
    );
    let c = zr_fault::counters();
    assert_eq!(c.injected, 2);
    assert_eq!(c.panics_retried, 1, "only the first panic is retried");
}

#[test]
fn a_stalled_worker_delays_but_does_not_fail_the_build() {
    let _guard = zr_fault::install(&FaultPlan::new().counted(points::SCHED_STAGE_STALL, 1, 0, 30));
    let start = std::time::Instant::now();
    let reports = scheduler(2).build_many(vec![diamond_request("slow")]);
    let r = &reports[0];
    assert_eq!(r.status, BuildStatus::Done, "{}", r.result.log_text());
    assert!(
        start.elapsed() >= std::time::Duration::from_millis(30),
        "the injected stall must actually park a worker"
    );
    assert_eq!(zr_fault::counters().injected, 1);
}

#[test]
fn the_daemon_survives_a_poisoned_batch_and_accepts_the_next_submit() {
    let want = clean_digest("healthy");
    let daemon = Daemon::new(SchedulerConfig {
        jobs: 2,
        ..SchedulerConfig::default()
    });
    {
        // Enough fires that the victim's base stage panics on its
        // retry too: the whole first batch fails.
        let _guard =
            zr_fault::install(&FaultPlan::new().counted(points::SCHED_STAGE_PANIC, 8, 0, 0));
        let poisoned = daemon.build_many(vec![diamond_request("poisoned")]);
        assert_eq!(poisoned[0].status, BuildStatus::Failed);
    }
    // Plan uninstalled: the resident pool must take the next batch and
    // build it fault-free (warm layers from the failed batch are fine —
    // the base stage never completed, so the digest check is real).
    let healthy = daemon.build_many(vec![diamond_request("healthy")]);
    assert_eq!(
        healthy[0].status,
        BuildStatus::Done,
        "{}",
        healthy[0].result.log_text()
    );
    assert_eq!(healthy[0].result.image.as_ref().unwrap().digest(), want);
    daemon.shutdown();
}

#[test]
fn cancellation_during_a_panic_retry_is_deterministic() {
    // The panic plan keeps the base stage bouncing; cancelling the
    // batch while it bounces must still end every build terminal (the
    // requeued task is reaped by the cancellation path, not lost).
    let _guard =
        zr_fault::install(&FaultPlan::new().counted(points::SCHED_STAGE_PANIC, 1000, 0, 0));
    let sched = scheduler(1);
    let handle = sched.submit(vec![diamond_request("spin")]);
    handle.cancel();
    let reports = handle.wait();
    assert!(
        matches!(
            reports[0].status,
            BuildStatus::Cancelled | BuildStatus::Failed
        ),
        "cancelled-while-retrying build must land terminal, got {}",
        reports[0].status
    );
}

#[test]
fn a_poisoned_submit_is_absorbed_without_killing_resident_workers() {
    let want = clean_digest("after-poison");
    let _guard =
        zr_fault::install(&FaultPlan::new().counted(points::SCHED_DAEMON_SUBMIT_POISON, 1, 0, 0));
    let daemon = Daemon::new(SchedulerConfig {
        jobs: 2,
        ..SchedulerConfig::default()
    });
    // The first submit panics inside the batch-queue critical section,
    // poisoning the queue mutex. The daemon absorbs the panic, retries
    // the enqueue, and the batch still runs to completion.
    let first = daemon.build_many(vec![diamond_request("poisoned-submit")]);
    assert_eq!(
        first[0].status,
        BuildStatus::Done,
        "{}",
        first[0].result.log_text()
    );
    // The resident pool outlives the poisoned mutex: a second batch on
    // the same workers builds clean and digests like a fault-free run.
    let second = daemon.build_many(vec![diamond_request("after-poison")]);
    assert_eq!(second[0].status, BuildStatus::Done);
    assert_eq!(second[0].result.image.as_ref().unwrap().digest(), want);
    let c = zr_fault::counters();
    assert_eq!(c.injected, 1);
    assert!(c.retries >= 1, "the absorbed submit counts as a retry: {c}");
    daemon.shutdown();
}

#[test]
fn a_stalled_submit_delays_admission_but_loses_nothing() {
    let _guard =
        zr_fault::install(&FaultPlan::new().counted(points::SCHED_DAEMON_SUBMIT_STALL, 1, 0, 30));
    let daemon = Daemon::new(SchedulerConfig {
        jobs: 2,
        ..SchedulerConfig::default()
    });
    let start = std::time::Instant::now();
    let reports = daemon.build_many(vec![diamond_request("slow-submit")]);
    assert_eq!(
        reports[0].status,
        BuildStatus::Done,
        "{}",
        reports[0].result.log_text()
    );
    assert!(
        start.elapsed() >= std::time::Duration::from_millis(30),
        "the injected stall must actually delay admission"
    );
    daemon.shutdown();
}
