//! # zr-bench — shared helpers for the benchmark harness
//!
//! Each Criterion bench regenerates one of the paper's artifacts (see
//! `EXPERIMENTS.md`). The helpers here keep workload construction out of
//! the bench bodies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

use zeroroot_core::{make, Mode, PrepareEnv, RootEmulation};
use zr_build::{BuildOptions, BuildResult, Builder, CacheMode};
use zr_image::{Distro, Image, ImageMeta, PullCost};
use zr_kernel::{ContainerConfig, ContainerType, Kernel, Pid};
use zr_sched::{BuildRequest, Scheduler, SchedulerConfig};
use zr_vfs::fs::Fs;

/// Figure 1a's Dockerfile.
pub const FIG1A: &str = "FROM alpine:3.19\nRUN apk add sl\n";
/// Figure 1b / Figure 2's Dockerfile.
pub const FIG1B: &str = "FROM centos:7\nRUN yum install -y openssh\n";
/// The §5 apt build (shell form: injection applies).
pub const APT: &str = "FROM debian:12\nRUN apt-get install -y hello\n";

/// Build `dockerfile` under `mode` on a fresh kernel; returns the result
/// and the kernel for counter inspection.
pub fn build_once(dockerfile: &str, mode: Mode) -> (BuildResult, Kernel) {
    let mut kernel = Kernel::default_kernel();
    let mut builder = Builder::new();
    let result = builder.build(&mut kernel, dockerfile, &BuildOptions::new("bench", mode));
    (result, kernel)
}

/// A builder whose layer cache has been warmed with one cold build of
/// `dockerfile`, plus the kernel it ran on — the starting point for
/// warm-rebuild measurements.
pub fn warmed(dockerfile: &str, mode: Mode) -> (Builder, Kernel, BuildOptions) {
    let mut kernel = Kernel::default_kernel();
    let mut builder = Builder::new();
    let opts = BuildOptions::new("bench", mode);
    let cold = builder.build(&mut kernel, dockerfile, &opts);
    assert!(cold.success, "warming build failed:\n{}", cold.log_text());
    (builder, kernel, opts)
}

/// The pull cost the scheduler workloads model: a small manifest round
/// trip per pull plus a larger blob transfer per pull-through miss.
/// Sleep-based, so concurrent workers genuinely overlap it — the
/// speedup the throughput gate measures survives a single-core CI box.
pub fn bench_pull_cost() -> PullCost {
    PullCost {
        round_trip: Duration::from_millis(3),
        fetch: Duration::from_millis(20),
    }
}

/// `n` *distinct* Dockerfiles cycling the catalog's bases, each with a
/// unique cheap RUN chain: a scheduler workload where no cross-build
/// layer sharing is possible, so it measures scheduling and registry
/// contention rather than cache wins.
pub fn distinct_dockerfiles(n: usize) -> Vec<String> {
    let bases = ["alpine:3.19", "centos:7", "debian:12", "fedora:40"];
    (0..n)
        .map(|i| {
            format!(
                "FROM {}\nRUN echo step-{i} > /s{i}\nRUN touch /done-{i}\n",
                bases[i % bases.len()]
            )
        })
        .collect()
}

/// A diamond multi-stage Dockerfile: base → left + right (independent,
/// heavy enough to measurably overlap) → final joined by
/// `COPY --from=`, plus one stage nothing references. The unreachable
/// stage is the pruning probe: it is the only `centos:7` user, so the
/// registry's fetch counter stays at one (alpine) unless it runs.
pub const DIAMOND: &str = "FROM alpine:3.19 AS base\nRUN echo shared > /shared\n\
                           FROM base AS left\nRUN apk add sl && echo l > /left\n\
                           FROM base AS right\nRUN apk add fakeroot && echo r > /right\n\
                           FROM centos:7 AS unused\nRUN yum install -y openssh\n\
                           FROM base AS final\n\
                           COPY --from=left /left /left\n\
                           COPY --from=right /right /right\n";

/// An `n`-stage linear chain (each stage `FROM` the previous): no two
/// stages can ever overlap — the DAG scheduler's floor, where extra
/// workers must buy nothing.
pub fn linear_stages(n: usize) -> String {
    let mut df = String::from("FROM alpine:3.19 AS s0\nRUN echo 0 > /s0\n");
    for i in 1..n {
        df.push_str(&format!("FROM s{} AS s{i}\nRUN echo {i} > /s{i}\n", i - 1));
    }
    df
}

/// `k` independent middle stages cycling all four catalog bases (each
/// pays its own pull, so workers overlap the modeled latency), joined
/// by a final stage copying one file from every middle — maximum
/// stage-level fan-out from a single request.
pub fn wide_stages(k: usize) -> String {
    let bases = ["alpine:3.19", "centos:7", "debian:12", "fedora:40"];
    let mut df = String::new();
    for i in 0..k {
        df.push_str(&format!(
            "FROM {} AS w{i}\nRUN echo {i} > /w{i}\n",
            bases[i % bases.len()]
        ));
    }
    df.push_str("FROM alpine:3.19\n");
    for i in 0..k {
        df.push_str(&format!("COPY --from=w{i} /w{i} /w{i}\n"));
    }
    df
}

/// Wall-clock one multi-stage build on a fresh scheduler with `jobs`
/// workers; returns the elapsed time and the target image digest. The
/// DAG layer splits the request into per-stage tasks, so worker counts
/// above one overlap independent stages of this single build.
pub fn timed_dag(jobs: usize, dockerfile: &str, cache: CacheMode) -> (Duration, String) {
    let sched = bench_scheduler(jobs);
    let requests = sched_requests(&[dockerfile.to_string()], cache);
    let t0 = std::time::Instant::now();
    let reports = sched.build_many(requests);
    let elapsed = t0.elapsed();
    let report = &reports[0];
    assert!(report.result.success, "{}", report.result.log_text());
    let digest = report.result.image.as_ref().expect("built image").digest();
    (elapsed, digest)
}

/// Scheduler requests over `dockerfiles` under `--force=seccomp` with
/// the given cache policy, ids/tags `b0..bN` in input order.
pub fn sched_requests(dockerfiles: &[String], cache: CacheMode) -> Vec<BuildRequest> {
    dockerfiles
        .iter()
        .enumerate()
        .map(|(i, df)| {
            let id = format!("b{i}");
            let options = BuildOptions {
                cache,
                ..BuildOptions::new(&id, Mode::Seccomp)
            };
            BuildRequest::with_options(&id, df, options)
        })
        .collect()
}

/// A fresh scheduler with `jobs` workers and the bench pull cost —
/// fresh registry and layer store, so repeated measurements start cold.
pub fn bench_scheduler(jobs: usize) -> Scheduler {
    Scheduler::new(SchedulerConfig {
        jobs,
        pull_cost: bench_pull_cost(),
        ..SchedulerConfig::default()
    })
}

/// Wall-clock one batch on a fresh scheduler; returns the elapsed time
/// and the per-build image digests (input order). Asserts every build
/// succeeded.
pub fn timed_batch(
    jobs: usize,
    dockerfiles: &[String],
    cache: CacheMode,
) -> (Duration, Vec<String>) {
    let sched = bench_scheduler(jobs);
    let t0 = std::time::Instant::now();
    let reports = sched.build_many(sched_requests(dockerfiles, cache));
    let elapsed = t0.elapsed();
    let digests = reports
        .iter()
        .map(|r| {
            assert!(r.result.success, "{}", r.result.log_text());
            r.result.image.as_ref().expect("successful build").digest()
        })
        .collect();
    (elapsed, digests)
}

/// A synthetic base image for the snapshot/digest scaling grid:
/// `files` regular files of `file_bytes` each (distinct contents, so
/// nothing dedups away), spread across `/data/dNN/` directories.
pub fn synthetic_image(files: usize, file_bytes: usize) -> Image {
    let root = zr_vfs::Access::root();
    let mut fs = Fs::new();
    for i in 0..files {
        let dir = format!("/data/d{:02}", i % 16);
        fs.mkdir_p(&dir, 0o755).expect("dir");
        let mut data = vec![(i % 251) as u8; file_bytes];
        let stamp = format!("file-{i}");
        let n = stamp.len().min(file_bytes);
        data[..n].copy_from_slice(&stamp.as_bytes()[..n]);
        fs.write_file(&format!("{dir}/f{i}"), 0o644, data, &root)
            .expect("file");
    }
    Image {
        meta: ImageMeta {
            name: "synthetic".into(),
            tag: format!("{files}x{file_bytes}"),
            distro: Distro::Scratch,
            libc: String::new(),
            env: vec![],
            binaries: vec![],
        },
        fs,
    }
}

/// One warm snapshot-and-digest step on a digested image: clone the
/// filesystem (the per-instruction snapshot), change one file, and
/// digest the result. This is the per-instruction hot path the CoW
/// refactor makes O(changes); the cold baseline is
/// [`Image::digest_uncached`] on the same image.
pub fn snapshot_one_change(image: &Image, edit: u64) -> String {
    let root = zr_vfs::Access::root();
    let mut next = Image {
        meta: image.meta.clone(),
        fs: image.fs.clone(),
    };
    next.fs
        .write_file(
            "/data/d00/f0",
            0o644,
            format!("edit-{edit}").into_bytes(),
            &root,
        )
        .expect("edit");
    next.digest()
}

/// A minimal armed container for microbenchmarks: returns kernel, pid and
/// the strategy (so teardown can run).
pub fn armed(mode: Mode) -> (Kernel, Pid, Box<dyn RootEmulation>) {
    let mut kernel = Kernel::default_kernel();
    let mut image = Fs::new();
    image.mkdir_p("/usr/bin", 0o755).expect("dir");
    let root = zr_vfs::Access::root();
    image
        .write_file("/usr/bin/fakeroot", 0o755, b"\x7fELF".to_vec(), &root)
        .expect("fakeroot marker");
    for ino in 1..=image.inode_count() as u64 {
        image.set_owner(ino, 1000, 1000).expect("chown");
    }
    let c = kernel
        .container_create(
            Kernel::HOST_USER_PID,
            ContainerConfig {
                ctype: ContainerType::TypeIII,
                image,
            },
        )
        .expect("container");
    let strategy = make(mode);
    let env = PrepareEnv {
        fakeroot_in_image: true,
        image_libc: "glibc-2.36".into(),
        host_libc: "glibc-2.36".into(),
    };
    strategy
        .prepare(&mut kernel, c.init_pid, &env)
        .expect("arm");
    (kernel, c.init_pid, strategy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build() {
        let (r, k) = build_once(FIG1A, Mode::None);
        assert!(r.success);
        assert!(k.counters.syscalls > 0);
    }

    #[test]
    fn helpers_arm() {
        let (mut k, pid, strategy) = armed(Mode::Seccomp);
        assert_eq!(k.process(pid).seccomp.len(), 1);
        strategy.teardown(&mut k);
    }

    #[test]
    fn helpers_warm() {
        let (mut builder, mut kernel, opts) = warmed(FIG1B, Mode::Seccomp);
        let warm = builder.build(&mut kernel, FIG1B, &opts);
        assert!(warm.success);
        assert_eq!(warm.cache.misses, 0, "warm rebuild must be all hits");
    }
}
