//! # zr-bench — shared helpers for the benchmark harness
//!
//! Each Criterion bench regenerates one of the paper's artifacts (see
//! `EXPERIMENTS.md`). The helpers here keep workload construction out of
//! the bench bodies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use zeroroot_core::{make, Mode, PrepareEnv, RootEmulation};
use zr_build::{BuildOptions, BuildResult, Builder};
use zr_kernel::{ContainerConfig, ContainerType, Kernel, Pid};
use zr_vfs::fs::Fs;

/// Figure 1a's Dockerfile.
pub const FIG1A: &str = "FROM alpine:3.19\nRUN apk add sl\n";
/// Figure 1b / Figure 2's Dockerfile.
pub const FIG1B: &str = "FROM centos:7\nRUN yum install -y openssh\n";
/// The §5 apt build (shell form: injection applies).
pub const APT: &str = "FROM debian:12\nRUN apt-get install -y hello\n";

/// Build `dockerfile` under `mode` on a fresh kernel; returns the result
/// and the kernel for counter inspection.
pub fn build_once(dockerfile: &str, mode: Mode) -> (BuildResult, Kernel) {
    let mut kernel = Kernel::default_kernel();
    let mut builder = Builder::new();
    let result = builder.build(&mut kernel, dockerfile, &BuildOptions::new("bench", mode));
    (result, kernel)
}

/// A builder whose layer cache has been warmed with one cold build of
/// `dockerfile`, plus the kernel it ran on — the starting point for
/// warm-rebuild measurements.
pub fn warmed(dockerfile: &str, mode: Mode) -> (Builder, Kernel, BuildOptions) {
    let mut kernel = Kernel::default_kernel();
    let mut builder = Builder::new();
    let opts = BuildOptions::new("bench", mode);
    let cold = builder.build(&mut kernel, dockerfile, &opts);
    assert!(cold.success, "warming build failed:\n{}", cold.log_text());
    (builder, kernel, opts)
}

/// A minimal armed container for microbenchmarks: returns kernel, pid and
/// the strategy (so teardown can run).
pub fn armed(mode: Mode) -> (Kernel, Pid, Box<dyn RootEmulation>) {
    let mut kernel = Kernel::default_kernel();
    let mut image = Fs::new();
    image.mkdir_p("/usr/bin", 0o755).expect("dir");
    let root = zr_vfs::Access::root();
    image
        .write_file("/usr/bin/fakeroot", 0o755, b"\x7fELF".to_vec(), &root)
        .expect("fakeroot marker");
    for ino in 1..=image.inode_count() as u64 {
        image.set_owner(ino, 1000, 1000).expect("chown");
    }
    let c = kernel
        .container_create(
            Kernel::HOST_USER_PID,
            ContainerConfig {
                ctype: ContainerType::TypeIII,
                image,
            },
        )
        .expect("container");
    let strategy = make(mode);
    let env = PrepareEnv {
        fakeroot_in_image: true,
        image_libc: "glibc-2.36".into(),
        host_libc: "glibc-2.36".into(),
    };
    strategy
        .prepare(&mut kernel, c.init_pid, &env)
        .expect("arm");
    (kernel, c.init_pid, strategy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build() {
        let (r, k) = build_once(FIG1A, Mode::None);
        assert!(r.success);
        assert!(k.counters.syscalls > 0);
    }

    #[test]
    fn helpers_arm() {
        let (mut k, pid, strategy) = armed(Mode::Seccomp);
        assert_eq!(k.process(pid).seccomp.len(), 1);
        strategy.teardown(&mut k);
    }

    #[test]
    fn helpers_warm() {
        let (mut builder, mut kernel, opts) = warmed(FIG1B, Mode::Seccomp);
        let warm = builder.build(&mut kernel, FIG1B, &opts);
        assert!(warm.success);
        assert_eq!(warm.cache.misses, 0, "warm rebuild must be all hits");
    }
}
