//! Regenerate T1: the paper's §5 filter table — 29 syscalls in four
//! classes, with per-architecture numbers (Charliecloud's source-code
//! table, which the paper describes in prose).
//!
//! ```sh
//! cargo run -p zr-bench --bin table-syscalls
//! ```

use zr_syscalls::filtered::{filtered_on, FilterClass, FILTERED};
use zr_syscalls::Arch;

fn main() {
    println!("T1 — the 29 filtered system calls (§5)\n");

    let classes = [
        (FilterClass::FileOwnership, "Class 1: file ownership"),
        (
            FilterClass::IdentityCaps,
            "Class 2: user/group/capability manipulation",
        ),
        (
            FilterClass::MknodDevice,
            "Class 3: mknod/mknodat (device files only)",
        ),
        (FilterClass::SelfTest, "Class 4: self-test"),
    ];

    for (class, title) in classes {
        let members: Vec<_> = FILTERED.iter().filter(|f| f.class == class).collect();
        println!("{title} ({} syscalls)", members.len());
        print!("  {:<14}", "syscall");
        for arch in Arch::ALL {
            print!(" {:>8}", arch.name());
        }
        println!();
        for f in members {
            print!("  {:<14}", f.sysno.name());
            for arch in Arch::ALL {
                match f.sysno.number(arch) {
                    Some(nr) => print!(" {nr:>8}"),
                    None => print!(" {:>8}", "-"),
                }
            }
            println!();
        }
        println!();
    }

    println!("Per-architecture coverage (footnote 7: not all syscalls exist everywhere):");
    for arch in Arch::ALL {
        let present = filtered_on(arch);
        println!(
            "  {:<8} {:>2} of {} filtered syscalls",
            arch.name(),
            present.len(),
            FILTERED.len()
        );
    }

    let total = FILTERED.len();
    assert_eq!(total, 29, "the paper's count");
    println!("\ntotal filtered syscalls: {total} (7 + 19 + 2 + 1, as published)");
}
