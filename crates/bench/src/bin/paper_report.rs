//! Run every experiment in EXPERIMENTS.md and print a paper-vs-measured
//! report. This is the artifact-evaluation entry point:
//!
//! ```sh
//! cargo run -p zr-bench --bin paper-report [-- --json[=PATH]]
//! ```
//!
//! With `--json`, the gate verdicts and the numeric bench metrics are
//! additionally written to `BENCH_10.json` (or `PATH`) so CI can upload
//! them and the perf trajectory is tracked across PRs.

use zeroroot_core::Mode;
use zr_bench::{
    bench_pull_cost, bench_scheduler, build_once, distinct_dockerfiles, sched_requests,
    snapshot_one_change, synthetic_image, timed_batch, APT, DIAMOND, FIG1A, FIG1B,
};
use zr_build::CacheMode;
use zr_sched::{BuildStatus, Scheduler, SchedulerConfig};
use zr_syscalls::filtered::{filtered_on, FILTERED};
use zr_syscalls::Arch;

struct Check {
    id: &'static str,
    paper: &'static str,
    measured: String,
    pass: bool,
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the report as machine-readable JSON (no serde offline; the
/// structure is flat enough to write by hand).
fn render_json(checks: &[Check], metrics: &[(String, f64)]) -> String {
    let mut out = String::from("{\n  \"report\": \"zeroroot-paper-report\",\n  \"checks\": [\n");
    for (i, c) in checks.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"pass\": {}, \"paper\": \"{}\", \"measured\": \"{}\"}}{}\n",
            json_escape(c.id),
            c.pass,
            json_escape(c.paper),
            json_escape(&c.measured),
            if i + 1 == checks.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"metrics\": {\n");
    for (i, (name, value)) in metrics.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {}{}\n",
            json_escape(name),
            if value.is_finite() {
                format!("{value}")
            } else {
                "null".to_string()
            },
            if i + 1 == metrics.len() { "" } else { "," }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// Wall-clock one invocation of `f`.
fn timed<T>(mut f: impl FnMut() -> T) -> (std::time::Duration, T) {
    let t0 = std::time::Instant::now();
    let out = f();
    (t0.elapsed(), out)
}

/// Best-of-N measurement: run `f` N times and keep the run with the
/// smallest elapsed time. One timing policy for every gate, so the
/// C-cache/S-sched/P-snap numbers stay comparable and a noisy runner
/// cannot fail a ratio gate spuriously.
fn best_of<T>(n: u32, mut f: impl FnMut() -> (std::time::Duration, T)) -> (std::time::Duration, T) {
    (0..n)
        .map(|_| f())
        .min_by_key(|(elapsed, _)| *elapsed)
        .expect("n > 0")
}

fn main() {
    let json_path = std::env::args().skip(1).find_map(|a| {
        if a == "--json" {
            Some("BENCH_10.json".to_string())
        } else {
            a.strip_prefix("--json=").map(str::to_string)
        }
    });
    let mut checks: Vec<Check> = Vec::new();
    let mut metrics: Vec<(String, f64)> = Vec::new();

    // ---- F1a ---------------------------------------------------------
    let (r, k) = build_once(FIG1A, Mode::None);
    let priv_calls = k.trace.stats().privileged;
    checks.push(Check {
        id: "F1a",
        paper: "alpine apk build succeeds with --force=none, no privileged syscalls",
        measured: format!("success={}, privileged syscalls={priv_calls}", r.success),
        pass: r.success && priv_calls == 0,
    });

    // ---- F1b ---------------------------------------------------------
    let (r, _) = build_once(FIG1B, Mode::None);
    let has_chown_err = r.log_text().contains("cpio: chown");
    checks.push(Check {
        id: "F1b",
        paper: "centos yum build fails with --force=none on 'cpio: chown'",
        measured: format!("success={}, cpio-chown-in-log={has_chown_err}", r.success),
        pass: !r.success && has_chown_err,
    });

    // ---- F2 -----------------------------------------------------------
    let (r, k) = build_once(FIG1B, Mode::Seccomp);
    let faked = k.trace.stats().faked;
    let modified = r.modified_run_instructions;
    checks.push(Check {
        id: "F2",
        paper: "same build succeeds with --force=seccomp; 'modified 0 RUN instructions'",
        measured: format!("success={}, faked={faked}, modified={modified}", r.success),
        pass: r.success && faked > 0 && modified == 0,
    });

    // ---- T1 -----------------------------------------------------------
    let counts = (
        FILTERED
            .iter()
            .filter(|f| f.class == zr_syscalls::FilterClass::FileOwnership)
            .count(),
        FILTERED
            .iter()
            .filter(|f| f.class == zr_syscalls::FilterClass::IdentityCaps)
            .count(),
        FILTERED
            .iter()
            .filter(|f| f.class == zr_syscalls::FilterClass::MknodDevice)
            .count(),
        FILTERED
            .iter()
            .filter(|f| f.class == zr_syscalls::FilterClass::SelfTest)
            .count(),
    );
    checks.push(Check {
        id: "T1",
        paper: "filter classes: 7 ownership + 19 identity/caps + 2 mknod + 1 self-test = 29",
        measured: format!("{counts:?}, total={}", FILTERED.len()),
        pass: counts == (7, 19, 2, 1) && FILTERED.len() == 29,
    });

    // ---- E-apt ---------------------------------------------------------
    let (r_inj, _) = build_once(APT, Mode::Seccomp);
    let apt_exec = "FROM debian:12\nRUN [\"/usr/bin/apt-get\", \"install\", \"-y\", \"hello\"]\n";
    let (r_raw, _) = build_once(apt_exec, Mode::Seccomp);
    let (r_ids, _) = build_once(apt_exec, Mode::SeccompIdConsistent);
    checks.push(Check {
        id: "E-apt",
        paper: "apt fails under zero-consistency without workaround; injected option fixes it; uid/gid consistency retires it",
        measured: format!(
            "raw={}, injected={} (modified {}), id-consistent={}",
            r_raw.success, r_inj.success, r_inj.modified_run_instructions, r_ids.success
        ),
        pass: !r_raw.success && r_inj.success && r_inj.modified_run_instructions == 1 && r_ids.success,
    });

    // ---- E-types ---------------------------------------------------------
    use zr_build::{BuildOptions, Builder};
    use zr_kernel::{ContainerType, Kernel};
    let mut results = Vec::new();
    for ctype in [
        ContainerType::TypeI,
        ContainerType::TypeII,
        ContainerType::TypeIII,
    ] {
        let mut kernel = Kernel::default_kernel();
        let mut builder = Builder::new();
        let mut opts = BuildOptions::new("t", Mode::None);
        opts.container_type = ctype;
        results.push(builder.build(&mut kernel, FIG1A, &opts).success);
    }
    checks.push(Check {
        id: "E-types",
        paper: "unprivileged setup works only for Type III (§2)",
        measured: format!("I={}, II={}, III={}", results[0], results[1], results[2]),
        pass: !results[0] && !results[1] && results[2],
    });

    // ---- E-compat ---------------------------------------------------------
    let static_df = "FROM alpine:3.19\nRUN apk add fakeroot && touch /f && chown 55:55 /f\n";
    let (r_fr, _) = build_once(static_df, Mode::Fakeroot);
    let (r_sc, _) = build_once(static_df, Mode::Seccomp);
    let (r_pr, _) = build_once(static_df, Mode::Proot);
    checks.push(Check {
        id: "E-compat",
        paper: "static binaries break LD_PRELOAD fakeroot but not seccomp/ptrace (§6.3)",
        measured: format!(
            "fakeroot={}, seccomp={}, proot={}",
            r_fr.success, r_sc.success, r_pr.success
        ),
        pass: !r_fr.success && r_sc.success && r_pr.success,
    });

    // ---- E-ovh -------------------------------------------------------------
    let (_, k_sc) = build_once(FIG1B, Mode::Seccomp);
    let (_, k_pr) = build_once(FIG1B, Mode::Proot);
    let (_, k_fr) = build_once(FIG1B, Mode::Fakeroot);
    let sc_cse = k_sc.counters.context_switch_equivalents();
    let pr_cse = k_pr.counters.context_switch_equivalents();
    let fr_cse = k_fr.counters.context_switch_equivalents();
    checks.push(Check {
        id: "E-ovh",
        paper: "seccomp: no userspace hops; ptrace/daemon methods pay context switches (§6.1)",
        measured: format!(
            "context-switch-equivalents: seccomp={sc_cse}, proot={pr_cse}, fakeroot={fr_cse}; \
             seccomp bpf-insns={}",
            k_sc.counters.bpf_instructions
        ),
        pass: sc_cse == 0 && pr_cse > 0 && fr_cse > 0 && k_sc.counters.bpf_instructions > 0,
    });

    // ---- E-fw ---------------------------------------------------------------
    let unmin = "FROM debian:12\nRUN /usr/sbin/unminimize\n";
    let (r_unmin_sc, _) = build_once(unmin, Mode::Seccomp);
    let (r_unmin_pr, _) = build_once(unmin, Mode::Proot);
    checks.push(Check {
        id: "E-fw",
        paper: "verifying tools (unminimize) are the known exceptions of §6",
        measured: format!(
            "seccomp={}, proot={}",
            r_unmin_sc.success, r_unmin_pr.success
        ),
        pass: !r_unmin_sc.success && r_unmin_pr.success,
    });

    // ---- E-arch ----------------------------------------------------------------
    let mut all_ok = true;
    let mut coverage = String::new();
    for arch in Arch::ALL {
        let mut kernel = Kernel::new(zr_kernel::KernelConfig {
            arch,
            ..Default::default()
        });
        let mut builder = Builder::new();
        let ok = builder
            .build(&mut kernel, FIG1B, &BuildOptions::new("t", Mode::Seccomp))
            .success;
        all_ok &= ok;
        coverage.push_str(&format!("{}:{} ", arch.name(), filtered_on(arch).len()));
    }
    checks.push(Check {
        id: "E-arch",
        paper: "one filter covers six architectures (filtered-syscall counts vary, fn 7)",
        measured: format!("fig2 ok on all={all_ok}; coverage {}", coverage.trim_end()),
        pass: all_ok,
    });

    // ---- C-cache -----------------------------------------------------------------
    // The cache regression gate: a warm rebuild of the Figure 2
    // Dockerfile must execute *zero* instructions — no spawns, no new
    // pulls, every layer a hit — and come back measurably faster.
    let mut kernel = Kernel::default_kernel();
    let mut builder = Builder::new();
    let opts = BuildOptions::new("cache", Mode::Seccomp);
    let t0 = std::time::Instant::now();
    let cold = builder.build(&mut kernel, FIG1B, &opts);
    let cold_time = t0.elapsed();
    let spawns_before = kernel.counters.spawns;
    let pulls_before = builder.registry.pulls();
    let t1 = std::time::Instant::now();
    let warm = builder.build(&mut kernel, FIG1B, &opts);
    let warm_time = t1.elapsed();
    let no_exec =
        kernel.counters.spawns == spawns_before && builder.registry.pulls() == pulls_before;
    let speedup = cold_time.as_secs_f64() / warm_time.as_secs_f64().max(1e-9);
    metrics.push(("c_cache.cold_ms".into(), cold_time.as_secs_f64() * 1e3));
    metrics.push(("c_cache.warm_ms".into(), warm_time.as_secs_f64() * 1e3));
    metrics.push(("c_cache.speedup".into(), speedup));
    checks.push(Check {
        id: "C-cache",
        paper:
            "warm rebuild replays every layer and executes no instruction (ch-image build cache)",
        measured: format!(
            "cold: {} in {cold_time:.2?}; warm: {} in {warm_time:.2?} ({speedup:.0}x), \
             executed-anything={}",
            cold.cache, warm.cache, !no_exec
        ),
        pass: cold.success
            && warm.success
            && warm.cache.hits == 2
            && warm.cache.misses == 0
            && no_exec,
    });

    // ---- S-sched -----------------------------------------------------------------
    // The scheduler gate: 8 distinct Dockerfiles, --no-cache, modeled
    // registry latency. 8 workers must (a) produce exactly the digests
    // the serial build produces and (b) finish the batch at >= 2x the
    // single-worker throughput (workers overlap pull waits, so this
    // holds even on a single-core runner). Best-of-3 per worker count.
    let dockerfiles = distinct_dockerfiles(8);
    let (t_serial, d_serial) = best_of(3, || timed_batch(1, &dockerfiles, CacheMode::Disabled));
    let (t_parallel, d_parallel) = best_of(3, || timed_batch(8, &dockerfiles, CacheMode::Disabled));
    let speedup = t_serial.as_secs_f64() / t_parallel.as_secs_f64().max(1e-9);
    let deterministic = d_serial == d_parallel;
    metrics.push(("s_sched.serial_ms".into(), t_serial.as_secs_f64() * 1e3));
    metrics.push(("s_sched.parallel_ms".into(), t_parallel.as_secs_f64() * 1e3));
    metrics.push(("s_sched.speedup".into(), speedup));
    checks.push(Check {
        id: "S-sched",
        paper:
            "8-worker batch: identical digests to serial, >= 2x throughput (distinct Dockerfiles)",
        measured: format!(
            "serial {t_serial:.2?}, 8 workers {t_parallel:.2?} ({speedup:.1}x), \
             digests-identical={deterministic}"
        ),
        pass: deterministic && speedup >= 2.0,
    });

    // ---- S-cache -----------------------------------------------------------------
    // Cross-build warm hits: two identical requests through a
    // single-worker scheduler. Each build gets a *fresh* Builder, so
    // the second build's hits can only come from the shared layer
    // store — and with the store warm, it must execute nothing.
    let sched = bench_scheduler(1);
    let df = vec![dockerfiles[0].clone(); 2];
    let reports = sched.build_many(sched_requests(&df, CacheMode::Enabled));
    let cold = reports[0].result.cache;
    let warm = reports[1].result.cache;
    checks.push(Check {
        id: "S-cache",
        paper: "shared layer store: a sibling build replays a neighbor's layers (cross-build hits)",
        measured: format!(
            "cold: {cold}; sibling: {warm}; store: {}",
            sched.layers().stats()
        ),
        pass: reports.iter().all(|r| r.result.success)
            && cold.hits == 0
            && warm.hits > 0
            && warm.misses == 0,
    });

    // ---- M-dag -------------------------------------------------------------------
    // The multi-stage DAG gate, in four parts.
    //
    // (a) Determinism: the diamond Dockerfile builds to the same
    //     `Image::digest` serially and at 8 workers, with >= 2 stage
    //     tasks observed running at once in the parallel build (the
    //     overlap can lose a coin flip to scheduling, so the cold
    //     attempt retries on a fresh cache dir, like any timing gate).
    //
    // (b) Pruning: the stage nothing references is the diamond's only
    //     centos user; the registry fetch counter staying at 1 (the
    //     alpine base) proves it never executed.
    //
    // (c) Warm replay: a *fresh* scheduler over the same --cache-dir
    //     replays every stage from disk — zero misses, zero fetches,
    //     same digest.
    //
    // (d) Shared blobs: cross-stage COPY hands blobs over Arc-shared,
    //     so the layer store's dedup ledger must charge shared payload
    //     bytes once (logical > deduplicated).
    let scratch = std::env::temp_dir().join(format!("zr-paper-dag-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let diamond = vec![DIAMOND.to_string()];
    let (t_dag_serial, dag_serial) = timed_batch(1, &diamond, CacheMode::Enabled);
    let dag_terminal = |s: &BuildStatus| s.terminal();
    let mut dag_peak = 0usize;
    let mut dag_cache = std::path::PathBuf::new();
    let mut t_dag_parallel = std::time::Duration::ZERO;
    let mut dag_parallel = Vec::new();
    let mut dag_fetches = 0u64;
    let mut dag_dedups = false;
    for attempt in 0..5 {
        dag_cache = scratch.join(format!("cache-{attempt}"));
        let sched = Scheduler::try_new(SchedulerConfig {
            jobs: 8,
            pull_cost: bench_pull_cost(),
            cache_dir: Some(dag_cache.clone()),
            ..SchedulerConfig::default()
        })
        .expect("open dag cache dir");
        let t0 = std::time::Instant::now();
        let handle = sched.submit(sched_requests(&diamond, CacheMode::Enabled));
        dag_peak = 0;
        while !handle.statuses().iter().all(dag_terminal) {
            dag_peak = dag_peak.max(handle.peak_concurrency());
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        dag_peak = dag_peak.max(handle.peak_concurrency());
        let reports = handle.wait();
        t_dag_parallel = t0.elapsed();
        let store_stats = sched.layers().stats();
        dag_dedups = store_stats.logical_bytes > store_stats.bytes;
        dag_fetches = sched.registry().stats().fetches;
        dag_parallel = reports
            .into_iter()
            .map(|r| {
                assert!(r.result.success, "{}", r.result.log_text());
                r.result.image.as_ref().expect("dag build image").digest()
            })
            .collect();
        if dag_peak >= 2 {
            break;
        }
    }
    let dag_deterministic = dag_serial == dag_parallel;
    let dag_pruned = dag_fetches == 1;

    // (c) Fresh scheduler, same --cache-dir: all stages replay from disk.
    let warm_sched = Scheduler::try_new(SchedulerConfig {
        jobs: 8,
        pull_cost: bench_pull_cost(),
        cache_dir: Some(dag_cache.clone()),
        ..SchedulerConfig::default()
    })
    .expect("reopen dag cache dir");
    let warm_reports = warm_sched.build_many(sched_requests(&diamond, CacheMode::Enabled));
    let warm_dag = &warm_reports[0];
    let warm_dag_silent = warm_dag.result.success
        && warm_dag.result.cache.misses == 0
        && warm_dag.result.cache.hits > 0
        && warm_sched.registry().stats().fetches == 0
        && warm_sched.layers().stats().disk_hits > 0
        && warm_dag
            .result
            .image
            .as_ref()
            .map(|img| dag_serial.first() == Some(&img.digest()))
            .unwrap_or(false);
    let _ = std::fs::remove_dir_all(&scratch);
    metrics.push(("m_dag.serial_ms".into(), t_dag_serial.as_secs_f64() * 1e3));
    metrics.push((
        "m_dag.parallel_ms".into(),
        t_dag_parallel.as_secs_f64() * 1e3,
    ));
    metrics.push(("m_dag.peak_concurrency".into(), dag_peak as f64));
    checks.push(Check {
        id: "M-dag",
        paper: "diamond multi-stage build: serial == 8-worker digest with >= 2 stages \
                overlapping, unreachable stage pruned (never fetched), warm --cache-dir \
                replay executes nothing, COPY --from= blobs dedup-shared",
        measured: format!(
            "digests-identical={dag_deterministic} (serial {t_dag_serial:.2?}, \
             8 workers {t_dag_parallel:.2?}, peak {dag_peak}); fetches={dag_fetches} \
             (pruned={dag_pruned}); warm: {} executed-nothing={warm_dag_silent}; \
             dedup-active={dag_dedups}",
            warm_dag.result.cache
        ),
        pass: dag_deterministic && dag_peak >= 2 && dag_pruned && warm_dag_silent && dag_dedups,
    });

    // ---- P-snap ------------------------------------------------------------------
    // The CoW snapshot/digest gate, in three parts.
    //
    // (a) Digest parity: the memoized fast path must be byte-identical
    //     to the full-rehash reference (`digest_uncached`, which
    //     recomputes every payload hash from raw bytes — the
    //     pre-refactor cost model), on a synthetic image, on a built
    //     image, and on a warm replay of that build; and the S-sched
    //     batch above already pinned serial == 8-worker digests.
    let synth = synthetic_image(512, 8192);
    let parity_synth = synth.digest() == synth.digest_uncached();
    let mut kernel = Kernel::default_kernel();
    let mut builder = Builder::new();
    let snap_opts = BuildOptions::new("p-snap", Mode::Seccomp);
    let cold_build = builder.build(&mut kernel, FIG1A, &snap_opts);
    let warm_build = builder.build(&mut kernel, FIG1A, &snap_opts);
    let built = cold_build.image.as_ref().expect("cold build image");
    let replayed = warm_build.image.as_ref().expect("warm build image");
    let parity_built = built.digest() == built.digest_uncached();
    let parity_replay = built.digest() == replayed.digest();

    // (b) Perf: at the largest snapshot_scale grid point, a 1-file-delta
    //     snapshot+digest (warm memos) must be at least 10x cheaper than
    //     a cold full-image hash. Best-of-N on both sides so a noisy
    //     runner cannot fail the gate spuriously.
    let (cold_hash, _) = best_of(3, || timed(|| synth.digest_uncached()));
    let _ = synth.digest(); // warm the blob + tree memos once
    let mut edit = 0u64;
    let (warm_delta, _) = best_of(5, || {
        edit += 1;
        timed(|| snapshot_one_change(&synth, edit))
    });
    let ratio = cold_hash.as_secs_f64() / warm_delta.as_secs_f64().max(1e-9);
    metrics.push(("p_snap.cold_hash_ms".into(), cold_hash.as_secs_f64() * 1e3));
    metrics.push((
        "p_snap.warm_delta_ms".into(),
        warm_delta.as_secs_f64() * 1e3,
    ));
    metrics.push(("p_snap.ratio".into(), ratio));

    // (c) Dedup accounting: the layer store for the warm build must
    //     charge shared payload bytes once (logical > deduplicated).
    let store_stats = builder.layers.stats();
    let dedups = store_stats.logical_bytes > store_stats.bytes;
    metrics.push(("p_snap.store_bytes".into(), store_stats.bytes as f64));
    metrics.push((
        "p_snap.store_logical_bytes".into(),
        store_stats.logical_bytes as f64,
    ));

    checks.push(Check {
        id: "P-snap",
        paper: "CoW snapshots: digests unchanged (memo == full rehash, serial == replay == \
                8-worker), 1-file delta >= 10x cheaper than a cold full-image hash, \
                dedup accounting active",
        measured: format!(
            "parity synth={parity_synth} built={parity_built} replay={parity_replay} \
             serial-vs-8={deterministic}; cold {cold_hash:.2?} vs warm {warm_delta:.2?} \
             ({ratio:.0}x); store {} / {} logical bytes",
            store_stats.bytes, store_stats.logical_bytes
        ),
        pass: parity_synth
            && parity_built
            && parity_replay
            && deterministic
            && ratio >= 10.0
            && dedups,
    });

    // ---- O-oci -------------------------------------------------------------------
    // The persistent-store gate, in three parts.
    //
    // (a) Export → import: a built image serialized to an OCI image
    //     layout and read back must reproduce a byte-identical
    //     `Image::digest` (deterministic tars, canonical JSON,
    //     verified blobs).
    //
    // (b) Cross-process warm rebuild: a *fresh* builder (fresh
    //     registry, fresh kernel, fresh in-memory cache — everything a
    //     second process would have) pointed at the first build's
    //     --cache-dir must replay the whole build from disk: zero
    //     misses, zero spawns, zero pulls, same digest.
    //
    // (c) Store throughput: raw CAS blob write/read bandwidth, logged
    //     to BENCH_5.json for the cross-PR trajectory.
    let scratch = std::env::temp_dir().join(format!("zr-paper-oci-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let cache_dir = scratch.join("cache");
    let oci_dir = scratch.join("oci");

    let (mut builder, _disk) =
        zr_build::Builder::with_cache_dir(&cache_dir).expect("open cache dir");
    let mut kernel = Kernel::default_kernel();
    let oci_opts = BuildOptions::new("o-oci", Mode::Seccomp);
    let cold = builder.build(&mut kernel, FIG1B, &oci_opts);
    let cold_image = cold.image.as_ref().expect("cold build image");

    let (t_export, export_ok) = timed(|| zr_store::export(cold_image, &oci_dir).is_ok());
    let (t_import, imported) = timed(|| zr_store::import(&oci_dir));
    let roundtrip = imported
        .as_ref()
        .map(|img| img.digest() == cold_image.digest())
        .unwrap_or(false);
    metrics.push(("o_oci.export_ms".into(), t_export.as_secs_f64() * 1e3));
    metrics.push(("o_oci.import_ms".into(), t_import.as_secs_f64() * 1e3));

    let (mut second, second_disk) =
        zr_build::Builder::with_cache_dir(&cache_dir).expect("reopen cache dir");
    let mut second_kernel = Kernel::default_kernel();
    let warm = second.build(&mut second_kernel, FIG1B, &oci_opts);
    let warm_digest_ok = warm
        .image
        .as_ref()
        .map(|img| img.digest() == cold_image.digest())
        .unwrap_or(false);
    let warm_stats = second.layers.stats();
    let executed_nothing = second_kernel.counters.spawns == 0
        && second.registry.pulls() == 0
        && warm.cache.misses == 0
        && warm.cache.hits == 2;
    let from_disk =
        warm_stats.disk_hits == u64::from(warm.cache.hits) && second_disk.error_count() == 0;

    // (c) CAS bandwidth: 256 distinct 16 KiB blobs, then read back.
    let cas = zr_store::Cas::open(scratch.join("bench-cas")).expect("open bench cas");
    let payloads: Vec<Vec<u8>> = (0..256u32)
        .map(|i| {
            let mut data = vec![(i % 251) as u8; 16 * 1024];
            data[..4].copy_from_slice(&i.to_le_bytes());
            data
        })
        .collect();
    let total_bytes = (payloads.len() * 16 * 1024) as f64;
    let (t_write, digests) = timed(|| {
        payloads
            .iter()
            .map(|p| cas.put(p).expect("put"))
            .collect::<Vec<_>>()
    });
    let (t_read, read_back) = timed(|| {
        digests
            .iter()
            .map(|d| cas.get(d).expect("get").len())
            .sum::<usize>()
    });
    let write_mbps = total_bytes / 1e6 / t_write.as_secs_f64().max(1e-9);
    let read_mbps = total_bytes / 1e6 / t_read.as_secs_f64().max(1e-9);
    metrics.push(("o_oci.store_write_mbps".into(), write_mbps));
    metrics.push(("o_oci.store_read_mbps".into(), read_mbps));
    let bandwidth_sane = read_back == payloads.len() * 16 * 1024;
    let _ = std::fs::remove_dir_all(&scratch);

    checks.push(Check {
        id: "O-oci",
        paper: "export → import reproduces Image::digest byte-identically; a second process \
                on the same --cache-dir replays fully warm (0 misses, 0 spawns, 0 pulls)",
        measured: format!(
            "roundtrip-digest-equal={roundtrip} (export {t_export:.2?}, import {t_import:.2?}); \
             warm: {} with digest-equal={warm_digest_ok}, executed-anything={}, \
             disk-hits={}/{}; store {write_mbps:.0}/{read_mbps:.0} MB/s write/read",
            warm.cache, !executed_nothing, warm_stats.disk_hits, warm.cache.hits,
        ),
        pass: export_ok
            && roundtrip
            && cold.success
            && warm.success
            && warm_digest_ok
            && executed_nothing
            && from_disk
            && bandwidth_sane,
    });

    // ---- D-delta -----------------------------------------------------------------
    // The delta-persistence gate, in four parts.
    //
    // (a) O(changes) persist: on a warm 10k-file image, persisting a
    //     1-file-change child layer through the delta path must cost
    //     at most 4x the *in-memory* warm snapshot+digest of the same
    //     change — i.e. durable persistence rides within a small
    //     constant of the pure CoW hot path it used to dwarf.
    //
    // (b) Batched write bandwidth: one CasBatch of 256 distinct 16 KiB
    //     blobs (group fsync, single directory sync) must sustain
    //     >= 74 MB/s — 2x the sequential per-blob baseline BENCH_5
    //     recorded (37 MB/s).
    //
    // (c) Chain fidelity: a 12-layer delta chain (which forces a full
    //     re-persist past depth 8) must reload through a fresh handle
    //     to the exact tree digest, with zero absorbed errors.
    //
    // (d) Chunk dedup: re-storing a 1 MiB blob with 4 KiB appended
    //     must dedup at least half of it against the original's chunks.
    use zr_image::{CacheKey, Layer, LayerPersistence, LayerState};
    let scratch = std::env::temp_dir().join(format!("zr-paper-delta-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let root_acc = zr_vfs::Access::root();
    let plain_state = LayerState {
        args: Vec::new(),
        stage: None,
    };

    // (a) Warm-delta persist vs in-memory warm-delta digest.
    let big = synthetic_image(10_000, 256);
    let _ = big.digest(); // warm the blob + tree memos once
    let mut edit = 0u64;
    let (digest_warm, _) = best_of(5, || {
        edit += 1;
        timed(|| snapshot_one_change(&big, edit))
    });
    let (_, delta_disk) =
        zr_store::open_layer_store(scratch.join("delta-store")).expect("open delta store");
    let parent_key = CacheKey::compute(None, "FROM synthetic", "", "seccomp");
    let parent_layer = Layer {
        id: parent_key.clone(),
        parent: None,
        fs: big.fs.clone(),
        state: plain_state.clone(),
    };
    delta_disk.persist(&parent_layer);
    let mut n = 0u64;
    let (persist_warm, _) = best_of(5, || {
        n += 1;
        let mut fs = big.fs.clone();
        fs.write_file(
            "/data/d00/f0",
            0o644,
            format!("delta-{n}").into_bytes(),
            &root_acc,
        )
        .expect("edit");
        let child = Layer {
            id: CacheKey::compute(Some(&parent_key), &format!("RUN edit {n}"), "", "seccomp"),
            parent: Some(parent_key.clone()),
            fs,
            state: plain_state.clone(),
        };
        timed(|| delta_disk.persist_with_parent(&child, Some(&parent_layer)))
    });
    let persist_over_digest = persist_warm.as_secs_f64() / digest_warm.as_secs_f64().max(1e-9);
    let delta_stats = delta_disk.stats();
    let persisted_as_deltas = delta_stats.delta_persisted == n && delta_disk.error_count() == 0;
    metrics.push((
        "d_delta.digest_warm_ms".into(),
        digest_warm.as_secs_f64() * 1e3,
    ));
    metrics.push((
        "d_delta.persist_warm_ms".into(),
        persist_warm.as_secs_f64() * 1e3,
    ));
    metrics.push(("d_delta.persist_over_digest".into(), persist_over_digest));

    // (b) Batched CAS write bandwidth (same payload shape as O-oci's
    //     sequential measurement, so the two numbers are comparable).
    let mut bw_run = 0u32;
    let (t_batch_write, _) = best_of(3, || {
        bw_run += 1;
        let cas = zr_store::Cas::open(scratch.join(format!("bw-{bw_run}"))).expect("open bw cas");
        timed(|| {
            let mut batch = cas.batch();
            for p in &payloads {
                batch.put(p).expect("stage");
            }
            batch.commit().expect("commit");
        })
    });
    let batch_write_mbps = total_bytes / 1e6 / t_batch_write.as_secs_f64().max(1e-9);
    // Gate against the sequential per-blob bandwidth measured moments
    // ago in this same process (O-oci, identical payload shape), not an
    // absolute number: fsync throughput on a shared runner swings 2x
    // between runs, but the batched/sequential ratio is the claim.
    let batch_speedup = batch_write_mbps / write_mbps.max(1e-9);
    metrics.push(("d_delta.store_write_mbps".into(), batch_write_mbps));
    metrics.push(("d_delta.batch_over_sequential".into(), batch_speedup));

    // (c) A 12-layer chain over a 500-file image, reloaded cold.
    let chain_base = synthetic_image(500, 128);
    let (_, chain_disk) =
        zr_store::open_layer_store(scratch.join("chain")).expect("open chain store");
    let mut chain_fs = chain_base.fs.clone();
    let mut chain_parent: Option<CacheKey> = None;
    let mut prev_layer: Option<Layer> = None;
    let mut deepest_key = None;
    for i in 0..12u32 {
        chain_fs
            .write_file(&format!("/chain-{i}"), 0o644, vec![i as u8; 64], &root_acc)
            .expect("chain edit");
        let key = CacheKey::compute(
            chain_parent.as_ref(),
            &format!("RUN chain {i}"),
            "",
            "seccomp",
        );
        let layer = Layer {
            id: key.clone(),
            parent: chain_parent.clone(),
            fs: chain_fs.clone(),
            state: plain_state.clone(),
        };
        chain_disk.persist_with_parent(&layer, prev_layer.as_ref());
        chain_parent = Some(key.clone());
        deepest_key = Some(key);
        prev_layer = Some(layer);
    }
    let expected_digest = chain_fs.tree_digest();
    let chain_stats = chain_disk.stats();
    // Layer 0 is full, 1..=8 are deltas, 9 falls back (depth bound),
    // 10 and 11 are deltas again: 10 of 12.
    let depth_bound_respected = chain_stats.persisted == 12 && chain_stats.delta_persisted == 10;
    let (_, fresh_disk) =
        zr_store::open_layer_store(scratch.join("chain")).expect("reopen chain store");
    let reloaded = fresh_disk.load(&deepest_key.expect("12 layers"));
    let delta_chain_ok = reloaded
        .map(|l| l.fs.tree_digest() == expected_digest)
        .unwrap_or(false)
        && fresh_disk.error_count() == 0
        && chain_disk.error_count() == 0;
    metrics.push((
        "d_delta.delta_chain_ok".into(),
        f64::from(u8::from(delta_chain_ok)),
    ));

    // (d) Chunk-level dedup of an appended 1 MiB blob. Pseudo-random
    // payload (xorshift) so chunks can't self-dedup within one blob;
    // the saved delta around the second put isolates cross-blob reuse.
    let chunk_cas = zr_store::Cas::open(scratch.join("chunks")).expect("open chunk cas");
    let mut rng = 0x9E37_79B9_7F4A_7C15u64;
    let blob: Vec<u8> = (0..1_048_576usize / 8)
        .flat_map(|_| {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng.to_le_bytes()
        })
        .collect();
    chunk_cas.put(&blob).expect("store original");
    let saved_before = chunk_cas.stats().chunk_dedup_saved;
    let mut appended = blob.clone();
    appended.extend(std::iter::repeat_n(0xABu8, 4096));
    chunk_cas.put(&appended).expect("store appended");
    let chunk_dedup_ratio =
        (chunk_cas.stats().chunk_dedup_saved - saved_before) as f64 / appended.len() as f64;
    metrics.push(("d_delta.chunk_dedup_ratio".into(), chunk_dedup_ratio));
    let _ = std::fs::remove_dir_all(&scratch);

    checks.push(Check {
        id: "D-delta",
        paper: "delta persistence: 1-file persist <= 4x warm in-memory digest on 10k files; \
                batched store writes >= 1.5x the same run's sequential per-blob baseline \
                (BENCH_5 seed: 37 MB/s); 12-deep chain reloads exactly \
                (full fallback past depth 8); appended 1 MiB blob dedups >= 50% by chunks",
        measured: format!(
            "persist {persist_warm:.2?} vs digest {digest_warm:.2?} \
             ({persist_over_digest:.2}x, {n} deltas-as-deltas={persisted_as_deltas}); \
             batch write {batch_write_mbps:.0} MB/s ({batch_speedup:.1}x sequential); \
             chain ok={delta_chain_ok} ({}/12 deltas); chunk dedup {:.0}%",
            chain_stats.delta_persisted,
            chunk_dedup_ratio * 100.0
        ),
        pass: persist_over_digest <= 4.0
            && persisted_as_deltas
            && (batch_speedup >= 1.5 || batch_write_mbps >= 74.0)
            && delta_chain_ok
            && depth_bound_respected
            && chunk_dedup_ratio >= 0.5,
    });

    // ---- W-wire ------------------------------------------------------------------
    // The remote-registry gate, in three parts.
    //
    // (a) Wire round-trip: a built image exported to an OCI layout,
    //     pushed to a live loopback `zr serve` endpoint, and pulled
    //     back must reproduce a byte-identical `Image::digest` (every
    //     blob digest-verified on both sides of the socket).
    //
    // (b) FROM over the wire: a *cold* builder whose registry misses
    //     to the endpoint (a `WireBackend` instead of the built-in
    //     catalog) resolves `centos:7` over HTTP and builds to the
    //     same digest; a fresh builder on the warm --cache-dir with
    //     the same wire registry then replays the whole build without
    //     executing anything or touching the socket again.
    //
    // (c) Loopback throughput: push/pull bandwidth over the wire,
    //     logged to BENCH_7.json for the cross-PR trajectory.
    use std::sync::Arc;
    use zr_image::{CatalogBackend, ImageRef, PullCost, RegistryBackend, ShardedRegistry};
    let scratch = std::env::temp_dir().join(format!("zr-paper-wire-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let endpoint_cas = zr_store::Cas::open(scratch.join("endpoint")).expect("open endpoint store");
    let server = zr_registry::serve(endpoint_cas, "127.0.0.1:0").expect("serve loopback");
    let client = zr_registry::RemoteRegistry::new(server.addr().to_string());

    // (a) Build, export, push, pull back.
    let wire_cache = scratch.join("cache");
    let (mut wire_builder, _wire_disk) =
        zr_build::Builder::with_cache_dir(&wire_cache).expect("open wire cache dir");
    let mut wire_kernel = Kernel::default_kernel();
    let wire_opts = BuildOptions::new("w-wire", Mode::Seccomp);
    let wired = wire_builder.build(&mut wire_kernel, FIG1B, &wire_opts);
    let wired_image = wired.image.as_ref().expect("wire build image");
    let layout = scratch.join("layout");
    zr_store::export(wired_image, &layout).expect("export for push");
    let layout_bytes: f64 = std::fs::read_dir(layout.join("blobs/sha256"))
        .expect("layout blobs")
        .filter_map(|entry| entry.ok()?.metadata().ok())
        .map(|meta| meta.len() as f64)
        .sum();

    let (t_push, push_ok) = timed(|| client.push_layout(&layout, "w-wire", "latest").is_ok());
    let (t_pull, pulled) = timed(|| client.pull_image("w-wire", "latest"));
    let wire_roundtrip = pulled
        .as_ref()
        .map(|img| img.digest() == wired_image.digest())
        .unwrap_or(false);
    let push_mbps = layout_bytes / 1e6 / t_push.as_secs_f64().max(1e-9);
    let pull_mbps = layout_bytes / 1e6 / t_pull.as_secs_f64().max(1e-9);
    metrics.push(("w_wire.push_mbps".into(), push_mbps));
    metrics.push(("w_wire.pull_mbps".into(), pull_mbps));

    // (b) Push the base image, then point a cold builder's registry at
    // the endpoint: FROM resolves over HTTP instead of the catalog.
    let base = CatalogBackend
        .fetch(&ImageRef::parse("centos:7").expect("base reference"))
        .expect("materialize base image");
    let base_layout = scratch.join("base-layout");
    zr_store::export(&base, &base_layout).expect("export base");
    client
        .push_layout(&base_layout, "centos", "7")
        .expect("push base image");

    let wire_registry = Arc::new(ShardedRegistry::with_backend(
        ShardedRegistry::DEFAULT_SHARDS,
        PullCost::default(),
        Arc::new(zr_registry::WireBackend::new(server.addr().to_string())),
    ));
    let mut cold_wire = zr_build::Builder::new();
    cold_wire.registry = Arc::clone(&wire_registry);
    let mut cold_wire_kernel = Kernel::default_kernel();
    let cold_over_wire = cold_wire.build(&mut cold_wire_kernel, FIG1B, &wire_opts);
    let from_over_wire = cold_over_wire.success
        && wire_registry.stats().fetches >= 1
        && cold_over_wire
            .image
            .as_ref()
            .map(|img| img.digest() == wired_image.digest())
            .unwrap_or(false);

    // Warm replay through the same wire registry: a fresh builder on
    // the first build's --cache-dir must execute nothing and never
    // touch the socket.
    let (mut warm_wire, warm_wire_disk) =
        zr_build::Builder::with_cache_dir(&wire_cache).expect("reopen wire cache dir");
    warm_wire.registry = Arc::clone(&wire_registry);
    let wire_fetches_before = wire_registry.stats().fetches;
    let mut warm_wire_kernel = Kernel::default_kernel();
    let warm_over_wire = warm_wire.build(&mut warm_wire_kernel, FIG1B, &wire_opts);
    let warm_wire_silent = warm_over_wire.success
        && warm_wire_kernel.counters.spawns == 0
        && warm_over_wire.cache.misses == 0
        && wire_registry.stats().fetches == wire_fetches_before
        && warm_over_wire
            .image
            .as_ref()
            .map(|img| img.digest() == wired_image.digest())
            .unwrap_or(false)
        && warm_wire_disk.error_count() == 0;

    drop(server); // stop the acceptor before the scratch dir goes
    let _ = std::fs::remove_dir_all(&scratch);

    checks.push(Check {
        id: "W-wire",
        paper: "push → serve → pull round-trips Image::digest byte-identically; a cold \
                builder resolves FROM over the wire to the same digest; a fresh builder \
                on the warm --cache-dir replays without executing or re-fetching",
        measured: format!(
            "roundtrip-digest-equal={wire_roundtrip} \
             (push {t_push:.2?} @ {push_mbps:.0} MB/s, pull {t_pull:.2?} @ {pull_mbps:.0} MB/s); \
             cold-FROM-over-wire={from_over_wire} ({} wire fetches); \
             warm: {} executed-anything={}",
            wire_registry.stats().fetches,
            warm_over_wire.cache,
            !warm_wire_silent,
        ),
        pass: wired.success && push_ok && wire_roundtrip && from_over_wire && warm_wire_silent,
    });

    // ---- F-fault -----------------------------------------------------------------
    // The fault-injection gate, in two parts.
    //
    // (a) CAS crash-point sweep: a batched commit is killed at every
    //     crash checkpoint in turn (`store.commit.crash` with an
    //     increasing skip count). After each kill the leftover staging
    //     files are renamed to a dead writer's pid — the same-process
    //     stand-in for a reboot, since recovery spares a live pid's
    //     files — and the store must reopen clean: pack replay where
    //     the pack survived, discard where it didn't, and every blob
    //     retrievable after a fault-free re-put. One checkpoint past
    //     the last, the same commit must run through unfaulted, which
    //     pins the sweep as exhaustive.
    //
    // (b) Faulted diamond batch: the M-dag diamond, FROM resolved over
    //     a live loopback registry, under a fixed seeded plan — 3 wire
    //     resets + 2 store commit crashes + 1 worker panic. The wire
    //     resets must be retried under the client's backoff policy,
    //     the store errors absorbed by the persistence layer, and the
    //     panicked stage retried once — the batch lands Degraded (not
    //     Failed) with the serial, fault-free Image::digest.
    let scratch = std::env::temp_dir().join(format!("zr-paper-fault-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    // (a) The sweep. Checkpoints are numbered 0..=5 inside
    // CasBatch::commit; skip=6 proves there is no seventh.
    let crash_payloads = &payloads[..8];
    let mut crash_points = 0u32;
    let mut sweep_ok = true;
    for k in 0..=6u64 {
        let dir = scratch.join(format!("crash-{k}"));
        let cas = zr_store::Cas::open(&dir).expect("open crash cas");
        let plan =
            zr_fault::FaultPlan::new().counted(zr_fault::points::STORE_COMMIT_CRASH, 1, k, 0);
        let guard = zr_fault::install(&plan);
        let mut batch = cas.batch();
        for p in crash_payloads {
            batch.put(p).expect("stage");
        }
        let crashed = batch.commit().is_err();
        drop(guard);
        drop(cas);
        if k == 6 {
            sweep_ok &= !crashed;
            break;
        }
        sweep_ok &= crashed;
        crash_points += u32::from(crashed);
        // Fake the writer's death: recovery keeps a live pid's staging
        // files, so hand them to a pid that cannot exist.
        let tmp = dir.join("tmp");
        if let Ok(entries) = std::fs::read_dir(&tmp) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if let Some(rest) = name.strip_prefix(&format!("w{}-", std::process::id())) {
                    let _ = std::fs::rename(entry.path(), tmp.join(format!("w4999999-{rest}")));
                }
            }
        }
        let reopened = zr_store::Cas::open(&dir).expect("reopen after injected crash");
        sweep_ok &= crash_payloads.iter().all(|p| {
            reopened
                .put(p)
                .ok()
                .and_then(|d| reopened.get(&d).ok())
                .map(|data| data == *p)
                .unwrap_or(false)
        });
    }

    // (b) The faulted batch. The serial fault-free baseline is M-dag's
    // `dag_serial` (same Dockerfile, same id/tag, so the digests are
    // directly comparable).
    let fault_endpoint =
        zr_store::Cas::open(scratch.join("endpoint")).expect("open fault endpoint");
    let fault_server = zr_registry::serve(fault_endpoint, "127.0.0.1:0").expect("serve loopback");
    let fault_client = zr_registry::RemoteRegistry::new(fault_server.addr().to_string());
    let alpine = CatalogBackend
        .fetch(&ImageRef::parse("alpine:3.19").expect("base reference"))
        .expect("materialize alpine");
    let alpine_layout = scratch.join("alpine-layout");
    zr_store::export(&alpine, &alpine_layout).expect("export alpine");
    fault_client
        .push_layout(&alpine_layout, "alpine", "3.19")
        .expect("push alpine");

    let fault_sched = Scheduler::try_new(SchedulerConfig {
        jobs: 4,
        pull_cost: bench_pull_cost(),
        cache_dir: Some(scratch.join("cache")),
        backend: Some(Arc::new(zr_registry::WireBackend::new(
            fault_server.addr().to_string(),
        ))),
        ..SchedulerConfig::default()
    })
    .expect("open fault cache dir");
    let fault_plan = zr_fault::FaultPlan::new()
        .seeded(0xF417)
        .counted(zr_fault::points::WIRE_CLIENT_RESET, 3, 0, 0)
        .counted(zr_fault::points::STORE_COMMIT_CRASH, 2, 0, 0)
        .counted(zr_fault::points::SCHED_STAGE_PANIC, 1, 0, 0);
    let fault_guard = zr_fault::install(&fault_plan);
    let t0 = std::time::Instant::now();
    let fault_reports = fault_sched.build_many(sched_requests(&diamond, CacheMode::Enabled));
    let t_fault_batch = t0.elapsed();
    let fc = zr_fault::counters();
    drop(fault_guard);
    drop(fault_server);

    let faulted = &fault_reports[0];
    let fault_degraded = faulted.status == BuildStatus::Degraded && faulted.status.succeeded();
    let fault_digest_ok = faulted
        .result
        .image
        .as_ref()
        .map(|img| dag_serial.first() == Some(&img.digest()))
        .unwrap_or(false);
    let all_injected = fc.injected == 6 && fc.retries >= 3 && fc.panics_retried == 1;
    let store_absorbed = fault_sched
        .disk()
        .map(|d| d.error_count() >= 1)
        .unwrap_or(false);
    let _ = std::fs::remove_dir_all(&scratch);
    metrics.push(("f_fault.crash_points".into(), f64::from(crash_points)));
    metrics.push(("f_fault.injected".into(), fc.injected as f64));
    metrics.push(("f_fault.retries".into(), fc.retries as f64));
    metrics.push(("f_fault.batch_ms".into(), t_fault_batch.as_secs_f64() * 1e3));
    checks.push(Check {
        id: "F-fault",
        paper: "CAS reopens clean from a crash at every commit checkpoint; the diamond batch \
                under 3 wire resets + 2 store errors + 1 worker panic lands Degraded with \
                the serial fault-free digest (resets retried, store errors absorbed)",
        measured: format!(
            "sweep ok={sweep_ok} ({crash_points} crash points); faulted batch: status={} \
             digest-equal={fault_digest_ok} in {t_fault_batch:.2?}; counters: {fc}; \
             store-errors-absorbed={store_absorbed}",
            faulted.status
        ),
        pass: sweep_ok
            && crash_points == 6
            && fault_degraded
            && fault_digest_ok
            && all_injected
            && store_absorbed,
    });

    // ---- R-repro -----------------------------------------------------------------
    // The reproducibility-audit gate, in two parts.
    //
    // (a) Bit-for-bit: two *independently constructed* builders (own
    //     kernel, own layer cache, own registry — agreement must come
    //     from determinism, not memoization) must export byte-identical
    //     OCI layouts for the Figure 2 build, and the diamond
    //     multi-stage build must agree serial-vs-8-workers.
    //
    // (b) Taxonomy: each injected nondeterminism source must be *named*
    //     by the auditor with its divergence class — tar-mtime,
    //     tar-ordering, owner-mode, payload-content (with the diverging
    //     path), json-key-order — never reported only as an opaque
    //     content difference.
    {
        use zr_audit::{audit_build, ArmSpec, DivergenceClass};
        use zr_store::{ExportOpts, TarOpts};
        use zr_vfs::Nondeterminism;
        let scratch = std::env::temp_dir().join(format!("zr-paper-repro-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&scratch);
        let serial = ArmSpec::default();

        let (t_fig2, fig2) = timed(|| {
            audit_build(FIG1B, &serial, &serial, &scratch.join("fig2")).expect("fig2 audit")
        });
        let eight = ArmSpec {
            jobs: 8,
            ..ArmSpec::default()
        };
        let (t_dag, dag) = timed(|| {
            audit_build(DIAMOND, &serial, &eight, &scratch.join("dag")).expect("dag audit")
        });
        let clean = fig2.clean() && dag.clean();

        // Forced divergences: a generated-file Dockerfile (uuidgen
        // draws from the kernel's seeded entropy stream) plus the
        // naive-packer switches that the canonical exporter normally
        // suppresses.
        let gen_df = "FROM alpine:3.19\nRUN echo hello > /greeting\nRUN uuidgen > /uuid\n";
        let raw = ExportOpts {
            tar: TarOpts {
                preserve_mtimes: true,
                readdir_order: true,
            },
            json_key_seed: None,
        };
        let named = |tag: &str, a: ArmSpec, b: ArmSpec, want: DivergenceClass| -> bool {
            let outcome =
                audit_build(gen_df, &a, &b, &scratch.join(tag)).expect("forced audit runs");
            outcome.divergences.iter().any(|d| d.class == want)
        };
        let forced = [
            named(
                "mtime",
                ArmSpec {
                    export: raw,
                    ..ArmSpec::default()
                },
                ArmSpec {
                    nondet: Nondeterminism {
                        clock_skew: 100_000,
                        ..Nondeterminism::default()
                    },
                    export: raw,
                    ..ArmSpec::default()
                },
                DivergenceClass::TarMtime,
            ),
            named(
                "order",
                ArmSpec {
                    export: ExportOpts {
                        tar: TarOpts {
                            preserve_mtimes: false,
                            readdir_order: true,
                        },
                        json_key_seed: None,
                    },
                    ..ArmSpec::default()
                },
                ArmSpec {
                    nondet: Nondeterminism {
                        shuffle_readdir: Some(7),
                        ..Nondeterminism::default()
                    },
                    export: ExportOpts {
                        tar: TarOpts {
                            preserve_mtimes: false,
                            readdir_order: true,
                        },
                        json_key_seed: None,
                    },
                    ..ArmSpec::default()
                },
                DivergenceClass::TarOrdering,
            ),
            named(
                "ids",
                ArmSpec::default(),
                ArmSpec {
                    nondet: Nondeterminism {
                        default_ids: Some((4242, 4343)),
                        ..Nondeterminism::default()
                    },
                    ..ArmSpec::default()
                },
                DivergenceClass::OwnerMode,
            ),
            named(
                "entropy",
                ArmSpec::default(),
                ArmSpec {
                    nondet: Nondeterminism {
                        gen_seed: Some(5),
                        ..Nondeterminism::default()
                    },
                    ..ArmSpec::default()
                },
                DivergenceClass::PayloadContent,
            ),
            named(
                "json",
                ArmSpec::default(),
                ArmSpec {
                    export: ExportOpts {
                        tar: TarOpts::default(),
                        json_key_seed: Some(3),
                    },
                    ..ArmSpec::default()
                },
                DivergenceClass::JsonKeyOrder,
            ),
        ];
        let forced_named = forced.iter().filter(|ok| **ok).count();
        let _ = std::fs::remove_dir_all(&scratch);
        metrics.push(("r_repro.fig2_audit_ms".into(), t_fig2.as_secs_f64() * 1e3));
        metrics.push(("r_repro.dag_audit_ms".into(), t_dag.as_secs_f64() * 1e3));
        metrics.push(("r_repro.forced_classes_named".into(), forced_named as f64));
        checks.push(Check {
            id: "R-repro",
            paper: "independent builders agree byte-for-byte (fig2, diamond serial-vs-8-workers); \
                    every injected nondeterminism source is classified by name (tar-mtime, \
                    tar-ordering, owner-mode, payload-content, json-key-order)",
            measured: format!(
                "fig2 clean={} ({t_fig2:.2?}), diamond serial-vs-8 clean={} ({t_dag:.2?}); \
                 forced classes named {forced_named}/5 \
                 [mtime={} order={} ids={} entropy={} json={}]",
                fig2.clean(),
                dag.clean(),
                forced[0],
                forced[1],
                forced[2],
                forced[3],
                forced[4],
            ),
            pass: clean && forced_named == 5,
        });
    }

    // ---- report ------------------------------------------------------------------
    println!("zeroroot paper-vs-measured report");
    println!("=================================\n");
    let mut failures = 0;
    for c in &checks {
        println!("[{}] {}", if c.pass { "PASS" } else { "FAIL" }, c.id);
        println!("    paper:    {}", c.paper);
        println!("    measured: {}", c.measured);
        println!();
        if !c.pass {
            failures += 1;
        }
    }
    println!("{} checks, {} failures", checks.len(), failures);
    if let Some(path) = json_path {
        let json = render_json(&checks, &metrics);
        match std::fs::write(&path, json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
