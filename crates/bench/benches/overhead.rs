//! Bench E-ovh — §6 item 1 and future work 3: per-syscall overhead.
//!
//! * `unfiltered_syscall/*`: the tax each mode puts on a syscall that
//!   needs **no** emulation (`getpid`) — the filter runs anyway; classic
//!   ptrace stops anyway; the preload shim at least gets consulted.
//! * `emulated_chown/*`: the cost of one faked chown per mode (daemon
//!   round trips vs BPF instructions vs ptrace stops).
//! * `filter_width/*`: filter evaluation cost as the number of
//!   architectures carried grows — the "every syscall pays" curve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use zeroroot_core::Mode;
use zr_bench::armed;
use zr_kernel::SysExt;
use zr_seccomp::spec::zero_consistency;
use zr_seccomp::SeccompData;
use zr_syscalls::{Arch, Sysno};

const MODES: [(&str, Mode); 6] = [
    ("none", Mode::None),
    ("seccomp", Mode::Seccomp),
    ("seccomp_ids", Mode::SeccompIdConsistent),
    ("fakeroot", Mode::Fakeroot),
    ("proot", Mode::Proot),
    ("proot_accel", Mode::ProotAccelerated),
];

fn bench_unfiltered_syscall(c: &mut Criterion) {
    let mut g = c.benchmark_group("unfiltered_syscall");
    for (name, mode) in MODES {
        let (mut kernel, pid, _strategy) = armed(mode);
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut ctx = kernel.ctx(pid);
                black_box(ctx.getpid())
            })
        });
    }
    g.finish();
}

fn bench_emulated_chown(c: &mut Criterion) {
    let mut g = c.benchmark_group("emulated_chown");
    for (name, mode) in MODES {
        if mode == Mode::None {
            continue; // chown just fails there; nothing comparable
        }
        let (mut kernel, pid, _strategy) = armed(mode);
        {
            let mut ctx = kernel.ctx(pid);
            ctx.write_file("/probe", 0o644, b"x".to_vec())
                .expect("probe");
        }
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut ctx = kernel.ctx(pid);
                ctx.chown("/probe", 42, 42).expect("emulated");
            })
        });
    }
    g.finish();
}

fn bench_filter_width(c: &mut Criterion) {
    let mut g = c.benchmark_group("filter_width");
    let getpid_nr = Sysno::Getpid.number(Arch::X8664).expect("exists");
    for n in 1..=Arch::ALL.len() {
        let prog = zr_seccomp::compile(&zero_consistency(&Arch::ALL[..n])).expect("compiles");
        let data = SeccompData::new(Arch::X8664, getpid_nr, [0; 6]);
        g.bench_with_input(BenchmarkId::new("arches", n), &n, |b, _| {
            b.iter(|| black_box(zr_seccomp::stack::evaluate(&prog, &data)))
        });
    }
    g.finish();
}

fn bench_stacked_filters(c: &mut Criterion) {
    // §4: filters accumulate; each one runs on every syscall.
    let mut g = c.benchmark_group("stacked_filters");
    for stack_depth in [1usize, 2, 4, 8] {
        let (mut kernel, pid, _strategy) = armed(Mode::Seccomp);
        let prog = zr_seccomp::compile(&zero_consistency(&[Arch::X8664])).expect("compiles");
        for _ in 1..stack_depth {
            let mut ctx = kernel.ctx(pid);
            ctx.seccomp_install(prog.clone()).expect("stack grows");
        }
        g.bench_with_input(
            BenchmarkId::new("depth", stack_depth),
            &stack_depth,
            |b, _| {
                b.iter(|| {
                    let mut ctx = kernel.ctx(pid);
                    black_box(ctx.getpid())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_unfiltered_syscall,
    bench_emulated_chown,
    bench_filter_width,
    bench_stacked_filters
);
criterion_main!(benches);
