//! Bench: layer persistence cost versus image size — full records
//! against parent-relative deltas.
//!
//! The delta-everything PR changes the persist asymptote: a full
//! record collects and encodes every entry of the tree (O(image)),
//! while a delta record encodes entry metadata once and *stores* only
//! the changed paths (O(changes) new bytes, the `D-delta` paper-report
//! gate). The grid crosses image size with both routes:
//!
//! * `full`  — persist a fresh parentless layer (unique key per
//!   iteration; payload blobs dedup after the first pass, so this is
//!   the warm full-record cost: encode + tree object + record);
//! * `delta` — snapshot the parent, edit one file, persist against
//!   the parent (the per-instruction cost of an iterative build).
//!
//! `paper-report` pins the ratio at the 10k-file point; this bench
//! provides the full curve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use zr_image::{CacheKey, Layer, LayerPersistence, LayerState};
use zr_vfs::fs::Fs;
use zr_vfs::Access;

/// Files per synthetic image; the largest point matches `D-delta`.
const GRID: [usize; 3] = [1_000, 4_000, 10_000];

fn synthetic_fs(files: usize) -> Fs {
    let acc = Access::root();
    let mut fs = Fs::new();
    for d in 0..16 {
        fs.mkdir_p(&format!("/data/d{d:02}"), 0o755).unwrap();
    }
    for i in 0..files {
        let mut data = vec![0u8; 256];
        let tag = format!("file-{i}");
        data[..tag.len()].copy_from_slice(tag.as_bytes());
        fs.write_file(&format!("/data/d{:02}/f{i}", i % 16), 0o644, data, &acc)
            .unwrap();
    }
    // Warm the digest memos, as a build's snapshot step would have.
    let _ = fs.tree_digest();
    fs
}

fn bench_store_persist(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_persist");
    g.sample_size(10);
    let acc = Access::root();
    let state = LayerState {
        args: Vec::new(),
        stage: None,
    };

    for files in GRID {
        let fs = synthetic_fs(files);
        let scratch =
            std::env::temp_dir().join(format!("zr-bench-store-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&scratch);
        let (_, disk) = zr_store::open_layer_store(&scratch).unwrap();

        let parent_key = CacheKey::compute(None, &format!("FROM synthetic:{files}"), "", "seccomp");
        let parent = Layer {
            id: parent_key.clone(),
            parent: None,
            fs: fs.clone(),
            state: state.clone(),
        };
        disk.persist(&parent);

        // Full route: a unique parentless layer per iteration. After
        // the first pass every payload blob dedups, leaving the pure
        // record cost — encode, tree object, layer record.
        let mut seq = 0u64;
        g.bench_with_input(BenchmarkId::new("full", files), &fs, |b, fs| {
            b.iter(|| {
                seq += 1;
                let layer = Layer {
                    id: CacheKey::compute(None, &format!("FROM full-{files}-{seq}"), "", "seccomp"),
                    parent: None,
                    fs: fs.clone(),
                    state: state.clone(),
                };
                disk.persist(&layer);
                black_box(layer.id)
            })
        });

        // Delta route: the edit loop — snapshot, touch one file,
        // persist against the parent.
        let mut seq = 0u64;
        g.bench_with_input(BenchmarkId::new("delta", files), &fs, |b, fs| {
            b.iter(|| {
                seq += 1;
                let mut child_fs = fs.clone();
                child_fs
                    .write_file(
                        "/data/d00/f0",
                        0o644,
                        format!("edit-{seq}").into_bytes(),
                        &acc,
                    )
                    .unwrap();
                let child = Layer {
                    id: CacheKey::compute(
                        Some(&parent_key),
                        &format!("RUN edit {seq}"),
                        "",
                        "seccomp",
                    ),
                    parent: Some(parent_key.clone()),
                    fs: child_fs,
                    state: state.clone(),
                };
                disk.persist_with_parent(&child, Some(&parent));
                black_box(child.id)
            })
        });

        assert_eq!(disk.stats().errors, 0, "persist errors during bench");
        let _ = std::fs::remove_dir_all(&scratch);
    }
    g.finish();
}

criterion_group!(benches, bench_store_persist);
criterion_main!(benches);
