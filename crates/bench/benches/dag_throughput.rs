//! Bench: stage-parallel throughput of one multi-stage build.
//!
//! Three DAG shapes × worker counts, all single-request batches (the
//! parallelism under test is *within* one build):
//!
//! * **linear** — an 8-stage chain: every stage depends on the last,
//!   so extra workers must buy nothing. The overhead floor.
//! * **diamond** — base → left + right → final: one overlap pair.
//! * **wide** — 8 independent middle stages on distinct bases joined
//!   by a final `COPY --from=` fan-in: maximum overlap, where workers
//!   hide the modeled pull latency of each base.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use zr_bench::{linear_stages, timed_dag, wide_stages, DIAMOND};
use zr_build::CacheMode;

const JOBS: [usize; 3] = [1, 2, 8];
const STAGES: usize = 8;

fn bench_shape(c: &mut Criterion, name: &str, dockerfile: &str) {
    let mut g = c.benchmark_group(format!("dag_throughput_{name}"));
    g.sample_size(3);
    for jobs in JOBS {
        g.bench_function(format!("jobs-{jobs}"), |b| {
            b.iter(|| {
                let (elapsed, digest) = timed_dag(jobs, black_box(dockerfile), CacheMode::Disabled);
                assert!(!digest.is_empty());
                elapsed
            })
        });
    }
    g.finish();
}

fn bench_linear(c: &mut Criterion) {
    bench_shape(c, "linear", &linear_stages(STAGES));
}

fn bench_diamond(c: &mut Criterion) {
    bench_shape(c, "diamond", DIAMOND);
}

fn bench_wide(c: &mut Criterion) {
    bench_shape(c, "wide", &wide_stages(STAGES));
}

criterion_group!(benches, bench_linear, bench_diamond, bench_wide);
criterion_main!(benches);
