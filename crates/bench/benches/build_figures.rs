//! Bench F1a/F1b/F2: end-to-end build time for each figure under every
//! relevant mode. The paper publishes no timings (perf testing is future
//! work 3); the reproduced *shape* is which builds complete and the
//! relative cost of the emulation modes on the same workload.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use zeroroot_core::Mode;
use zr_bench::{build_once, APT, FIG1A, FIG1B};

fn bench_fig1a(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1a_alpine_apk");
    g.sample_size(20);
    for (name, mode) in [("none", Mode::None), ("seccomp", Mode::Seccomp)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let (r, _) = build_once(black_box(FIG1A), mode);
                assert!(r.success);
                r
            })
        });
    }
    g.finish();
}

fn bench_fig1b_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1b_fig2_centos_yum");
    g.sample_size(20);
    // Figure 1b: fails under none (measure the failure path too — it is
    // what users hit first).
    g.bench_function("none_fails", |b| {
        b.iter(|| {
            let (r, _) = build_once(black_box(FIG1B), Mode::None);
            assert!(!r.success);
            r
        })
    });
    // Figure 2 and the comparison strategies on the same Dockerfile.
    for (name, mode) in [
        ("seccomp", Mode::Seccomp),
        ("fakeroot", Mode::Fakeroot),
        ("proot", Mode::Proot),
        ("proot_accel", Mode::ProotAccelerated),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let (r, _) = build_once(black_box(FIG1B), mode);
                assert!(r.success, "{name}");
                r
            })
        });
    }
    g.finish();
}

fn bench_apt(c: &mut Criterion) {
    let mut g = c.benchmark_group("apt_debian");
    g.sample_size(20);
    for (name, mode) in [
        ("none_softfail", Mode::None),
        ("seccomp_injected", Mode::Seccomp),
        ("seccomp_ids", Mode::SeccompIdConsistent),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let (r, _) = build_once(black_box(APT), mode);
                assert!(r.success, "{name}");
                r
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig1a, bench_fig1b_fig2, bench_apt);
criterion_main!(benches);
