//! Bench E-consist at scale: the state-maintenance cost of *consistent*
//! emulation versus the statelessness of zero consistency, driven by a
//! synthetic package workload (the knob the paper's discussion turns:
//! "state maintenance using a daemon process", §6 item 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zeroroot_core::Mode;
use zr_bench::armed;
use zr_kernel::SysExt;
use zr_pkg::install::{extract_package, ChownBehavior};
use zr_pkg::synthetic_repo;

/// Install `npkgs` synthetic packages (3 files each, 1 KiB, 30% foreign-
/// owned) under `mode`, rpm-style.
fn install_workload(mode: Mode, npkgs: usize) {
    let repo = synthetic_repo(npkgs, 3, 1, 30, 7);
    let (mut kernel, pid, strategy) = armed(mode);
    let last = format!("pkg{:04}", npkgs - 1);
    let order = repo.resolve(&[last.as_str()]).expect("resolves");
    let mut ctx = kernel.ctx(pid);
    for pkg in order {
        extract_package(&mut ctx, pkg, ChownBehavior::Always).expect("install");
    }
    strategy.teardown(&mut kernel);
}

fn bench_package_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("synthetic_install");
    g.sample_size(10);
    for npkgs in [2usize, 8, 24] {
        for (name, mode) in [
            ("seccomp", Mode::Seccomp),
            ("fakeroot", Mode::Fakeroot),
            ("proot", Mode::Proot),
            ("proot_accel", Mode::ProotAccelerated),
        ] {
            g.bench_with_input(BenchmarkId::new(name, npkgs), &npkgs, |b, &npkgs| {
                b.iter(|| install_workload(mode, npkgs))
            });
        }
    }
    g.finish();
}

fn bench_chown_stat_roundtrip(c: &mut Criterion) {
    // The consistency probe itself: chown then stat, repeatedly.
    let mut g = c.benchmark_group("chown_stat_roundtrip");
    for (name, mode) in [
        ("seccomp", Mode::Seccomp),
        ("fakeroot", Mode::Fakeroot),
        ("proot", Mode::Proot),
    ] {
        let (mut kernel, pid, _strategy) = armed(mode);
        {
            let mut ctx = kernel.ctx(pid);
            ctx.write_file("/probe", 0o644, b"x".to_vec())
                .expect("probe");
        }
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut ctx = kernel.ctx(pid);
                ctx.chown("/probe", 42, 42).expect("lie");
                ctx.stat("/probe").expect("truth or replay")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_package_sweep, bench_chown_stat_roundtrip);
criterion_main!(benches);
