//! Bench: the layer cache's warm-build win. The paper's iterative-build
//! story depends on unchanged Dockerfile prefixes skipping execution
//! entirely; this measures cold builds (execute everything, snapshot
//! every layer) against warm rebuilds (replay every layer, execute
//! nothing) and the common edit loop (invalidate the last RUN only).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use zeroroot_core::Mode;
use zr_bench::{build_once, warmed, FIG1B};

fn bench_cold_vs_warm(c: &mut Criterion) {
    let mut g = c.benchmark_group("layer_cache_fig2");
    g.sample_size(20);

    // Cold: fresh builder, every instruction executes.
    g.bench_function("cold", |b| {
        b.iter(|| {
            let (r, _) = build_once(black_box(FIG1B), Mode::Seccomp);
            assert!(r.success);
            assert_eq!(r.cache.hits, 0);
            r
        })
    });

    // Warm: every instruction replays from a snapshot.
    let (mut builder, mut kernel, opts) = warmed(FIG1B, Mode::Seccomp);
    g.bench_function("warm", |b| {
        b.iter(|| {
            let r = builder.build(&mut kernel, black_box(FIG1B), &opts);
            assert!(r.success);
            assert_eq!(r.cache.misses, 0, "warm rebuild executed something");
            r
        })
    });

    // Edit loop: FROM replays, the freshly edited RUN executes. A new
    // edit each iteration keeps the RUN a genuine miss (the previous
    // iteration's layer would otherwise warm it).
    let (mut builder, mut kernel, opts) = warmed(FIG1B, Mode::Seccomp);
    let mut edit = 0u64;
    g.bench_function("edit_last_run", |b| {
        b.iter(|| {
            edit += 1;
            let df = format!("FROM centos:7\nRUN echo edit-{edit} && yum install -y openssh\n");
            let r = builder.build(&mut kernel, black_box(&df), &opts);
            assert!(r.success);
            assert_eq!(r.cache.hits, 1, "the FROM layer must replay");
            r
        })
    });

    // --no-cache on a warmed builder: the regression baseline.
    let (mut builder, mut kernel, mut opts) = warmed(FIG1B, Mode::Seccomp);
    opts.cache = zr_build::CacheMode::Disabled;
    g.bench_function("no_cache", |b| {
        b.iter(|| {
            let r = builder.build(&mut kernel, black_box(FIG1B), &opts);
            assert!(r.success);
            assert_eq!(r.cache.hits, 0);
            r
        })
    });

    g.finish();
}

criterion_group!(benches, bench_cold_vs_warm);
criterion_main!(benches);
