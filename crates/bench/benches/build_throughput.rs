//! Bench: batch-build throughput under the scheduler.
//!
//! Two workloads × four worker counts:
//!
//! * **distinct** — 8 unrelated Dockerfiles, `--no-cache`: no layer
//!   sharing is possible, so this measures scheduling plus registry
//!   contention (the modeled pull latency is where workers win by
//!   overlapping waits).
//! * **identical** — 8 requests for the same Dockerfile with the cache
//!   enabled: after the first cold build the shared layer store replays
//!   everything, so this measures the cross-build cache.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use zr_bench::{distinct_dockerfiles, timed_batch};
use zr_build::CacheMode;

const JOBS: [usize; 4] = [1, 2, 4, 8];
const BATCH: usize = 8;

fn bench_distinct(c: &mut Criterion) {
    let mut g = c.benchmark_group("build_throughput_distinct");
    g.sample_size(3);
    let dockerfiles = distinct_dockerfiles(BATCH);
    for jobs in JOBS {
        g.bench_function(format!("jobs-{jobs}"), |b| {
            b.iter(|| {
                let (elapsed, digests) =
                    timed_batch(jobs, black_box(&dockerfiles), CacheMode::Disabled);
                assert_eq!(digests.len(), BATCH);
                elapsed
            })
        });
    }
    g.finish();
}

fn bench_identical(c: &mut Criterion) {
    let mut g = c.benchmark_group("build_throughput_identical");
    g.sample_size(3);
    let dockerfiles: Vec<String> = vec![distinct_dockerfiles(1).remove(0); BATCH];
    for jobs in JOBS {
        g.bench_function(format!("jobs-{jobs}"), |b| {
            b.iter(|| {
                let (elapsed, digests) =
                    timed_batch(jobs, black_box(&dockerfiles), CacheMode::Enabled);
                // Identical builds converge on identical content (only
                // the tag differs, and digests cover meta + tree).
                assert_eq!(digests.len(), BATCH);
                elapsed
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_distinct, bench_identical);
criterion_main!(benches);
