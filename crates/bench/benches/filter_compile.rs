//! Bench for the filter toolchain itself: spec→cBPF compilation,
//! kernel-style validation, and serialization — the "~150 lines of C"
//! whose Rust analogue should remain trivially cheap ("'emulation' is
//! complete once the filter is installed", §6 item 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use zr_seccomp::spec::{zero_consistency, zero_consistency_with_xattr};
use zr_syscalls::Arch;

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile");
    for n in 1..=Arch::ALL.len() {
        g.bench_with_input(BenchmarkId::new("arches", n), &n, |b, &n| {
            let spec = zero_consistency(&Arch::ALL[..n]);
            b.iter(|| zr_seccomp::compile(black_box(&spec)).expect("compiles"))
        });
    }
    g.bench_function("xattr_variant", |b| {
        let spec = zero_consistency_with_xattr(&Arch::ALL);
        b.iter(|| zr_seccomp::compile(black_box(&spec)).expect("compiles"))
    });
    g.finish();
}

fn bench_validate(c: &mut Criterion) {
    let prog = zr_seccomp::compile(&zero_consistency(&Arch::ALL)).expect("compiles");
    let mut g = c.benchmark_group("validate");
    g.bench_function("sk_chk_filter", |b| {
        b.iter(|| zr_bpf::validate(black_box(&prog)).expect("valid"))
    });
    g.bench_function("seccomp_check_filter", |b| {
        b.iter(|| zr_seccomp::check::check_seccomp(black_box(&prog)).expect("valid"))
    });
    g.finish();
}

fn bench_serialize(c: &mut Criterion) {
    let prog = zr_seccomp::compile(&zero_consistency(&Arch::ALL)).expect("compiles");
    c.bench_function("serialize_sock_fprog", |b| {
        b.iter(|| {
            let bytes = black_box(&prog).to_bytes();
            black_box(bytes)
        })
    });
}

criterion_group!(benches, bench_compile, bench_validate, bench_serialize);
criterion_main!(benches);
