//! Bench: snapshot + digest cost versus image size — the asymptote the
//! CoW refactor changes.
//!
//! Pre-refactor, every per-instruction snapshot deep-copied the image
//! and every digest re-hashed every byte, so the per-instruction hot
//! path scaled with *base image size*. With `Arc`-shared blobs,
//! copy-on-write inode pages and memoized digests it scales with the
//! *instruction delta*. The grid crosses base-image size with
//! instruction count:
//!
//! * `clone`      — the bare snapshot (O(pages), not O(bytes));
//! * `cold_hash`  — full-image digest from raw bytes (the old cost);
//! * `warm_delta` — snapshot + 1-file change + digest with warm memos
//!   (the new per-instruction cost);
//! * `chain`      — N snapshot+edit+digest steps in sequence, the
//!   shape of an N-instruction build.
//!
//! The `P-snap` paper-report gate pins the warm/cold ratio at the
//! largest grid point; this bench provides the full curve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use zr_bench::{snapshot_one_change, synthetic_image};

/// (files, bytes-per-file) grid points; the largest matches the
/// P-snap gate in paper-report.
const GRID: [(usize, usize); 3] = [(32, 4096), (128, 8192), (512, 8192)];

fn bench_snapshot_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("snapshot_scale");
    g.sample_size(20);

    for (files, bytes) in GRID {
        let image = synthetic_image(files, bytes);
        let label = format!("{files}x{bytes}");

        // The bare per-instruction snapshot.
        g.bench_with_input(BenchmarkId::new("clone", &label), &image, |b, image| {
            b.iter(|| black_box(image.fs.clone()))
        });

        // Cold full-image hash: what every digest used to cost.
        g.bench_with_input(BenchmarkId::new("cold_hash", &label), &image, |b, image| {
            b.iter(|| black_box(image.digest_uncached()))
        });

        // Warm 1-file delta: snapshot, edit, digest with shared memos.
        let mut edit = 0u64;
        let _ = image.digest(); // warm the blob + tree memos once
        g.bench_with_input(
            BenchmarkId::new("warm_delta", &label),
            &image,
            |b, image| {
                b.iter(|| {
                    edit += 1;
                    black_box(snapshot_one_change(image, edit))
                })
            },
        );

        // An 8-instruction chain of snapshot+edit+digest steps.
        g.bench_with_input(BenchmarkId::new("chain8", &label), &image, |b, image| {
            b.iter(|| {
                let mut digest = String::new();
                for step in 0..8u64 {
                    edit += 1;
                    digest = snapshot_one_change(image, edit * 100 + step);
                }
                black_box(digest)
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bench_snapshot_scale);
criterion_main!(benches);
