//! Bench: snapshot + digest cost versus image size — the asymptote the
//! CoW refactor changes.
//!
//! Pre-refactor, every per-instruction snapshot deep-copied the image
//! and every digest re-hashed every byte, so the per-instruction hot
//! path scaled with *base image size*. With `Arc`-shared blobs,
//! copy-on-write inode pages and memoized digests it scales with the
//! *instruction delta*. The grid crosses base-image size with
//! instruction count:
//!
//! * `clone`      — the bare snapshot (O(pages), not O(bytes));
//! * `cold_hash`  — full-image digest from raw bytes (the old cost);
//! * `warm_delta` — snapshot + 1-file change + digest with warm memos
//!   (the new per-instruction cost);
//! * `chain`      — N snapshot+edit+digest steps in sequence, the
//!   shape of an N-instruction build;
//! * `dir_touch`  — one file created next to a *huge sibling
//!   directory* right after a snapshot: the directory-entry CoW
//!   regression point (entry maps are `Arc`-shared, so a
//!   page-neighbor write must not deep-copy the big map).
//!
//! The `P-snap` paper-report gate pins the warm/cold ratio at the
//! largest grid point; this bench provides the full curve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use zr_bench::{snapshot_one_change, synthetic_image};

/// (files, bytes-per-file) grid points; the largest matches the
/// P-snap gate in paper-report.
const GRID: [(usize, usize); 3] = [(32, 4096), (128, 8192), (512, 8192)];

fn bench_snapshot_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("snapshot_scale");
    g.sample_size(20);

    for (files, bytes) in GRID {
        let image = synthetic_image(files, bytes);
        let label = format!("{files}x{bytes}");

        // The bare per-instruction snapshot.
        g.bench_with_input(BenchmarkId::new("clone", &label), &image, |b, image| {
            b.iter(|| black_box(image.fs.clone()))
        });

        // Cold full-image hash: what every digest used to cost.
        g.bench_with_input(BenchmarkId::new("cold_hash", &label), &image, |b, image| {
            b.iter(|| black_box(image.digest_uncached()))
        });

        // Warm 1-file delta: snapshot, edit, digest with shared memos.
        let mut edit = 0u64;
        let _ = image.digest(); // warm the blob + tree memos once
        g.bench_with_input(
            BenchmarkId::new("warm_delta", &label),
            &image,
            |b, image| {
                b.iter(|| {
                    edit += 1;
                    black_box(snapshot_one_change(image, edit))
                })
            },
        );

        // An 8-instruction chain of snapshot+edit+digest steps.
        g.bench_with_input(BenchmarkId::new("chain8", &label), &image, |b, image| {
            b.iter(|| {
                let mut digest = String::new();
                for step in 0..8u64 {
                    edit += 1;
                    digest = snapshot_one_change(image, edit * 100 + step);
                }
                black_box(digest)
            })
        });
    }

    // Directory-entry copy amplification: a directory with N entries
    // shares one CoW page with a tiny sibling directory. The measured
    // op — snapshot, then one single-entry insert into the *sibling* —
    // must stay flat in N (the big map rides the page copy as one
    // pointer clone). Before the Arc'd entry maps it scaled with N.
    for dir_entries in [64usize, 1024, 8192] {
        let root = zr_vfs::Access::root();
        let mut fs = zr_vfs::fs::Fs::new();
        fs.mkdir_p("/huge", 0o755).unwrap();
        fs.mkdir_p("/sibling", 0o755).unwrap();
        for i in 0..dir_entries {
            fs.write_file(&format!("/huge/f{i}"), 0o644, vec![b'x'], &root)
                .unwrap();
        }
        let mut edit = 0u64;
        g.bench_with_input(BenchmarkId::new("dir_touch", dir_entries), &fs, |b, fs| {
            b.iter(|| {
                let snap = fs.clone();
                let mut touched = fs.clone();
                edit += 1;
                touched
                    .write_file(&format!("/sibling/n{edit}"), 0o644, vec![b'y'], &root)
                    .unwrap();
                black_box((snap, touched))
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bench_snapshot_scale);
criterion_main!(benches);
