//! # zr-pkg — package-manager simulators
//!
//! The paper's argument is entirely about *which system calls package
//! managers issue* and whether they check the results. These simulators
//! reproduce exactly those sequences:
//!
//! * [`apk`] (Alpine) installs by writing files as the calling user and
//!   skips `chown` when ownership already matches — no privileged
//!   syscalls, which is why Figure 1a builds with `--force=none`.
//! * [`rpm`]/[`yum`] (CentOS) unpack cpio archives and **chown every
//!   entry** to the header's owner. openssh ships `ssh_keys`-group files,
//!   unmappable in a single-id Type III namespace — the `cpio: chown`
//!   failure of Figure 1b.
//! * [`dpkg`]/[`apt`] (Debian): apt drops privileges to `_apt` for
//!   downloads *and verifies the drop took effect* — the §5 exception
//!   that zero-consistency lying breaks, fixed by the
//!   `-o APT::Sandbox::User=root` injection.
//! * [`misc`] carries the supporting cast: the `sl` train, `fakeroot`
//!   when installed in an image, and `unminimize`, the known-failure case
//!   of §6 (it verifies its chowns, so simple lies are caught).
//!
//! [`register::register_image_binaries`] wires these behaviours to the
//! binaries an image ships (`zr-image`'s [`zr_image::BinKind`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apk;
pub mod apt;
pub mod dpkg;
pub mod install;
pub mod misc;
pub mod register;
pub mod repo;
pub mod rpm;
pub mod yum;

pub use register::register_image_binaries;
pub use repo::{synthetic_repo, Package, PayloadKind, PkgFile, Repo};
