//! rpm(8) — the low-level installer whose cpio unpack is Figure 1b's
//! point of failure.
//!
//! rpm extracts each archive entry and chowns it to the header's owner,
//! *unconditionally*, aborting the transaction on the first failure:
//!
//! ```text
//! Error unpacking rpm package openssh-7.4p1-23.el7_9.x86_64
//! error: unpacking of archive failed on file …: cpio: chown
//! ```

use std::sync::Arc;

use crate::install::{extract_package, run_post_install, ChownBehavior, InstallError};
use crate::repo::{Package, Repo};
use zr_kernel::{ExecEnv, Program, Sys, SysExt};

/// Install a single package rpm-style. Prints the paper's log shapes.
/// `index`/`total` drive the `(3/3)`-style progress column.
pub fn rpm_install_one(
    sys: &mut dyn Sys,
    pkg: &Package,
    index: usize,
    total: usize,
    env: &[(String, String)],
) -> Result<(), InstallError> {
    sys.println(format!(
        "  Installing : {}-{}.x86_64 {:>20}/{}",
        pkg.name, pkg.version, index, total
    ));
    match extract_package(sys, pkg, ChownBehavior::Always) {
        Ok(()) => {}
        Err(e) => {
            sys.println(format!(
                "Error unpacking rpm package {}-{}.x86_64",
                pkg.name, pkg.version
            ));
            sys.println(format!("error: unpacking of archive failed: {e}"));
            return Err(e);
        }
    }
    let _ = sys.append_file(
        "/var/lib/rpm/Packages",
        format!("{}-{}\n", pkg.name, pkg.version).as_bytes(),
    );
    let _ = run_post_install(sys, pkg, env);
    Ok(())
}

/// The `/usr/bin/rpm` binary: `rpm -i NAME…` against the repo.
pub struct Rpm {
    repo: Arc<Repo>,
}

impl Rpm {
    /// rpm backed by `repo`.
    pub fn new(repo: Arc<Repo>) -> Rpm {
        Rpm { repo }
    }
}

impl Program for Rpm {
    fn run(&mut self, sys: &mut dyn Sys, env: &mut ExecEnv) -> i32 {
        let args = env.args();
        let names: Vec<&str> = args
            .iter()
            .filter(|a| !a.starts_with('-'))
            .copied()
            .collect();
        if names.is_empty() || !args.iter().any(|a| a.starts_with("-i") || *a == "-U") {
            sys.println("rpm: usage: rpm -i PACKAGE…".to_string());
            return 1;
        }
        let order = match self.repo.resolve(&names) {
            Ok(o) => o,
            Err(e) => {
                sys.println(format!("error: {e}"));
                return 1;
            }
        };
        let total = order.len();
        for (i, pkg) in order.iter().enumerate() {
            if rpm_install_one(sys, pkg, i + 1, total, &env.env).is_err() {
                return 1;
            }
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repo::centos_repo;
    use zr_image::{ImageRef, Registry};
    use zr_kernel::{ContainerConfig, ContainerType, Kernel};

    fn centos_container() -> (Kernel, u32) {
        let mut k = Kernel::default_kernel();
        let mut img = Registry::new()
            .pull(&ImageRef::parse("centos:7").unwrap())
            .unwrap();
        img.chown_all(1000, 1000);
        let c = k
            .container_create(
                Kernel::HOST_USER_PID,
                ContainerConfig {
                    ctype: ContainerType::TypeIII,
                    image: img.fs,
                },
            )
            .unwrap();
        (k, c.init_pid)
    }

    #[test]
    fn rpm_install_openssh_fails_on_chown() {
        let (mut k, pid) = centos_container();
        let mut rpm = Rpm::new(Arc::new(centos_repo()));
        let mut env = ExecEnv {
            argv: vec!["rpm".into(), "-i".into(), "openssh".into()],
            ..Default::default()
        };
        let code = {
            let mut ctx = k.ctx(pid);
            rpm.run(&mut ctx, &mut env)
        };
        assert_eq!(code, 1);
        let console = k.take_console().join("\n");
        assert!(console.contains("cpio: chown"), "{console}");
        assert!(
            console.contains("Error unpacking rpm package openssh"),
            "{console}"
        );
    }

    #[test]
    fn rpm_install_sl_succeeds_all_root_files() {
        let (mut k, pid) = centos_container();
        let mut rpm = Rpm::new(Arc::new(centos_repo()));
        let mut env = ExecEnv {
            argv: vec!["rpm".into(), "-i".into(), "sl".into()],
            ..Default::default()
        };
        let code = {
            let mut ctx = k.ctx(pid);
            rpm.run(&mut ctx, &mut env)
        };
        assert_eq!(code, 0, "{:?}", k.take_console());
        // rpm DID issue privileged chown calls; they were no-ops.
        assert!(k.trace.any_privileged());
    }
}
