//! Synthetic package repositories.
//!
//! Deterministic stand-ins for distribution repos: each [`Package`] lists
//! dependencies, payload files *with the ownership the real package
//! declares* (this is the load-bearing part — `ssh_keys:998` is what
//! breaks Figure 1b), and maintainer scripts run through `/bin/sh`.

use std::collections::{BTreeMap, HashMap};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zr_syscalls::mode;

/// What a payload file is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PayloadKind {
    /// Regular file with content.
    File(Vec<u8>),
    /// Directory.
    Dir,
    /// Symlink to target.
    Symlink(String),
    /// Character device (major, minor) — requires privilege (or a lie).
    CharDev(u32, u32),
}

/// One entry of a package's payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PkgFile {
    /// Install path.
    pub path: String,
    /// Permission bits (may include setuid).
    pub perm: u32,
    /// Owner uid the archive header declares.
    pub uid: u32,
    /// Group gid the archive header declares.
    pub gid: u32,
    /// Payload.
    pub kind: PayloadKind,
}

impl PkgFile {
    /// Regular root-owned file.
    pub fn file(path: &str, perm: u32, content: &[u8]) -> PkgFile {
        PkgFile {
            path: path.into(),
            perm,
            uid: 0,
            gid: 0,
            kind: PayloadKind::File(content.to_vec()),
        }
    }

    /// Root-owned directory.
    pub fn dir(path: &str, perm: u32) -> PkgFile {
        PkgFile {
            path: path.into(),
            perm,
            uid: 0,
            gid: 0,
            kind: PayloadKind::Dir,
        }
    }

    /// With different ownership (the chown trigger).
    pub fn owned(mut self, uid: u32, gid: u32) -> PkgFile {
        self.uid = uid;
        self.gid = gid;
        self
    }

    /// The full mknod-style mode for the payload (type | perm).
    pub fn st_mode(&self) -> u32 {
        let ty = match self.kind {
            PayloadKind::File(_) => mode::S_IFREG,
            PayloadKind::Dir => mode::S_IFDIR,
            PayloadKind::Symlink(_) => mode::S_IFLNK,
            PayloadKind::CharDev(..) => mode::S_IFCHR,
        };
        ty | self.perm
    }
}

/// A package.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Package {
    /// Name.
    pub name: String,
    /// Version string (printed in install logs).
    pub version: String,
    /// Dependency names (must exist in the same repo).
    pub deps: Vec<String>,
    /// Payload entries, in archive order.
    pub files: Vec<PkgFile>,
    /// Post-install script (a `/bin/sh -c` line), if any.
    pub post_install: Option<String>,
    /// Approximate size in KiB (for "OK: N MiB" style output).
    pub size_kib: u32,
}

/// A repository: name → package.
#[derive(Debug, Clone, Default)]
pub struct Repo {
    packages: BTreeMap<String, Package>,
    /// Base URL printed in fetch lines.
    pub url: String,
}

/// Resolution failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// No such package.
    Unknown(String),
    /// Dependency cycle involving this package.
    Cycle(String),
}

impl std::fmt::Display for ResolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolveError::Unknown(p) => {
                write!(f, "unable to select packages: {p} (no such package)")
            }
            ResolveError::Cycle(p) => write!(f, "dependency cycle at {p}"),
        }
    }
}

impl Repo {
    /// Empty repo with a URL.
    pub fn new(url: &str) -> Repo {
        Repo {
            packages: BTreeMap::new(),
            url: url.into(),
        }
    }

    /// Add a package.
    pub fn add(&mut self, pkg: Package) {
        self.packages.insert(pkg.name.clone(), pkg);
    }

    /// Look up one package.
    pub fn get(&self, name: &str) -> Option<&Package> {
        self.packages.get(name)
    }

    /// Number of packages.
    pub fn len(&self) -> usize {
        self.packages.len()
    }

    /// Empty?
    pub fn is_empty(&self) -> bool {
        self.packages.is_empty()
    }

    /// Resolve `wanted` and all dependencies into install order
    /// (dependencies first), depth-first, deduplicated.
    pub fn resolve(&self, wanted: &[&str]) -> Result<Vec<&Package>, ResolveError> {
        let mut order: Vec<&Package> = Vec::new();
        let mut state: HashMap<&str, u8> = HashMap::new(); // 1=visiting, 2=done
        fn visit<'r>(
            repo: &'r Repo,
            name: &str,
            state: &mut HashMap<&'r str, u8>,
            order: &mut Vec<&'r Package>,
        ) -> Result<(), ResolveError> {
            let pkg = repo
                .get(name)
                .ok_or_else(|| ResolveError::Unknown(name.to_string()))?;
            match state.get(pkg.name.as_str()) {
                Some(2) => return Ok(()),
                Some(1) => return Err(ResolveError::Cycle(name.to_string())),
                _ => {}
            }
            state.insert(&pkg.name, 1);
            for dep in &pkg.deps {
                visit(repo, dep, state, order)?;
            }
            state.insert(&pkg.name, 2);
            order.push(pkg);
            Ok(())
        }
        for name in wanted {
            visit(self, name, &mut state, &mut order)?;
        }
        Ok(order)
    }
}

// =====================================================================
// the distro repos the paper's figures need
// =====================================================================

/// Alpine main repository. Everything root-owned: apk will not need a
/// single privileged call (Figure 1a).
pub fn alpine_repo() -> Repo {
    let mut r = Repo::new("https://dl-cdn.alpinelinux.org/alpine/v3.19");
    r.add(Package {
        name: "ncurses-terminfo-base".into(),
        version: "6.4_p20231125-r0".into(),
        deps: vec![],
        files: vec![
            PkgFile::dir("/usr/share/terminfo", 0o755),
            PkgFile::file("/usr/share/terminfo/x/xterm", 0o644, b"terminfo"),
        ],
        post_install: None,
        size_kib: 280,
    });
    r.add(Package {
        name: "libncursesw".into(),
        version: "6.4_p20231125-r0".into(),
        deps: vec!["ncurses-terminfo-base".into()],
        files: vec![PkgFile::file(
            "/usr/lib/libncursesw.so.6",
            0o755,
            b"\x7fELFlibncursesw",
        )],
        post_install: None,
        size_kib: 620,
    });
    r.add(Package {
        name: "sl".into(),
        version: "5.02-r1".into(),
        deps: vec!["libncursesw".into()],
        files: vec![PkgFile::file("/usr/bin/sl", 0o755, b"\x7fELF/usr/bin/sl")],
        post_install: None,
        size_kib: 28,
    });
    r.add(Package {
        name: "fakeroot".into(),
        version: "1.32.1-r0".into(),
        deps: vec![],
        files: vec![
            PkgFile::file("/usr/bin/fakeroot", 0o755, b"\x7fELF/usr/bin/fakeroot"),
            PkgFile::file("/usr/lib/libfakeroot.so", 0o755, b"\x7fELFlibfakeroot"),
        ],
        post_install: None,
        size_kib: 180,
    });
    r
}

/// CentOS 7 base repository. openssh carries the `ssh_keys` group (gid
/// 998) files that make rpm's cpio chown fail in a Type III container.
pub fn centos_repo() -> Repo {
    let mut r = Repo::new("http://mirror.centos.org/centos/7/os/x86_64");
    r.add(Package {
        name: "fipscheck-lib".into(),
        version: "1.4.1-6.el7".into(),
        deps: vec![],
        files: vec![PkgFile::file(
            "/usr/lib64/libfipscheck.so.1",
            0o755,
            b"\x7fELFlibfipscheck",
        )],
        post_install: None,
        size_kib: 30,
    });
    r.add(Package {
        name: "fipscheck".into(),
        version: "1.4.1-6.el7".into(),
        deps: vec!["fipscheck-lib".into()],
        files: vec![PkgFile::file(
            "/usr/bin/fipscheck",
            0o755,
            b"\x7fELFfipscheck",
        )],
        post_install: None,
        size_kib: 21,
    });
    r.add(Package {
        name: "openssh".into(),
        version: "7.4p1-23.el7_9".into(),
        deps: vec!["fipscheck".into()],
        files: vec![
            PkgFile::dir("/etc/ssh", 0o755),
            PkgFile::file("/usr/sbin/sshd", 0o755, b"\x7fELFsshd"),
            // THE failing entry: group ssh_keys (gid 998) — unmapped in a
            // single-id user namespace, so fchownat returns EINVAL and
            // rpm aborts with "cpio: chown".
            PkgFile::file(
                "/usr/libexec/openssh/ssh-keysign",
                0o4755,
                b"\x7fELFkeysign",
            )
            .owned(0, 998),
            PkgFile::dir("/var/empty/sshd", 0o711),
        ],
        post_install: Some("mkdir -p /var/empty/sshd && chmod 711 /var/empty/sshd".into()),
        size_kib: 1100,
    });
    r.add(Package {
        name: "sl".into(),
        version: "5.02-1.el7".into(),
        deps: vec![],
        files: vec![PkgFile::file("/usr/bin/sl", 0o755, b"\x7fELF/usr/bin/sl")],
        post_install: None,
        size_kib: 28,
    });
    r.add(Package {
        name: "fakeroot".into(),
        version: "1.26-1.el7".into(),
        deps: vec![],
        files: vec![
            PkgFile::file("/usr/bin/fakeroot", 0o755, b"\x7fELF/usr/bin/fakeroot"),
            PkgFile::file("/usr/lib64/libfakeroot.so", 0o755, b"\x7fELFlibfakeroot"),
        ],
        post_install: None,
        size_kib: 200,
    });
    r
}

/// Debian bookworm repository: hello (harmless), openssh-server (chown
/// needs), systemd (setxattr + device nodes — §6 future work 1), and
/// fakeroot for `--force=fakeroot` provisioning.
pub fn debian_repo() -> Repo {
    let mut r = Repo::new("http://deb.debian.org/debian/bookworm");
    r.add(Package {
        name: "hello".into(),
        version: "2.10-3".into(),
        deps: vec![],
        files: vec![PkgFile::file("/usr/bin/hello", 0o755, b"\x7fELFhello")],
        post_install: None,
        size_kib: 56,
    });
    r.add(Package {
        name: "libssl3".into(),
        version: "3.0.11-1".into(),
        deps: vec![],
        files: vec![PkgFile::file(
            "/usr/lib/libssl.so.3",
            0o755,
            b"\x7fELFlibssl",
        )],
        post_install: None,
        size_kib: 2100,
    });
    r.add(Package {
        name: "openssh-server".into(),
        version: "9.2p1-2".into(),
        deps: vec!["libssl3".into()],
        files: vec![
            PkgFile::dir("/etc/ssh", 0o755),
            PkgFile::file("/usr/sbin/sshd", 0o755, b"\x7fELFsshd"),
            PkgFile::dir("/run/sshd", 0o755).owned(0, 0),
            // Debian uses a dedicated uid for the privilege-separated dir.
            PkgFile::file("/etc/ssh/ssh_host_ed25519_key", 0o600, b"PRIVATE").owned(0, 998),
        ],
        post_install: Some("mkdir -p /run/sshd".into()),
        size_kib: 1500,
    });
    r.add(Package {
        name: "systemd".into(),
        version: "252.22-1".into(),
        deps: vec![],
        files: vec![
            PkgFile::file("/usr/lib/systemd/systemd", 0o755, b"\x7fELFsystemd"),
            PkgFile::dir("/etc/systemd", 0o755),
        ],
        // systemd's postinst needs privileged xattrs and device nodes —
        // the §6 future-work case.
        post_install: Some("mknod /dev/null-sd c 1 3 && echo done-with-devices".into()),
        size_kib: 9800,
    });
    r.add(Package {
        name: "fakeroot".into(),
        version: "1.31-1.2".into(),
        deps: vec![],
        files: vec![
            PkgFile::file("/usr/bin/fakeroot", 0o755, b"\x7fELF/usr/bin/fakeroot"),
            PkgFile::file("/usr/lib/libfakeroot-0.so", 0o755, b"\x7fELFlibfakeroot"),
        ],
        post_install: None,
        size_kib: 350,
    });
    r
}

/// A deterministic synthetic repo for benchmark sweeps: `npkgs` packages
/// in a dependency chain, each with `files_per_pkg` root-owned files of
/// `file_kib` KiB, plus a fraction of differently-owned files to trigger
/// chown paths.
pub fn synthetic_repo(
    npkgs: usize,
    files_per_pkg: usize,
    file_kib: usize,
    owned_fraction_percent: u32,
    seed: u64,
) -> Repo {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut r = Repo::new("https://bench.invalid/repo");
    for i in 0..npkgs {
        let name = format!("pkg{i:04}");
        let deps = if i == 0 {
            vec![]
        } else {
            vec![format!("pkg{:04}", i - 1)]
        };
        let mut files = vec![PkgFile::dir(&format!("/opt/{name}"), 0o755)];
        for f in 0..files_per_pkg {
            let mut content = vec![0u8; file_kib * 1024];
            rng.fill(&mut content[..]);
            let mut file = PkgFile::file(&format!("/opt/{name}/file{f:03}"), 0o644, &content);
            if rng.gen_range(0..100) < owned_fraction_percent {
                file = file.owned(rng.gen_range(1..1000), rng.gen_range(1..1000));
            }
            files.push(file);
        }
        r.add(Package {
            name,
            version: "1.0".into(),
            deps,
            files,
            post_install: None,
            size_kib: (files_per_pkg * file_kib) as u32,
        });
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_orders_dependencies_first() {
        let repo = alpine_repo();
        let order = repo.resolve(&["sl"]).unwrap();
        let names: Vec<&str> = order.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["ncurses-terminfo-base", "libncursesw", "sl"]);
    }

    #[test]
    fn resolve_dedupes() {
        let repo = alpine_repo();
        let order = repo.resolve(&["sl", "libncursesw"]).unwrap();
        assert_eq!(order.len(), 3, "shared deps appear once");
    }

    #[test]
    fn unknown_package() {
        let repo = alpine_repo();
        assert_eq!(
            repo.resolve(&["doom"]).err(),
            Some(ResolveError::Unknown("doom".into()))
        );
    }

    #[test]
    fn cycle_detected() {
        let mut repo = Repo::new("x");
        repo.add(Package {
            name: "a".into(),
            deps: vec!["b".into()],
            ..Default::default()
        });
        repo.add(Package {
            name: "b".into(),
            deps: vec!["a".into()],
            ..Default::default()
        });
        assert!(matches!(repo.resolve(&["a"]), Err(ResolveError::Cycle(_))));
    }

    #[test]
    fn openssh_carries_the_poison_file() {
        let repo = centos_repo();
        let openssh = repo.get("openssh").unwrap();
        assert!(
            openssh.files.iter().any(|f| f.gid == 998),
            "ssh_keys-owned file is the Figure 1b trigger"
        );
        // And it resolves to exactly 3 packages like the paper's output
        // ("Installing : openssh-7.4p1-23.el7_9.x86_64 3/3").
        assert_eq!(repo.resolve(&["openssh"]).unwrap().len(), 3);
    }

    #[test]
    fn alpine_sl_is_all_root_owned() {
        let repo = alpine_repo();
        for pkg in repo.resolve(&["sl"]).unwrap() {
            for f in &pkg.files {
                assert_eq!((f.uid, f.gid), (0, 0), "{}", f.path);
            }
        }
    }

    #[test]
    fn synthetic_repo_is_deterministic() {
        let a = synthetic_repo(5, 3, 1, 20, 42);
        let b = synthetic_repo(5, 3, 1, 20, 42);
        assert_eq!(a.len(), b.len());
        let pa = a.get("pkg0002").unwrap();
        let pb = b.get("pkg0002").unwrap();
        assert_eq!(pa.files, pb.files);
        // Chain dependency shape.
        assert_eq!(pa.deps, vec!["pkg0001".to_string()]);
        assert_eq!(a.resolve(&["pkg0004"]).unwrap().len(), 5);
    }

    #[test]
    fn st_mode_types() {
        assert_eq!(
            PkgFile::dir("/d", 0o755).st_mode() & mode::S_IFMT,
            mode::S_IFDIR
        );
        assert_eq!(
            PkgFile::file("/f", 0o644, b"").st_mode() & mode::S_IFMT,
            mode::S_IFREG
        );
    }
}
