//! apt(8)/apt-get(8) — the §5 exception.
//!
//! "Debian's apt(8) … by default drops privileges for downloading
//! packages over HTTP(S) and also verifies that they were dropped
//! correctly. This validation fails under our seccomp filter."
//!
//! The drop sequence is `setgroups([])`, `setresgid(nogroup)`,
//! `setresuid(_apt)`, then a **verification** via `getresuid`/
//! `getresgid`. Three outcomes matter to the experiments:
//!
//! * the syscalls *fail honestly* (plain Type III): apt warns and
//!   continues unsandboxed — builds of root-owned packages still work;
//! * the syscalls *lie without memory* (zero-consistency seccomp): the
//!   verification catches the mismatch and apt aborts — unless the
//!   paper's `-o APT::Sandbox::User=root` injection skips the drop;
//! * the syscalls *lie with memory* (fakeroot, PRoot, or the §6
//!   uid/gid-consistent filter): verification passes, no workaround
//!   needed.

use std::sync::Arc;

use crate::dpkg::{dpkg_configure, dpkg_unpack};
use crate::repo::Repo;
use zr_kernel::{ExecEnv, Program, Sys, SysError, SysExt};
use zr_syscalls::Errno;

/// The uid of `_apt` in our Debian image's /etc/passwd.
const APT_UID: u32 = 100;
/// Debian's `nogroup`.
const NOGROUP_GID: u32 = 65534;

/// Outcome of the privilege-drop attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
enum DropOutcome {
    /// Sandbox user is root: drop skipped entirely (the workaround path).
    Skipped,
    /// Drop appears done and verified.
    Dropped,
    /// Kernel refused honestly; continue unsandboxed with a warning.
    SoftFailed(Errno),
    /// Calls "succeeded" but verification failed — abort (the §5 trap).
    VerificationFailed,
}

fn attempt_drop(sys: &mut dyn Sys, sandbox_user: &str) -> DropOutcome {
    if sandbox_user == "root" {
        return DropOutcome::Skipped;
    }
    // setgroups first (must happen while still "privileged").
    if let Err(SysError::Errno(e)) = sys.setgroups(&[]) {
        return DropOutcome::SoftFailed(e);
    }
    if let Err(SysError::Errno(e)) =
        sys.setresgid(Some(NOGROUP_GID), Some(NOGROUP_GID), Some(NOGROUP_GID))
    {
        return DropOutcome::SoftFailed(e);
    }
    if let Err(SysError::Errno(e)) = sys.setresuid(Some(APT_UID), Some(APT_UID), Some(APT_UID)) {
        return DropOutcome::SoftFailed(e);
    }
    // The verification the paper calls out.
    let (ruid, euid, suid) = sys.getresuid();
    let (rgid, egid, sgid) = sys.getresgid();
    if (ruid, euid, suid) == (APT_UID, APT_UID, APT_UID)
        && (rgid, egid, sgid) == (NOGROUP_GID, NOGROUP_GID, NOGROUP_GID)
    {
        DropOutcome::Dropped
    } else {
        DropOutcome::VerificationFailed
    }
}

fn restore_privileges(sys: &mut dyn Sys) {
    let _ = sys.setresuid(Some(0), Some(0), Some(0));
    let _ = sys.setresgid(Some(0), Some(0), Some(0));
    let _ = sys.setgroups(&[]);
}

/// The apt/apt-get program.
pub struct Apt {
    repo: Arc<Repo>,
    /// "apt" or "apt-get" (log cosmetics only).
    pub brand: &'static str,
}

impl Apt {
    /// apt backed by `repo`.
    pub fn new(repo: Arc<Repo>, brand: &'static str) -> Apt {
        Apt { repo, brand }
    }

    /// Run the download phase under the sandbox rules. Returns false on
    /// hard failure.
    fn download(&self, sys: &mut dyn Sys, sandbox_user: &str, names: &[&str]) -> bool {
        match attempt_drop(sys, sandbox_user) {
            DropOutcome::Skipped => {
                sys.println(
                    "W: Download is performed unsandboxed as root (APT::Sandbox::User=root)"
                        .to_string(),
                );
            }
            DropOutcome::SoftFailed(e) => {
                sys.println(format!(
                    "W: Can't drop privileges for downloading ({e}); continuing unsandboxed"
                ));
            }
            DropOutcome::Dropped => {}
            DropOutcome::VerificationFailed => {
                sys.println(
                    "E: setgroups/setresuid reported success but ids are unchanged".to_string(),
                );
                sys.println("E: Could not switch the sandbox user '_apt'".to_string());
                return false;
            }
        }
        for (i, name) in names.iter().enumerate() {
            if let Some(pkg) = self.repo.get(name) {
                sys.println(format!(
                    "Get:{} {} bookworm/main amd64 {} {} [{} kB]",
                    i + 1,
                    self.repo.url,
                    pkg.name,
                    pkg.version,
                    pkg.size_kib
                ));
            }
        }
        restore_privileges(sys);
        sys.println("Fetched 1 kB in 0s (12.3 kB/s)".to_string());
        true
    }

    fn install(&self, sys: &mut dyn Sys, env: &ExecEnv, sandbox_user: &str, names: &[&str]) -> i32 {
        sys.println("Reading package lists... Done".to_string());
        sys.println("Building dependency tree... Done".to_string());
        let order = match self.repo.resolve(names) {
            Ok(o) => o,
            Err(e) => {
                sys.println(format!("E: Unable to locate package: {e}"));
                return 100;
            }
        };
        sys.println("The following NEW packages will be installed:".to_string());
        sys.println(format!(
            "  {}",
            order
                .iter()
                .map(|p| p.name.as_str())
                .collect::<Vec<_>>()
                .join(" ")
        ));

        let all: Vec<&str> = order.iter().map(|p| p.name.as_str()).collect();
        if !self.download(sys, sandbox_user, &all) {
            return 100;
        }

        for pkg in &order {
            if dpkg_unpack(sys, pkg).is_err() {
                sys.println("E: Sub-process /usr/bin/dpkg returned an error code (1)".to_string());
                return 100;
            }
        }
        for pkg in &order {
            if dpkg_configure(sys, pkg, &env.env).is_err() {
                sys.println("E: Sub-process /usr/bin/dpkg returned an error code (1)".to_string());
                return 100;
            }
        }
        0
    }

    fn update(&self, sys: &mut dyn Sys, sandbox_user: &str) -> i32 {
        match attempt_drop(sys, sandbox_user) {
            DropOutcome::VerificationFailed => {
                sys.println("E: Could not switch the sandbox user '_apt'".to_string());
                return 100;
            }
            DropOutcome::SoftFailed(e) => {
                sys.println(format!(
                    "W: Can't drop privileges for downloading ({e}); continuing unsandboxed"
                ));
            }
            _ => {}
        }
        sys.println(format!(
            "Get:1 {} bookworm InRelease [151 kB]",
            self.repo.url
        ));
        restore_privileges(sys);
        sys.println("Reading package lists... Done".to_string());
        0
    }
}

impl Program for Apt {
    fn run(&mut self, sys: &mut dyn Sys, env: &mut ExecEnv) -> i32 {
        // Parse -o options (the injection target) and the subcommand.
        let mut sandbox_user = "_apt".to_string();
        let mut words: Vec<&str> = Vec::new();
        let args = env.args();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if *a == "-o" {
                if let Some(opt) = it.next() {
                    if let Some(v) = opt.strip_prefix("APT::Sandbox::User=") {
                        sandbox_user = v.to_string();
                    }
                }
            } else if let Some(v) = a.strip_prefix("-oAPT::Sandbox::User=") {
                sandbox_user = v.to_string();
            } else if a.starts_with('-') {
                // -y, -q, … ignored
            } else {
                words.push(a);
            }
        }
        let env_clone = env.clone();
        match words.split_first() {
            Some((&"install", names)) if !names.is_empty() => {
                self.install(sys, &env_clone, &sandbox_user, names)
            }
            Some((&"update", _)) => self.update(sys, &sandbox_user),
            _ => {
                sys.println(format!(
                    "{}: usage: {} install -y PKG…",
                    self.brand, self.brand
                ));
                100
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repo::debian_repo;
    use zr_image::{ImageRef, Registry};
    use zr_kernel::{ContainerConfig, ContainerType, Kernel};

    fn debian_container() -> (Kernel, u32) {
        let mut k = Kernel::default_kernel();
        let mut img = Registry::new()
            .pull(&ImageRef::parse("debian:12").unwrap())
            .unwrap();
        img.chown_all(1000, 1000);
        let c = k
            .container_create(
                Kernel::HOST_USER_PID,
                ContainerConfig {
                    ctype: ContainerType::TypeIII,
                    image: img.fs,
                },
            )
            .unwrap();
        crate::register::register_image_binaries(&mut k, &img.meta);
        (k, c.init_pid)
    }

    fn run_apt(k: &mut Kernel, pid: u32, args: &[&str]) -> i32 {
        let mut apt = Apt::new(Arc::new(debian_repo()), "apt-get");
        let mut argv = vec!["apt-get".to_string()];
        argv.extend(args.iter().map(|s| s.to_string()));
        let mut env = ExecEnv {
            argv,
            ..Default::default()
        };
        let mut ctx = k.ctx(pid);
        apt.run(&mut ctx, &mut env)
    }

    #[test]
    fn plain_type_iii_soft_fails_and_succeeds() {
        // Without any filter the drop fails honestly (setgroups EPERM):
        // apt warns and installs hello fine.
        let (mut k, pid) = debian_container();
        let code = run_apt(&mut k, pid, &["install", "-y", "hello"]);
        assert_eq!(code, 0, "{:?}", k.take_console());
        let console = k.take_console().join("\n");
        assert!(console.contains("W: Can't drop privileges"), "{console}");
        assert!(console.contains("Setting up hello"), "{console}");
    }

    #[test]
    fn under_seccomp_verification_fails_without_workaround() {
        let (mut k, pid) = debian_container();
        // Install the paper's filter on the container process.
        let prog = zr_seccomp::compile(&zr_seccomp::spec::zero_consistency(&[
            zr_syscalls::Arch::X8664,
        ]))
        .unwrap();
        {
            let mut ctx = k.ctx(pid);
            ctx.set_no_new_privs().unwrap();
            ctx.seccomp_install(prog).unwrap();
        }
        let code = run_apt(&mut k, pid, &["install", "-y", "hello"]);
        assert_eq!(code, 100, "the §5 exception");
        let console = k.take_console().join("\n");
        assert!(
            console.contains("Could not switch the sandbox user"),
            "{console}"
        );
    }

    #[test]
    fn workaround_option_skips_the_drop() {
        let (mut k, pid) = debian_container();
        let prog = zr_seccomp::compile(&zr_seccomp::spec::zero_consistency(&[
            zr_syscalls::Arch::X8664,
        ]))
        .unwrap();
        {
            let mut ctx = k.ctx(pid);
            ctx.set_no_new_privs().unwrap();
            ctx.seccomp_install(prog).unwrap();
        }
        let code = run_apt(
            &mut k,
            pid,
            &["-o", "APT::Sandbox::User=root", "install", "-y", "hello"],
        );
        assert_eq!(code, 0, "{:?}", k.take_console());
        let console = k.take_console().join("\n");
        assert!(console.contains("unsandboxed as root"), "{console}");
    }
}
