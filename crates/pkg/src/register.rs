//! Wire image binaries to simulated behaviours.

use std::sync::Arc;

use crate::apk::Apk;
use crate::apt::Apt;
use crate::dpkg::Dpkg;
use crate::misc::{Applet, FakerootBin, Hello, Sl, TrueBin, Unminimize};
use crate::repo::{alpine_repo, centos_repo, debian_repo, Repo};
use crate::rpm::Rpm;
use crate::yum::Yum;
use zr_image::{BinKind, Distro, ImageMeta};
use zr_kernel::program::Linkage;
use zr_kernel::Kernel;
use zr_shell::ShellProgram;

/// The repository a distro's package manager talks to.
pub fn repo_for(distro: Distro) -> Repo {
    match distro {
        Distro::Alpine => alpine_repo(),
        Distro::Centos | Distro::Fedora => centos_repo(),
        Distro::Debian => debian_repo(),
        Distro::Scratch => Repo::new("none"),
    }
}

fn linkage(l: zr_image::Linkage) -> Linkage {
    match l {
        zr_image::Linkage::Dynamic => Linkage::Dynamic,
        zr_image::Linkage::Static => Linkage::Static,
    }
}

/// Register the behaviour of every binary `meta` declares, plus the
/// binaries its repo packages can install (so `RUN sl` works after
/// `RUN apk add sl`).
pub fn register_image_binaries(kernel: &mut Kernel, meta: &ImageMeta) {
    let repo = Arc::new(repo_for(meta.distro));

    for bin in &meta.binaries {
        let link = linkage(bin.linkage);
        let path = bin.path.as_str();
        match bin.kind {
            BinKind::Shell | BinKind::Busybox => {
                kernel
                    .registry
                    .register(path, link, || Box::new(ShellProgram));
            }
            BinKind::Apk => {
                let repo = repo.clone();
                kernel
                    .registry
                    .register(path, link, move || Box::new(Apk::new(repo.clone())));
            }
            BinKind::Rpm => {
                let repo = repo.clone();
                kernel
                    .registry
                    .register(path, link, move || Box::new(Rpm::new(repo.clone())));
            }
            BinKind::Yum => {
                let repo = repo.clone();
                kernel
                    .registry
                    .register(path, link, move || Box::new(Yum::new(repo.clone())));
            }
            BinKind::Dnf => {
                let repo = repo.clone();
                kernel
                    .registry
                    .register(path, link, move || Box::new(Yum::dnf(repo.clone())));
            }
            BinKind::Dpkg => {
                let repo = repo.clone();
                kernel
                    .registry
                    .register(path, link, move || Box::new(Dpkg::new(repo.clone())));
            }
            BinKind::Apt => {
                let repo = repo.clone();
                kernel
                    .registry
                    .register(path, link, move || Box::new(Apt::new(repo.clone(), "apt")));
            }
            BinKind::AptGet => {
                let repo = repo.clone();
                kernel.registry.register(path, link, move || {
                    Box::new(Apt::new(repo.clone(), "apt-get"))
                });
            }
            BinKind::Fakeroot => {
                kernel
                    .registry
                    .register(path, link, || Box::new(FakerootBin));
            }
            BinKind::Unminimize => {
                kernel
                    .registry
                    .register(path, link, || Box::new(Unminimize));
            }
            BinKind::True => {
                kernel.registry.register(path, link, || Box::new(TrueBin));
            }
            BinKind::Id | BinKind::ChownTool | BinKind::MknodTool => {
                kernel.registry.register(path, link, || Box::new(Applet));
            }
            BinKind::Sl => {
                kernel.registry.register(path, link, || Box::new(Sl));
            }
        }
    }

    // Binaries that packages may install later. Registering behaviour up
    // front is harmless: exec still requires the file to exist.
    kernel
        .registry
        .register("/usr/bin/sl", Linkage::Dynamic, || Box::new(Sl));
    kernel
        .registry
        .register("/usr/bin/hello", Linkage::Dynamic, || Box::new(Hello));
    kernel
        .registry
        .register("/usr/bin/fakeroot", Linkage::Dynamic, || {
            Box::new(FakerootBin)
        });
    kernel
        .registry
        .register("/usr/bin/fipscheck", Linkage::Dynamic, || Box::new(TrueBin));
    kernel
        .registry
        .register("/usr/sbin/sshd", Linkage::Dynamic, || Box::new(TrueBin));
    kernel
        .registry
        .register("/usr/lib/systemd/systemd", Linkage::Dynamic, || {
            Box::new(TrueBin)
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use zr_image::{ImageRef, Registry};
    use zr_kernel::{ContainerConfig, ContainerType, SysExt};

    #[test]
    fn alpine_binaries_registered_and_runnable() {
        let mut k = Kernel::default_kernel();
        let mut img = Registry::new()
            .pull(&ImageRef::parse("alpine:3.19").unwrap())
            .unwrap();
        img.chown_all(1000, 1000);
        register_image_binaries(&mut k, &img.meta);
        let c = k
            .container_create(
                Kernel::HOST_USER_PID,
                ContainerConfig {
                    ctype: ContainerType::TypeIII,
                    image: img.fs,
                },
            )
            .unwrap();
        let mut ctx = k.ctx(c.init_pid);
        // /bin/sh resolves through the busybox symlink to the shell.
        let code = ctx
            .spawn("/bin/sh", &["sh", "-c", "echo from-shell"], &[])
            .unwrap();
        assert_eq!(code, 0);
        assert_eq!(k.take_console(), vec!["from-shell".to_string()]);
    }

    #[test]
    fn repo_selection() {
        assert!(repo_for(Distro::Alpine).get("sl").is_some());
        assert!(repo_for(Distro::Centos).get("openssh").is_some());
        assert!(repo_for(Distro::Debian).get("hello").is_some());
        assert!(repo_for(Distro::Scratch).is_empty());
    }
}
