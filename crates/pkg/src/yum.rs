//! yum(8) — depsolver over rpm, with the transaction/rollback theater
//! Figure 1b and Figure 2 show.

use std::sync::Arc;

use crate::install::rollback_is_needed;
use crate::repo::Repo;
use crate::rpm::rpm_install_one;
use zr_kernel::{ExecEnv, Program, Sys, SysExt};

/// The yum/dnf program (dnf shares the engine).
pub struct Yum {
    repo: Arc<Repo>,
    /// "yum" or "dnf" — changes only the log header.
    pub brand: &'static str,
}

impl Yum {
    /// yum backed by `repo`.
    pub fn new(repo: Arc<Repo>) -> Yum {
        Yum { repo, brand: "yum" }
    }

    /// dnf variant.
    pub fn dnf(repo: Arc<Repo>) -> Yum {
        Yum { repo, brand: "dnf" }
    }

    fn install(&self, sys: &mut dyn Sys, env: &ExecEnv, names: &[&str]) -> i32 {
        sys.println(format!("Loaded plugins: fastestmirror ({})", self.brand));
        sys.println("Resolving Dependencies".to_string());
        let order = match self.repo.resolve(names) {
            Ok(o) => o,
            Err(e) => {
                sys.println(format!("No package available: {e}"));
                return 1;
            }
        };
        sys.println("Dependencies Resolved".to_string());
        sys.println(String::new());
        sys.println("Installing:".to_string());
        for pkg in &order {
            sys.println(format!("  {:<24} x86_64  {}", pkg.name, pkg.version));
        }
        sys.println(String::new());
        sys.println("Running transaction".to_string());

        let total = order.len();
        let mut installed: Vec<usize> = Vec::new();
        for (i, pkg) in order.iter().enumerate() {
            match rpm_install_one(sys, pkg, i + 1, total, &env.env) {
                Ok(()) => installed.push(i),
                Err(e) => {
                    sys.println(format!(
                        "error: {}-{}.x86_64: install failed",
                        pkg.name, pkg.version
                    ));
                    if rollback_is_needed(&e) {
                        sys.println("something went wrong, rolling back ...".to_string());
                        for &j in installed.iter().rev() {
                            crate::install::rollback_package(sys, order[j]);
                            sys.println(format!(
                                "  Erasing    : {}-{}.x86_64",
                                order[j].name, order[j].version
                            ));
                        }
                    }
                    return 1;
                }
            }
        }
        sys.println(String::new());
        sys.println("Complete!".to_string());
        0
    }
}

impl Program for Yum {
    fn run(&mut self, sys: &mut dyn Sys, env: &mut ExecEnv) -> i32 {
        let args = env.args();
        let args: Vec<&str> = args
            .iter()
            .filter(|a| !a.starts_with('-'))
            .copied()
            .collect();
        match args.split_first() {
            Some((&"install", names)) if !names.is_empty() => {
                let env_clone = env.clone();
                self.install(sys, &env_clone, names)
            }
            Some((&"makecache", _)) | Some((&"update", _)) => {
                sys.println("Metadata Cache Created".to_string());
                0
            }
            _ => {
                sys.println(format!(
                    "{}: usage: {} install -y PKG…",
                    self.brand, self.brand
                ));
                1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repo::centos_repo;
    use zr_image::{ImageRef, Registry};
    use zr_kernel::{ContainerConfig, ContainerType, Kernel};

    fn centos_container() -> (Kernel, u32) {
        let mut k = Kernel::default_kernel();
        let mut img = Registry::new()
            .pull(&ImageRef::parse("centos:7").unwrap())
            .unwrap();
        img.chown_all(1000, 1000);
        let c = k
            .container_create(
                Kernel::HOST_USER_PID,
                ContainerConfig {
                    ctype: ContainerType::TypeIII,
                    image: img.fs,
                },
            )
            .unwrap();
        (k, c.init_pid)
    }

    fn run_yum(k: &mut Kernel, pid: u32, names: &[&str]) -> i32 {
        let mut yum = Yum::new(Arc::new(centos_repo()));
        let mut argv = vec!["yum".to_string(), "install".to_string(), "-y".to_string()];
        argv.extend(names.iter().map(|s| s.to_string()));
        let mut env = ExecEnv {
            argv,
            ..Default::default()
        };
        let mut ctx = k.ctx(pid);
        yum.run(&mut ctx, &mut env)
    }

    #[test]
    fn figure_1b_yum_openssh_fails_and_rolls_back() {
        let (mut k, pid) = centos_container();
        let code = run_yum(&mut k, pid, &["openssh"]);
        assert_eq!(code, 1);
        let console = k.take_console().join("\n");
        assert!(
            console.contains("Installing : openssh-7.4p1-23.el7_9.x86_64"),
            "{console}"
        );
        assert!(console.contains("cpio: chown"), "{console}");
        assert!(
            console.contains("something went wrong, rolling back"),
            "{console}"
        );
        // Rollback removed the dependencies that had installed.
        let mut ctx = k.ctx(pid);
        assert!(!ctx.exists("/usr/bin/fipscheck"));
    }

    #[test]
    fn yum_sl_succeeds() {
        let (mut k, pid) = centos_container();
        let code = run_yum(&mut k, pid, &["sl"]);
        assert_eq!(code, 0);
        let console = k.take_console().join("\n");
        assert!(console.contains("Complete!"), "{console}");
    }
}
