//! The shared payload extractor — where the chown happens (or doesn't).
//!
//! rpm and dpkg behave like cpio/tar running as root: create each entry,
//! then `fchownat` it to the archive header's owner, **unconditionally**.
//! apk checks first and skips the call when ownership already matches —
//! the difference between Figure 1b and Figure 1a.

use crate::repo::{Package, PayloadKind, PkgFile};
use zr_kernel::{Sys, SysError, SysExt};
use zr_syscalls::{mode, Errno};

/// chown discipline during extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChownBehavior {
    /// cpio/tar-as-root: always issue the call (rpm, dpkg).
    Always,
    /// apk: stat first, skip the syscall if ownership already matches.
    SkipIfMatching,
}

/// Why an install failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstallError {
    /// A chown was refused (the cpio failure).
    Chown {
        /// Path that failed.
        path: String,
        /// Errno observed.
        errno: Errno,
    },
    /// A mknod was refused.
    Mknod {
        /// Path that failed.
        path: String,
        /// Errno observed.
        errno: Errno,
    },
    /// Some other filesystem failure.
    Fs {
        /// Path that failed.
        path: String,
        /// Errno observed.
        errno: Errno,
    },
    /// The process was killed mid-extraction.
    Killed,
}

impl std::fmt::Display for InstallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstallError::Chown { path, .. } => write!(f, "cpio: chown failed - {path}"),
            InstallError::Mknod { path, .. } => write!(f, "cpio: mknod failed - {path}"),
            InstallError::Fs { path, errno } => write!(f, "cpio: {path}: {errno}"),
            InstallError::Killed => write!(f, "killed"),
        }
    }
}

fn errno_of(e: SysError) -> Result<Errno, InstallError> {
    match e {
        SysError::Errno(errno) => Ok(errno),
        SysError::Killed => Err(InstallError::Killed),
    }
}

/// Extract one payload entry.
pub fn extract_file(
    sys: &mut dyn Sys,
    f: &PkgFile,
    chown: ChownBehavior,
) -> Result<(), InstallError> {
    let fs_err = |path: &str, e: SysError| -> InstallError {
        match errno_of(e) {
            Ok(errno) => InstallError::Fs {
                path: path.into(),
                errno,
            },
            Err(k) => k,
        }
    };

    match &f.kind {
        PayloadKind::Dir => {
            match sys.mkdir_p(&f.path, f.perm) {
                Ok(()) => {}
                Err(e) => return Err(fs_err(&f.path, e)),
            }
            if let Err(e) = sys.chmod(&f.path, f.perm) {
                return Err(fs_err(&f.path, e));
            }
        }
        PayloadKind::File(content) => {
            if let Some((parent, _)) = zr_vfs::path::split_parent(&f.path) {
                if let Err(e) = sys.mkdir_p(&parent, 0o755) {
                    return Err(fs_err(&parent, e));
                }
            }
            if let Err(e) = sys.write_file(&f.path, f.perm, content.clone()) {
                return Err(fs_err(&f.path, e));
            }
            // umask may have trimmed bits (setuid!); restore the exact
            // archive mode like cpio does.
            if let Err(e) = sys.chmod(&f.path, f.perm) {
                return Err(fs_err(&f.path, e));
            }
        }
        PayloadKind::Symlink(target) => {
            if let Err(e) = sys.symlink(target, &f.path) {
                if !matches!(e, SysError::Errno(Errno::EEXIST)) {
                    return Err(fs_err(&f.path, e));
                }
            }
        }
        PayloadKind::CharDev(major, minor) => {
            let dev = mode::makedev(*major, *minor);
            if let Err(e) = sys.mknod(&f.path, mode::S_IFCHR | f.perm, dev) {
                let errno = errno_of(e)?;
                return Err(InstallError::Mknod {
                    path: f.path.clone(),
                    errno,
                });
            }
        }
    }

    // Ownership: the crux of the whole paper.
    let wants_chown = match chown {
        ChownBehavior::Always => !matches!(f.kind, PayloadKind::CharDev(..)) || sys.exists(&f.path),
        ChownBehavior::SkipIfMatching => match sys.lstat(&f.path) {
            Ok(st) => st.uid != f.uid || st.gid != f.gid,
            Err(_) => false, // faked mknod: nothing to chown, apk skips
        },
    };
    if wants_chown {
        let nofollow = matches!(f.kind, PayloadKind::Symlink(_));
        match sys.fchownat(&f.path, f.uid, f.gid, nofollow) {
            Ok(()) => {}
            Err(e) => {
                // A faked-away device node leaves no path; cpio's chown
                // would report ENOENT under the filter... except the
                // filter fakes chown too, so this branch only triggers
                // without emulation.
                let errno = errno_of(e)?;
                return Err(InstallError::Chown {
                    path: f.path.clone(),
                    errno,
                });
            }
        }
    }
    Ok(())
}

/// Extract a whole package.
pub fn extract_package(
    sys: &mut dyn Sys,
    pkg: &Package,
    chown: ChownBehavior,
) -> Result<(), InstallError> {
    for f in &pkg.files {
        extract_file(sys, f, chown)?;
    }
    Ok(())
}

/// Does this error trigger a transaction rollback? (Everything but a
/// kill does; a killed process cannot roll anything back.)
pub fn rollback_is_needed(e: &InstallError) -> bool {
    !matches!(e, InstallError::Killed)
}

/// Best-effort rollback of a partially extracted package (yum's
/// "rolling back" message).
pub fn rollback_package(sys: &mut dyn Sys, pkg: &Package) {
    for f in pkg.files.iter().rev() {
        match f.kind {
            PayloadKind::Dir => {
                let _ = sys.rmdir(&f.path);
            }
            _ => {
                let _ = sys.unlink(&f.path);
            }
        }
    }
}

/// Run a package's post-install script through /bin/sh.
pub fn run_post_install(
    sys: &mut dyn Sys,
    pkg: &Package,
    env: &[(String, String)],
) -> Result<i32, SysError> {
    match &pkg.post_install {
        None => Ok(0),
        Some(script) => sys.spawn_owned(
            "/bin/sh",
            vec!["/bin/sh".into(), "-c".into(), script.clone()],
            env.to_vec(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repo::PkgFile;
    use zr_kernel::{ContainerConfig, ContainerType, Kernel};
    use zr_vfs::fs::Fs;

    fn container() -> (Kernel, u32) {
        let mut k = Kernel::default_kernel();
        let mut image = Fs::new();
        image.mkdir_p("/usr", 0o755).unwrap();
        for ino in 1..=image.inode_count() as u64 {
            image.set_owner(ino, 1000, 1000).unwrap();
        }
        let c = k
            .container_create(
                Kernel::HOST_USER_PID,
                ContainerConfig {
                    ctype: ContainerType::TypeIII,
                    image,
                },
            )
            .unwrap();
        (k, c.init_pid)
    }

    #[test]
    fn root_owned_file_extracts_with_noop_chown() {
        let (mut k, pid) = container();
        let f = PkgFile::file("/usr/bin/x", 0o755, b"payload");
        let mut ctx = k.ctx(pid);
        extract_file(&mut ctx, &f, ChownBehavior::Always).expect("0:0 chown is a no-op");
        let st = ctx.stat("/usr/bin/x").unwrap();
        assert_eq!(st.mode & 0o777, 0o755);
    }

    #[test]
    fn foreign_owned_file_fails_like_cpio() {
        let (mut k, pid) = container();
        let f = PkgFile::file("/usr/bin/keysign", 0o4755, b"x").owned(0, 998);
        let mut ctx = k.ctx(pid);
        match extract_file(&mut ctx, &f, ChownBehavior::Always) {
            Err(InstallError::Chown { path, errno }) => {
                assert_eq!(path, "/usr/bin/keysign");
                assert_eq!(errno, Errno::EINVAL, "unmapped id");
            }
            other => panic!("expected chown failure, got {other:?}"),
        }
    }

    #[test]
    fn skip_if_matching_avoids_the_syscall() {
        let (mut k, pid) = container();
        let f = PkgFile::file("/usr/bin/quiet", 0o755, b"x");
        {
            let mut ctx = k.ctx(pid);
            extract_file(&mut ctx, &f, ChownBehavior::SkipIfMatching).unwrap();
        }
        assert!(
            !k.trace.any_privileged(),
            "apk-style extraction must not touch privileged syscalls"
        );
    }

    #[test]
    fn always_issues_the_syscall_even_when_matching() {
        let (mut k, pid) = container();
        let f = PkgFile::file("/usr/bin/loud", 0o755, b"x");
        {
            let mut ctx = k.ctx(pid);
            extract_file(&mut ctx, &f, ChownBehavior::Always).unwrap();
        }
        assert!(
            k.trace.any_privileged(),
            "cpio-style extraction chowns unconditionally"
        );
    }

    #[test]
    fn device_node_fails_unprivileged() {
        let (mut k, pid) = container();
        let f = PkgFile {
            path: "/dev/null".into(),
            perm: 0o666,
            uid: 0,
            gid: 0,
            kind: PayloadKind::CharDev(1, 3),
        };
        let mut ctx = k.ctx(pid);
        assert!(matches!(
            extract_file(&mut ctx, &f, ChownBehavior::Always),
            Err(InstallError::Mknod {
                errno: Errno::EPERM,
                ..
            })
        ));
    }

    #[test]
    fn rollback_removes_files() {
        let (mut k, pid) = container();
        let pkg = crate::repo::Package {
            name: "p".into(),
            files: vec![
                PkgFile::dir("/opt-p", 0o755),
                PkgFile::file("/opt-p/a", 0o644, b"1"),
            ],
            ..Default::default()
        };
        let mut ctx = k.ctx(pid);
        extract_package(&mut ctx, &pkg, ChownBehavior::SkipIfMatching).unwrap();
        assert!(ctx.exists("/opt-p/a"));
        rollback_package(&mut ctx, &pkg);
        assert!(!ctx.exists("/opt-p/a"));
        assert!(!ctx.exists("/opt-p"));
    }

    #[test]
    fn setuid_bit_restored_after_umask() {
        let (mut k, pid) = container();
        let f = PkgFile::file("/usr/bin/su", 0o4755, b"x");
        let mut ctx = k.ctx(pid);
        extract_file(&mut ctx, &f, ChownBehavior::SkipIfMatching).unwrap();
        let st = ctx.stat("/usr/bin/su").unwrap();
        assert_eq!(st.mode & 0o7777, 0o4755);
    }
}
