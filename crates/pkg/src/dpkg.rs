//! dpkg(8) — Debian's low-level installer. Same tar-as-root ownership
//! discipline as rpm's cpio: chown every entry, abort on failure.

use std::sync::Arc;

use crate::install::{extract_package, run_post_install, ChownBehavior, InstallError};
use crate::repo::{Package, Repo};
use zr_kernel::{ExecEnv, Program, Sys, SysExt};

/// Unpack one package dpkg-style (called by apt and by `dpkg -i`).
pub fn dpkg_unpack(sys: &mut dyn Sys, pkg: &Package) -> Result<(), InstallError> {
    sys.println(format!(
        "Selecting previously unselected package {}.",
        pkg.name
    ));
    sys.println(format!("Unpacking {} ({}) ...", pkg.name, pkg.version));
    match extract_package(sys, pkg, ChownBehavior::Always) {
        Ok(()) => {
            let _ = sys.append_file(
                "/var/lib/dpkg/status",
                format!(
                    "Package: {}\nVersion: {}\nStatus: install ok unpacked\n\n",
                    pkg.name, pkg.version
                )
                .as_bytes(),
            );
            Ok(())
        }
        Err(e) => {
            sys.println(format!(
                "dpkg: error processing archive /var/cache/apt/archives/{}_{}.deb (--unpack):",
                pkg.name, pkg.version
            ));
            let detail = match &e {
                InstallError::Chown { path, .. } => {
                    format!(" error setting ownership of '.{path}': Operation not permitted")
                }
                other => format!(" {other}"),
            };
            sys.println(detail);
            Err(e)
        }
    }
}

/// Configure (postinst) one unpacked package.
pub fn dpkg_configure(
    sys: &mut dyn Sys,
    pkg: &Package,
    env: &[(String, String)],
) -> Result<(), InstallError> {
    sys.println(format!("Setting up {} ({}) ...", pkg.name, pkg.version));
    match run_post_install(sys, pkg, env) {
        Ok(0) => Ok(()),
        Ok(code) => {
            sys.println(format!(
                "dpkg: error processing package {} (--configure):",
                pkg.name
            ));
            sys.println(format!(
                " installed {} package post-installation script subprocess returned error exit status {code}",
                pkg.name
            ));
            Err(InstallError::Fs {
                path: pkg.name.clone(),
                errno: zr_syscalls::Errno::EIO,
            })
        }
        Err(_) => Err(InstallError::Killed),
    }
}

/// The `/usr/bin/dpkg` binary.
pub struct Dpkg {
    repo: Arc<Repo>,
}

impl Dpkg {
    /// dpkg backed by `repo`.
    pub fn new(repo: Arc<Repo>) -> Dpkg {
        Dpkg { repo }
    }
}

impl Program for Dpkg {
    fn run(&mut self, sys: &mut dyn Sys, env: &mut ExecEnv) -> i32 {
        let args = env.args();
        let names: Vec<&str> = args
            .iter()
            .filter(|a| !a.starts_with('-'))
            .copied()
            .collect();
        if names.is_empty() || !args.contains(&"-i") {
            sys.println("dpkg: usage: dpkg -i PACKAGE…".to_string());
            return 2;
        }
        let order = match self.repo.resolve(&names) {
            Ok(o) => o,
            Err(e) => {
                sys.println(format!("dpkg: error: {e}"));
                return 1;
            }
        };
        let envs = env.env.clone();
        for pkg in &order {
            if dpkg_unpack(sys, pkg).is_err() {
                return 1;
            }
        }
        for pkg in &order {
            if dpkg_configure(sys, pkg, &envs).is_err() {
                return 1;
            }
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repo::debian_repo;
    use zr_image::{ImageRef, Registry};
    use zr_kernel::{ContainerConfig, ContainerType, Kernel};

    fn debian_container() -> (Kernel, u32) {
        let mut k = Kernel::default_kernel();
        let mut img = Registry::new()
            .pull(&ImageRef::parse("debian:12").unwrap())
            .unwrap();
        img.chown_all(1000, 1000);
        let c = k
            .container_create(
                Kernel::HOST_USER_PID,
                ContainerConfig {
                    ctype: ContainerType::TypeIII,
                    image: img.fs,
                },
            )
            .unwrap();
        crate::register::register_image_binaries(&mut k, &img.meta);
        (k, c.init_pid)
    }

    #[test]
    fn dpkg_hello_succeeds() {
        let (mut k, pid) = debian_container();
        let mut dpkg = Dpkg::new(Arc::new(debian_repo()));
        let mut env = ExecEnv {
            argv: vec!["dpkg".into(), "-i".into(), "hello".into()],
            ..Default::default()
        };
        let code = {
            let mut ctx = k.ctx(pid);
            dpkg.run(&mut ctx, &mut env)
        };
        assert_eq!(code, 0, "{:?}", k.take_console());
        let console = k.take_console().join("\n");
        assert!(console.contains("Unpacking hello"), "{console}");
        assert!(console.contains("Setting up hello"), "{console}");
    }

    #[test]
    fn dpkg_openssh_server_fails_on_ownership() {
        let (mut k, pid) = debian_container();
        let mut dpkg = Dpkg::new(Arc::new(debian_repo()));
        let mut env = ExecEnv {
            argv: vec!["dpkg".into(), "-i".into(), "openssh-server".into()],
            ..Default::default()
        };
        let code = {
            let mut ctx = k.ctx(pid);
            dpkg.run(&mut ctx, &mut env)
        };
        assert_eq!(code, 1);
        let console = k.take_console().join("\n");
        assert!(console.contains("error setting ownership"), "{console}");
    }
}
