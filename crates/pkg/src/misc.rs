//! The supporting cast: small binaries images ship or install.

use zr_kernel::{ExecEnv, Program, Sys, SysExt};
use zr_shell::exec::run_applet;

/// `/usr/bin/true` (also stands in for inert payload binaries).
pub struct TrueBin;

impl Program for TrueBin {
    fn run(&mut self, _sys: &mut dyn Sys, _env: &mut ExecEnv) -> i32 {
        0
    }
}

/// `sl(1)` — the Figure 1a payload. All aboard.
pub struct Sl;

impl Program for Sl {
    fn run(&mut self, sys: &mut dyn Sys, _env: &mut ExecEnv) -> i32 {
        sys.println("      ====        ________                ___________".to_string());
        sys.println("  _D _|  |_______/        \\__I_I_____===__|_________|".to_string());
        sys.println("   |(_)---  |   H\\________/ |   |        =|___ ___|  ".to_string());
        0
    }
}

/// Coreutils-style applet binaries (`chown`, `mknod`, `id`, …): delegate
/// to the shell's applet implementations so the syscall behaviour is
/// identical whether invoked as a builtin or a binary.
pub struct Applet;

impl Program for Applet {
    fn run(&mut self, sys: &mut dyn Sys, env: &mut ExecEnv) -> i32 {
        match run_applet(sys, &env.argv) {
            Some(code) => code,
            None => {
                let name = env.argv.first().cloned().unwrap_or_default();
                sys.println(format!("{name}: applet not supported"));
                127
            }
        }
    }
}

/// `fakeroot(1)` as an in-image binary: wraps a command with the preload
/// environment (the Charliecloud injection approach launches commands as
/// `fakeroot -- cmd…`).
pub struct FakerootBin;

impl Program for FakerootBin {
    fn run(&mut self, sys: &mut dyn Sys, env: &mut ExecEnv) -> i32 {
        let args: Vec<String> = env
            .argv
            .iter()
            .skip(1)
            .filter(|a| *a != "--")
            .cloned()
            .collect();
        if args.is_empty() {
            sys.println("fakeroot version 1.31 (zeroroot simulation)".to_string());
            return 0;
        }
        let mut child_env = env.env.clone();
        child_env.push(("LD_PRELOAD".into(), "libfakeroot.so".into()));
        match sys.spawn_owned(&args[0], args.clone(), child_env) {
            Ok(code) => code,
            Err(e) => {
                sys.println(format!("fakeroot: {}: {e}", args[0]));
                127
            }
        }
    }
}

/// `unminimize(8)` — the §6 known-failure case: it *verifies* its chowns,
/// so a zero-consistency lie is caught. Consistent emulators pass.
pub struct Unminimize;

impl Program for Unminimize {
    fn run(&mut self, sys: &mut dyn Sys, _env: &mut ExecEnv) -> i32 {
        sys.println("This system has been minimized by removing packages and content.".to_string());
        sys.println("Restoring system documentation...".to_string());
        let _ = sys.mkdir_p("/usr/share/man/man1", 0o755);
        let _ = sys.write_file("/usr/share/man/man1/ls.1.gz", 0o644, b"man".to_vec());
        // Documentation is owned by man:man (6:12) on Ubuntu.
        if let Err(e) = sys.chown("/usr/share/man", 6, 12) {
            sys.println(format!("unminimize: chown /usr/share/man: {e}"));
            return 1;
        }
        // ... and unminimize's restore path checks its work.
        match sys.stat("/usr/share/man") {
            Ok(st) if st.uid == 6 && st.gid == 12 => {
                sys.println("Documentation restored.".to_string());
                0
            }
            Ok(st) => {
                sys.println(format!(
                    "unminimize: verification failed: /usr/share/man owned by {}:{}, expected 6:12",
                    st.uid, st.gid
                ));
                1
            }
            Err(e) => {
                sys.println(format!("unminimize: stat: {e}"));
                1
            }
        }
    }
}

/// `/usr/bin/hello` (GNU hello).
pub struct Hello;

impl Program for Hello {
    fn run(&mut self, sys: &mut dyn Sys, _env: &mut ExecEnv) -> i32 {
        sys.println("Hello, world!".to_string());
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zr_kernel::Kernel;

    #[test]
    fn true_is_quiet_success() {
        let mut k = Kernel::default_kernel();
        let mut env = ExecEnv::default();
        let mut ctx = k.ctx(Kernel::HOST_USER_PID);
        assert_eq!(TrueBin.run(&mut ctx, &mut env), 0);
        assert!(k.take_console().is_empty());
    }

    #[test]
    fn sl_prints_a_train() {
        let mut k = Kernel::default_kernel();
        let mut env = ExecEnv::default();
        let code = {
            let mut ctx = k.ctx(Kernel::HOST_USER_PID);
            Sl.run(&mut ctx, &mut env)
        };
        assert_eq!(code, 0);
        assert_eq!(k.take_console().len(), 3);
    }

    #[test]
    fn unminimize_fails_without_real_chown() {
        let mut k = Kernel::default_kernel();
        let mut env = ExecEnv::default();
        let code = {
            let mut ctx = k.ctx(Kernel::HOST_USER_PID);
            Unminimize.run(&mut ctx, &mut env)
        };
        assert_eq!(code, 1, "host user cannot chown to man:man");
    }

    #[test]
    fn unminimize_succeeds_as_real_root() {
        let mut k = Kernel::default_kernel();
        let mut env = ExecEnv::default();
        let code = {
            let mut ctx = k.ctx(Kernel::INIT_PID);
            Unminimize.run(&mut ctx, &mut env)
        };
        assert_eq!(code, 0);
    }
}
