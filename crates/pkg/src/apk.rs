//! apk(8) — Alpine's package manager (Figure 1a).
//!
//! Installs by writing files as the calling user and skipping ownership
//! calls whenever the observed owner already matches the archive header —
//! which, in a container where "root" is the image owner, is always. Net
//! effect: **zero privileged syscalls**, so `--force=none` works.

use std::sync::Arc;

use crate::install::{extract_package, run_post_install, ChownBehavior};
use crate::repo::Repo;
use zr_kernel::{ExecEnv, Program, Sys, SysExt};

/// The apk program.
pub struct Apk {
    repo: Arc<Repo>,
}

impl Apk {
    /// apk backed by `repo`.
    pub fn new(repo: Arc<Repo>) -> Apk {
        Apk { repo }
    }

    fn installed_count(&self, sys: &mut dyn Sys) -> usize {
        sys.read_file("/lib/apk/db/installed")
            .map(|data| {
                String::from_utf8_lossy(&data)
                    .lines()
                    .filter(|l| l.starts_with("P:"))
                    .count()
            })
            .unwrap_or(0)
    }

    fn add(&self, sys: &mut dyn Sys, env: &ExecEnv, names: &[&str]) -> i32 {
        sys.println(format!(
            "fetch {}/main/x86_64/APKINDEX.tar.gz",
            self.repo.url
        ));
        sys.println(format!(
            "fetch {}/community/x86_64/APKINDEX.tar.gz",
            self.repo.url
        ));

        let order = match self.repo.resolve(names) {
            Ok(o) => o,
            Err(e) => {
                sys.println(format!("ERROR: {e}"));
                return 1;
            }
        };
        let total = order.len();
        let mut installed_kib = 0u32;
        for (i, pkg) in order.iter().enumerate() {
            sys.println(format!(
                "({}/{}) Installing {} ({})",
                i + 1,
                total,
                pkg.name,
                pkg.version
            ));
            if let Err(e) = extract_package(sys, pkg, ChownBehavior::SkipIfMatching) {
                sys.println(format!("ERROR: {}: {e}", pkg.name));
                return 1;
            }
            let _ = sys.append_file(
                "/lib/apk/db/installed",
                format!("P:{}\nV:{}\n\n", pkg.name, pkg.version).as_bytes(),
            );
            if run_post_install(sys, pkg, &env.env).unwrap_or(1) != 0 {
                sys.println(format!("ERROR: {}: post-install failed", pkg.name));
                return 1;
            }
            installed_kib += pkg.size_kib;
        }
        for name in names {
            let _ = sys.append_file("/etc/apk/world", format!("{name}\n").as_bytes());
        }
        // Alpine's trigger line, then the summary.
        sys.println("Executing busybox-1.36.1-r15.trigger".to_string());
        let total_pkgs = self.installed_count(sys);
        let mib = (installed_kib / 1024).max(1) + 7; // base image floor
        sys.println(format!("OK: {mib} MiB in {total_pkgs} packages"));
        0
    }
}

impl Program for Apk {
    fn run(&mut self, sys: &mut dyn Sys, env: &mut ExecEnv) -> i32 {
        let args = env.args();
        let args: Vec<&str> = args
            .iter()
            .filter(|a| !a.starts_with('-'))
            .copied()
            .collect();
        match args.split_first() {
            Some((&"add", names)) if !names.is_empty() => {
                let env_clone = env.clone();
                self.add(sys, &env_clone, names)
            }
            Some((&"update", _)) => {
                sys.println(format!(
                    "fetch {}/main/x86_64/APKINDEX.tar.gz",
                    self.repo.url
                ));
                sys.println("OK: 24 distinct packages available".to_string());
                0
            }
            _ => {
                sys.println("apk: usage: apk add PKG…".to_string());
                1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repo::alpine_repo;
    use zr_image::{ImageRef, Registry};
    use zr_kernel::{ContainerConfig, ContainerType, Kernel};

    fn alpine_container() -> (Kernel, u32) {
        let mut k = Kernel::default_kernel();
        let mut img = Registry::new()
            .pull(&ImageRef::parse("alpine:3.19").unwrap())
            .unwrap();
        img.chown_all(1000, 1000);
        let c = k
            .container_create(
                Kernel::HOST_USER_PID,
                ContainerConfig {
                    ctype: ContainerType::TypeIII,
                    image: img.fs,
                },
            )
            .unwrap();
        (k, c.init_pid)
    }

    #[test]
    fn apk_add_sl_no_privileged_syscalls() {
        // Figure 1a in miniature.
        let (mut k, pid) = alpine_container();
        let mut apk = Apk::new(Arc::new(alpine_repo()));
        let mut env = ExecEnv {
            argv: vec!["apk".into(), "add".into(), "sl".into()],
            ..Default::default()
        };
        let code = {
            let mut ctx = k.ctx(pid);
            apk.run(&mut ctx, &mut env)
        };
        assert_eq!(code, 0);
        assert!(!k.trace.any_privileged(), "Figure 1a: no privileged calls");
        let console = k.take_console().join("\n");
        assert!(
            console.contains("(3/3) Installing sl (5.02-r1)"),
            "{console}"
        );
        assert!(console.contains("Executing busybox-1.36.1-r15.trigger"));
        assert!(console.contains("OK:"), "{console}");
        // The payload actually landed.
        let mut ctx = k.ctx(pid);
        assert!(ctx.exists("/usr/bin/sl"));
    }

    #[test]
    fn unknown_package_errors() {
        let (mut k, pid) = alpine_container();
        let mut apk = Apk::new(Arc::new(alpine_repo()));
        let mut env = ExecEnv {
            argv: vec!["apk".into(), "add".into(), "doom".into()],
            ..Default::default()
        };
        let code = {
            let mut ctx = k.ctx(pid);
            apk.run(&mut ctx, &mut env)
        };
        assert_eq!(code, 1);
    }
}
