//! # zr-dockerfile — Dockerfile lexer, parser, and AST
//!
//! ch-image consumes "the de facto standard Dockerfile" (§3.1); so does
//! this builder. The dialect covers what HPC image builds use:
//! `FROM` (with `AS`), `RUN` (shell and exec forms), `COPY`/`ADD` (with
//! `--chown`), `ENV`, `ARG`, `WORKDIR`, `USER`, `LABEL`, `ENTRYPOINT`,
//! `CMD`, `SHELL`, `EXPOSE`/`VOLUME`/`STOPSIGNAL` (recorded, no-op),
//! comments, and backslash line continuations. [`substitute`] implements
//! `$VAR` / `${VAR}` / `${VAR:-default}` expansion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod parse;
pub mod subst;

pub use ast::{CopySpec, Dockerfile, Instruction};
pub use parse::{parse, ParseError};
pub use subst::substitute;
