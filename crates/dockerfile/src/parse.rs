//! The parser: physical lines → logical lines → instructions.

use crate::ast::{CopySpec, Dockerfile, Instruction};

/// Parse failures, with the 1-based line number of the offending logical
/// line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line number.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Dockerfile line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: u32, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// Join backslash continuations into logical lines, tracking the starting
/// physical line of each.
fn logical_lines(text: &str) -> Vec<(u32, String)> {
    let mut out: Vec<(u32, String)> = Vec::new();
    let mut pending: Option<(u32, String)> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let (start, mut acc) = match pending.take() {
            Some((s, a)) => (s, a),
            None => (lineno, String::new()),
        };
        // Comment lines inside a continuation are dropped (Docker
        // behaviour).
        let trimmed_lead = raw.trim_start();
        if acc.is_empty() && trimmed_lead.starts_with('#') {
            continue;
        }
        if !acc.is_empty() && trimmed_lead.starts_with('#') {
            pending = Some((start, acc));
            continue;
        }
        let trimmed_end = raw.trim_end();
        if let Some(stripped) = trimmed_end.strip_suffix('\\') {
            acc.push_str(stripped);
            acc.push(' ');
            pending = Some((start, acc));
        } else {
            acc.push_str(trimmed_end);
            let logical = acc.trim().to_string();
            if !logical.is_empty() {
                out.push((start, logical));
            }
        }
    }
    if let Some((start, acc)) = pending {
        let logical = acc.trim().to_string();
        if !logical.is_empty() {
            out.push((start, logical));
        }
    }
    out
}

/// Parse a JSON-ish exec-form array: `["a", "b c", "d\"e"]`.
fn parse_exec_array(line: u32, s: &str) -> Result<Vec<String>, ParseError> {
    let s = s.trim();
    let inner = s
        .strip_prefix('[')
        .and_then(|r| r.strip_suffix(']'))
        .ok_or(ParseError {
            line,
            message: "malformed exec-form array".into(),
        })?;
    let mut items = Vec::new();
    let mut chars = inner.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(c) if c.is_whitespace() || *c == ',') {
            chars.next();
        }
        match chars.peek() {
            None => break,
            Some('"') => {
                chars.next();
                let mut item = String::new();
                loop {
                    match chars.next() {
                        None => return err(line, "unterminated string in exec form"),
                        Some('\\') => match chars.next() {
                            Some('n') => item.push('\n'),
                            Some('t') => item.push('\t'),
                            Some(c) => item.push(c),
                            None => return err(line, "dangling escape in exec form"),
                        },
                        Some('"') => break,
                        Some(c) => item.push(c),
                    }
                }
                items.push(item);
            }
            Some(c) => return err(line, format!("unexpected '{c}' in exec form")),
        }
    }
    Ok(items)
}

/// Parse `KEY=value` pairs where values may be double-quoted.
fn parse_pairs(line: u32, s: &str) -> Result<Vec<(String, String)>, ParseError> {
    let mut pairs = Vec::new();
    let mut rest = s.trim();
    while !rest.is_empty() {
        let eq = match rest.find('=') {
            Some(i) => i,
            None => return err(line, format!("expected KEY=value, got '{rest}'")),
        };
        let key = rest[..eq].trim().to_string();
        if key.is_empty() || key.contains(char::is_whitespace) {
            return err(line, format!("bad key '{key}'"));
        }
        rest = &rest[eq + 1..];
        let value;
        if let Some(r) = rest.strip_prefix('"') {
            let close = match r.find('"') {
                Some(i) => i,
                None => return err(line, "unterminated quoted value"),
            };
            value = r[..close].to_string();
            rest = r[close + 1..].trim_start();
        } else {
            let end = rest.find(char::is_whitespace).unwrap_or(rest.len());
            value = rest[..end].to_string();
            rest = rest[end..].trim_start();
        }
        pairs.push((key, value));
    }
    if pairs.is_empty() {
        return err(line, "no assignments");
    }
    Ok(pairs)
}

fn parse_copy(line: u32, args: &str) -> Result<CopySpec, ParseError> {
    let mut chown = None;
    let mut from = None;
    let mut words: Vec<String> = Vec::new();
    for w in args.split_whitespace() {
        if let Some(v) = w.strip_prefix("--chown=") {
            chown = Some(v.to_string());
        } else if let Some(v) = w.strip_prefix("--from=") {
            from = Some(v.to_string());
        } else if w.starts_with("--") {
            return err(line, format!("unsupported flag '{w}'"));
        } else {
            words.push(w.to_string());
        }
    }
    if words.len() < 2 {
        return err(line, "COPY needs at least source and dest");
    }
    let dest = words.pop().expect("checked length");
    Ok(CopySpec {
        sources: words,
        dest,
        chown,
        from,
    })
}

/// Parse a whole Dockerfile.
pub fn parse(text: &str) -> Result<Dockerfile, ParseError> {
    let mut out = Dockerfile::default();
    for (line, logical) in logical_lines(text) {
        let (kw, args) = match logical.split_once(char::is_whitespace) {
            Some((k, a)) => (k.to_ascii_uppercase(), a.trim().to_string()),
            None => (logical.to_ascii_uppercase(), String::new()),
        };
        let insn = match kw.as_str() {
            "FROM" => {
                let mut parts = args.split_whitespace();
                let image = match parts.next() {
                    Some(i) => i.to_string(),
                    None => return err(line, "FROM needs an image"),
                };
                // Stage aliases are case-insensitive; normalize to
                // lowercase here so every later comparison (`--from=`,
                // `FROM alias`, `--target`) is a plain equality test.
                let alias = match (parts.next(), parts.next()) {
                    (None, _) => None,
                    (Some(askw), Some(name)) if askw.eq_ignore_ascii_case("as") => {
                        let name = name.to_ascii_lowercase();
                        if !valid_stage_name(&name) {
                            return err(line, format!("invalid stage name '{name}'"));
                        }
                        if name.bytes().all(|b| b.is_ascii_digit()) {
                            return err(
                                line,
                                format!(
                                    "stage name '{name}' is numeric (reserved for stage indices)"
                                ),
                            );
                        }
                        Some(name)
                    }
                    _ => return err(line, "expected 'FROM image [AS name]'"),
                };
                Instruction::From { image, alias }
            }
            "RUN" => {
                if args.trim_start().starts_with('[') {
                    Instruction::RunExec(parse_exec_array(line, &args)?)
                } else if args.is_empty() {
                    return err(line, "RUN needs a command");
                } else {
                    Instruction::RunShell(args)
                }
            }
            "ENV" => {
                if args.contains('=') {
                    Instruction::Env(parse_pairs(line, &args)?)
                } else {
                    // Legacy `ENV key value` form.
                    match args.split_once(char::is_whitespace) {
                        Some((k, v)) => {
                            Instruction::Env(vec![(k.to_string(), v.trim().to_string())])
                        }
                        None => return err(line, "ENV needs key and value"),
                    }
                }
            }
            "ARG" => {
                let arg = args.trim();
                if arg.is_empty() {
                    return err(line, "ARG needs a name");
                }
                match arg.split_once('=') {
                    Some((n, d)) => Instruction::Arg {
                        name: n.trim().to_string(),
                        default: Some(d.trim().trim_matches('"').to_string()),
                    },
                    None => Instruction::Arg {
                        name: arg.to_string(),
                        default: None,
                    },
                }
            }
            "WORKDIR" => {
                if args.is_empty() {
                    return err(line, "WORKDIR needs a path");
                }
                Instruction::Workdir(args)
            }
            "USER" => {
                if args.is_empty() {
                    return err(line, "USER needs a spec");
                }
                Instruction::User(args)
            }
            "LABEL" => Instruction::Label(parse_pairs(line, &args)?),
            "COPY" => Instruction::Copy(parse_copy(line, &args)?),
            "ADD" => Instruction::Add(parse_copy(line, &args)?),
            "ENTRYPOINT" => {
                if args.trim_start().starts_with('[') {
                    Instruction::Entrypoint(parse_exec_array(line, &args)?)
                } else {
                    Instruction::Entrypoint(vec!["/bin/sh".into(), "-c".into(), args])
                }
            }
            "CMD" => {
                if args.trim_start().starts_with('[') {
                    Instruction::Cmd(parse_exec_array(line, &args)?)
                } else {
                    Instruction::Cmd(vec!["/bin/sh".into(), "-c".into(), args])
                }
            }
            "SHELL" => Instruction::Shell(parse_exec_array(line, &args)?),
            "EXPOSE" | "VOLUME" | "STOPSIGNAL" | "HEALTHCHECK" | "ONBUILD" | "MAINTAINER" => {
                Instruction::NoOp {
                    keyword: kw.clone(),
                    args,
                }
            }
            other => return err(line, format!("unknown instruction '{other}'")),
        };
        out.instructions.push((line, insn));
    }

    // Structural rule: something other than ARG before the first FROM is
    // an error; a file with RUN and no FROM at all is, too.
    let mut seen_from = false;
    for (line, insn) in &out.instructions {
        match insn {
            Instruction::From { .. } => seen_from = true,
            Instruction::Arg { .. } => {}
            _ if !seen_from => {
                return err(*line, format!("{} before FROM", insn.keyword()));
            }
            _ => {}
        }
    }
    validate_stages(&out)?;
    Ok(out)
}

/// A (lowercased) stage alias: `[a-z0-9][a-z0-9_.-]*`.
fn valid_stage_name(name: &str) -> bool {
    let mut bytes = name.bytes();
    match bytes.next() {
        Some(b) if b.is_ascii_lowercase() || b.is_ascii_digit() => {}
        _ => return false,
    }
    bytes.all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || matches!(b, b'_' | b'.' | b'-'))
}

/// Stage-level structural rules, checked with the whole file in hand:
/// aliases must be unique, and every `--from=` must name a *strictly
/// earlier* stage — by alias or by 0-based index. Self and forward
/// references are rejected here, precisely, instead of surfacing late
/// (or never) inside the builder.
fn validate_stages(df: &Dockerfile) -> Result<(), ParseError> {
    // (line, alias) per stage, in declaration order.
    let mut stages: Vec<(u32, Option<String>)> = Vec::new();
    for (line, insn) in &df.instructions {
        if let Instruction::From { alias, .. } = insn {
            if let Some(a) = alias {
                if stages.iter().any(|(_, b)| b.as_deref() == Some(a)) {
                    return err(*line, format!("duplicate stage name '{a}'"));
                }
            }
            stages.push((*line, alias.clone()));
        }
    }
    let alias_index = |name: &str| -> Option<usize> {
        stages.iter().position(|(_, a)| a.as_deref() == Some(name))
    };
    let mut current: Option<usize> = None;
    for (line, insn) in &df.instructions {
        let spec = match insn {
            Instruction::From { .. } => {
                current = Some(current.map_or(0, |c| c + 1));
                continue;
            }
            Instruction::Copy(spec) | Instruction::Add(spec) => spec,
            _ => continue,
        };
        let Some(from) = &spec.from else { continue };
        let stage = current.expect("structural rule: COPY only after a FROM");
        let referenced = if from.bytes().all(|b| b.is_ascii_digit()) && !from.is_empty() {
            let idx: usize = from.parse().map_err(|_| ParseError {
                line: *line,
                message: format!("--from={from}: stage index out of range"),
            })?;
            if idx >= stages.len() {
                return err(
                    *line,
                    format!(
                        "--from={idx} names a nonexistent stage (the file has {})",
                        stages.len()
                    ),
                );
            }
            idx
        } else {
            let name = from.to_ascii_lowercase();
            match alias_index(&name) {
                Some(idx) => idx,
                None => return err(*line, format!("--from={from}: unknown stage '{name}'")),
            }
        };
        if referenced == stage {
            return err(*line, format!("--from={from} refers to its own stage"));
        }
        if referenced > stage {
            return err(
                *line,
                format!(
                    "--from={from} is a forward reference (stage {referenced} starts at line {})",
                    stages[referenced].0
                ),
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure_1a() {
        let df = parse("FROM alpine:3.19\nRUN apk add sl\n").unwrap();
        assert_eq!(df.len(), 2);
        assert_eq!(df.base_image(), Some("alpine:3.19"));
        assert_eq!(
            df.instructions[1].1,
            Instruction::RunShell("apk add sl".into())
        );
    }

    #[test]
    fn paper_figure_1b() {
        let df = parse("FROM centos:7\nRUN yum install -y openssh\n").unwrap();
        assert_eq!(
            df.instructions[1].1,
            Instruction::RunShell("yum install -y openssh".into())
        );
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let df = parse("# header\n\nFROM scratch\n  # indented comment\nRUN true\n").unwrap();
        assert_eq!(df.len(), 2);
        assert_eq!(df.instructions[0].0, 3, "line numbers preserved");
    }

    #[test]
    fn continuations_join() {
        let df = parse("FROM scratch\nRUN echo a \\\n    && echo b \\\n    && echo c\n").unwrap();
        match &df.instructions[1].1 {
            Instruction::RunShell(cmd) => {
                assert!(cmd.contains("echo a"));
                assert!(cmd.contains("&& echo c"));
            }
            other => panic!("expected shell RUN, got {other:?}"),
        }
    }

    #[test]
    fn comment_inside_continuation() {
        let df = parse("FROM scratch\nRUN echo a \\\n# interruption\n    && echo b\n").unwrap();
        match &df.instructions[1].1 {
            Instruction::RunShell(cmd) => assert!(cmd.contains("&& echo b")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn exec_form_run() {
        let df = parse("FROM scratch\nRUN [\"/bin/ls\", \"-l\", \"a b\"]\n").unwrap();
        assert_eq!(
            df.instructions[1].1,
            Instruction::RunExec(vec!["/bin/ls".into(), "-l".into(), "a b".into()])
        );
    }

    #[test]
    fn exec_form_escapes() {
        let df = parse("FROM scratch\nRUN [\"echo\", \"a\\\"b\\n\"]\n").unwrap();
        assert_eq!(
            df.instructions[1].1,
            Instruction::RunExec(vec!["echo".into(), "a\"b\n".into()])
        );
    }

    #[test]
    fn env_forms() {
        let df = parse("FROM scratch\nENV A=1 B=\"two words\"\nENV LEGACY old style\n").unwrap();
        assert_eq!(
            df.instructions[1].1,
            Instruction::Env(vec![
                ("A".into(), "1".into()),
                ("B".into(), "two words".into())
            ])
        );
        assert_eq!(
            df.instructions[2].1,
            Instruction::Env(vec![("LEGACY".into(), "old style".into())])
        );
    }

    #[test]
    fn from_with_alias() {
        let df = parse("FROM alpine:3.19 AS builder\n").unwrap();
        assert_eq!(
            df.instructions[0].1,
            Instruction::From {
                image: "alpine:3.19".into(),
                alias: Some("builder".into())
            }
        );
    }

    #[test]
    fn arg_before_from_ok_run_before_from_not() {
        assert!(parse("ARG VER=3.19\nFROM alpine:${VER}\n").is_ok());
        let e = parse("RUN ls\nFROM scratch\n").unwrap_err();
        assert!(e.message.contains("before FROM"), "{e}");
    }

    #[test]
    fn copy_flags() {
        let df = parse("FROM scratch\nCOPY --chown=55:55 a.txt b.txt /dst/\n").unwrap();
        match &df.instructions[1].1 {
            Instruction::Copy(c) => {
                assert_eq!(c.sources, vec!["a.txt".to_string(), "b.txt".to_string()]);
                assert_eq!(c.dest, "/dst/");
                assert_eq!(c.chown.as_deref(), Some("55:55"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn copy_needs_two_args() {
        assert!(parse("FROM scratch\nCOPY onlyone\n").is_err());
    }

    #[test]
    fn unknown_instruction_rejected() {
        let e = parse("FROM scratch\nFLY to the moon\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("FLY"));
    }

    #[test]
    fn noop_instructions_recorded() {
        let df = parse("FROM scratch\nEXPOSE 8080\nVOLUME /data\n").unwrap();
        assert_eq!(df.len(), 3);
        assert!(matches!(
            &df.instructions[1].1,
            Instruction::NoOp { keyword, .. } if keyword == "EXPOSE"
        ));
    }

    #[test]
    fn entrypoint_shell_form_wraps() {
        let df = parse("FROM scratch\nENTRYPOINT top -b\n").unwrap();
        assert_eq!(
            df.instructions[1].1,
            Instruction::Entrypoint(vec!["/bin/sh".into(), "-c".into(), "top -b".into()])
        );
    }

    #[test]
    fn bad_exec_array_is_error() {
        assert!(parse("FROM scratch\nRUN [\"unterminated\n").is_err());
        assert!(parse("FROM scratch\nSHELL [bare]\n").is_err());
    }

    #[test]
    fn stage_aliases_normalize_to_lowercase() {
        let df = parse("FROM alpine:3.19 AS Builder\nFROM scratch\nCOPY --from=BUILDER /a /b\n")
            .unwrap();
        assert_eq!(
            df.instructions[0].1,
            Instruction::From {
                image: "alpine:3.19".into(),
                alias: Some("builder".into())
            },
            "alias is stored lowercased"
        );
        assert_eq!(df.stages()[0].alias, Some("builder"));
    }

    #[test]
    fn duplicate_stage_alias_rejected() {
        let e = parse("FROM alpine:3.19 AS a\nFROM debian:12 AS a\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("duplicate stage name 'a'"), "{e}");
        // Case variants are the same name.
        let e = parse("FROM alpine:3.19 AS A\nFROM debian:12 AS a\n").unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
    }

    #[test]
    fn invalid_stage_names_rejected() {
        assert!(parse("FROM x AS -bad\n").is_err());
        assert!(parse("FROM x AS ha!lo\n").is_err());
        let e = parse("FROM x AS 0\n").unwrap_err();
        assert!(e.message.contains("numeric"), "{e}");
    }

    #[test]
    fn copy_from_self_reference_rejected() {
        let e = parse("FROM alpine:3.19 AS base\nCOPY --from=base /x /y\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("refers to its own stage"), "{e}");
        let e = parse("FROM alpine:3.19\nCOPY --from=0 /x /y\n").unwrap_err();
        assert!(e.message.contains("own stage"), "{e}");
    }

    #[test]
    fn copy_from_forward_reference_rejected() {
        let e = parse("FROM alpine:3.19\nCOPY --from=late /x /y\nFROM debian:12 AS late\n")
            .unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("forward reference"), "{e}");
        assert!(e.message.contains("line 3"), "{e}");
        let e = parse("FROM alpine:3.19\nCOPY --from=1 /x /y\nFROM debian:12\n").unwrap_err();
        assert!(e.message.contains("forward reference"), "{e}");
    }

    #[test]
    fn copy_from_unknown_stage_rejected() {
        let e = parse("FROM alpine:3.19\nFROM scratch\nCOPY --from=ghost /x /y\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("unknown stage 'ghost'"), "{e}");
        let e = parse("FROM alpine:3.19\nFROM scratch\nCOPY --from=7 /x /y\n").unwrap_err();
        assert!(e.message.contains("nonexistent stage"), "{e}");
    }

    #[test]
    fn numeric_from_index_resolves_backward() {
        let df = parse("FROM alpine:3.19\nFROM scratch\nCOPY --from=0 /x /y\n").unwrap();
        match &df.instructions[2].1 {
            Instruction::Copy(c) => assert_eq!(c.from.as_deref(), Some("0")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn label_pairs() {
        let df = parse("FROM scratch\nLABEL version=\"1.0\" maintainer=hpc\n").unwrap();
        assert_eq!(
            df.instructions[1].1,
            Instruction::Label(vec![
                ("version".into(), "1.0".into()),
                ("maintainer".into(), "hpc".into())
            ])
        );
    }
}
