//! The parsed representation.

/// `COPY`/`ADD` arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CopySpec {
    /// Sources (context-relative).
    pub sources: Vec<String>,
    /// Destination (image path; trailing `/` means directory).
    pub dest: String,
    /// `--chown=user[:group]`, verbatim.
    pub chown: Option<String>,
    /// `--from=stage` for multi-stage copies.
    pub from: Option<String>,
}

/// One Dockerfile instruction, with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instruction {
    /// `FROM image[:tag] [AS name]`.
    From {
        /// Image reference text.
        image: String,
        /// Optional stage alias.
        alias: Option<String>,
    },
    /// `RUN` in shell form (a command line for `/bin/sh -c`).
    RunShell(String),
    /// `RUN` in exec form (`["prog", "arg", …]`).
    RunExec(Vec<String>),
    /// `ENV` assignments.
    Env(Vec<(String, String)>),
    /// `ARG name[=default]`.
    Arg {
        /// Variable name.
        name: String,
        /// Optional default.
        default: Option<String>,
    },
    /// `WORKDIR path`.
    Workdir(String),
    /// `USER spec`.
    User(String),
    /// `LABEL` pairs.
    Label(Vec<(String, String)>),
    /// `COPY`.
    Copy(CopySpec),
    /// `ADD` (treated as COPY; URL/tar semantics out of scope).
    Add(CopySpec),
    /// `ENTRYPOINT` (exec or shell form normalized to argv).
    Entrypoint(Vec<String>),
    /// `CMD` (same normalization).
    Cmd(Vec<String>),
    /// `SHELL ["sh", "-c"]`.
    Shell(Vec<String>),
    /// `EXPOSE`/`VOLUME`/`STOPSIGNAL`/… recorded but inert at build time.
    NoOp {
        /// Instruction keyword.
        keyword: String,
        /// Raw arguments.
        args: String,
    },
}

impl Instruction {
    /// The Dockerfile keyword.
    pub fn keyword(&self) -> &str {
        match self {
            Instruction::From { .. } => "FROM",
            Instruction::RunShell(_) | Instruction::RunExec(_) => "RUN",
            Instruction::Env(_) => "ENV",
            Instruction::Arg { .. } => "ARG",
            Instruction::Workdir(_) => "WORKDIR",
            Instruction::User(_) => "USER",
            Instruction::Label(_) => "LABEL",
            Instruction::Copy(_) => "COPY",
            Instruction::Add(_) => "ADD",
            Instruction::Entrypoint(_) => "ENTRYPOINT",
            Instruction::Cmd(_) => "CMD",
            Instruction::Shell(_) => "SHELL",
            Instruction::NoOp { .. } => "NOOP",
        }
    }
}

/// A parsed Dockerfile.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Dockerfile {
    /// Instructions with their source line numbers.
    pub instructions: Vec<(u32, Instruction)>,
}

impl Dockerfile {
    /// Count of instructions ("grown in N instructions" uses this).
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Empty file?
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The first FROM's image reference, if any.
    pub fn base_image(&self) -> Option<&str> {
        self.instructions.iter().find_map(|(_, i)| match i {
            Instruction::From { image, .. } => Some(image.as_str()),
            _ => None,
        })
    }

    /// The instructions before the first FROM (global ARGs, by the
    /// structural rule the parser enforces).
    pub fn header(&self) -> &[(u32, Instruction)] {
        let end = self
            .instructions
            .iter()
            .position(|(_, i)| matches!(i, Instruction::From { .. }))
            .unwrap_or(self.instructions.len());
        &self.instructions[..end]
    }

    /// The stages in declaration order: each FROM opens a new stage
    /// that runs to the next FROM (or the end). Empty when the file
    /// has no FROM at all.
    pub fn stages(&self) -> Vec<Stage<'_>> {
        let mut starts: Vec<usize> = self
            .instructions
            .iter()
            .enumerate()
            .filter_map(|(pos, (_, i))| matches!(i, Instruction::From { .. }).then_some(pos))
            .collect();
        starts.push(self.instructions.len());
        starts
            .windows(2)
            .enumerate()
            .map(|(index, w)| {
                let (line, from) = &self.instructions[w[0]];
                let (image, alias) = match from {
                    Instruction::From { image, alias } => (image.as_str(), alias.as_deref()),
                    _ => unreachable!("starts only holds FROM positions"),
                };
                Stage {
                    index,
                    line: *line,
                    image,
                    alias,
                    instructions: &self.instructions[w[0]..w[1]],
                }
            })
            .collect()
    }
}

/// One stage of a (possibly multi-stage) Dockerfile: a borrowed view
/// over the instruction run starting at a `FROM` and ending just
/// before the next one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stage<'a> {
    /// 0-based stage index (what a numeric `--from=N` names).
    pub index: usize,
    /// Source line of the stage's FROM.
    pub line: u32,
    /// The FROM's image reference text (may itself be an earlier
    /// stage's alias).
    pub image: &'a str,
    /// The stage's alias, already normalized to lowercase by the
    /// parser.
    pub alias: Option<&'a str>,
    /// The stage's instructions, starting with its FROM.
    pub instructions: &'a [(u32, Instruction)],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords() {
        assert_eq!(
            Instruction::From {
                image: "x".into(),
                alias: None
            }
            .keyword(),
            "FROM"
        );
        assert_eq!(Instruction::RunShell("ls".into()).keyword(), "RUN");
        assert_eq!(Instruction::RunExec(vec![]).keyword(), "RUN");
    }

    #[test]
    fn base_image_finds_first_from() {
        let df = Dockerfile {
            instructions: vec![
                (
                    1,
                    Instruction::Arg {
                        name: "V".into(),
                        default: None,
                    },
                ),
                (
                    2,
                    Instruction::From {
                        image: "alpine:3.19".into(),
                        alias: None,
                    },
                ),
            ],
        };
        assert_eq!(df.base_image(), Some("alpine:3.19"));
        assert_eq!(df.len(), 2);
    }

    #[test]
    fn stages_split_on_from() {
        let df = crate::parse(
            "ARG V=1\nFROM alpine:3.19 AS build\nRUN true\nFROM scratch\nCOPY --from=build /a /b\n",
        )
        .unwrap();
        assert_eq!(df.header().len(), 1, "global ARG is the header");
        let stages = df.stages();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].index, 0);
        assert_eq!(stages[0].alias, Some("build"));
        assert_eq!(stages[0].image, "alpine:3.19");
        assert_eq!(stages[0].instructions.len(), 2, "FROM + RUN");
        assert_eq!(stages[1].alias, None);
        assert_eq!(stages[1].instructions.len(), 2, "FROM + COPY");
    }

    #[test]
    fn no_from_means_no_stages() {
        let df = crate::parse("ARG ONLY=1\n").unwrap();
        assert!(df.stages().is_empty());
        assert_eq!(df.header().len(), 1);
    }
}
