//! The parsed representation.

/// `COPY`/`ADD` arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CopySpec {
    /// Sources (context-relative).
    pub sources: Vec<String>,
    /// Destination (image path; trailing `/` means directory).
    pub dest: String,
    /// `--chown=user[:group]`, verbatim.
    pub chown: Option<String>,
    /// `--from=stage` for multi-stage copies.
    pub from: Option<String>,
}

/// One Dockerfile instruction, with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instruction {
    /// `FROM image[:tag] [AS name]`.
    From {
        /// Image reference text.
        image: String,
        /// Optional stage alias.
        alias: Option<String>,
    },
    /// `RUN` in shell form (a command line for `/bin/sh -c`).
    RunShell(String),
    /// `RUN` in exec form (`["prog", "arg", …]`).
    RunExec(Vec<String>),
    /// `ENV` assignments.
    Env(Vec<(String, String)>),
    /// `ARG name[=default]`.
    Arg {
        /// Variable name.
        name: String,
        /// Optional default.
        default: Option<String>,
    },
    /// `WORKDIR path`.
    Workdir(String),
    /// `USER spec`.
    User(String),
    /// `LABEL` pairs.
    Label(Vec<(String, String)>),
    /// `COPY`.
    Copy(CopySpec),
    /// `ADD` (treated as COPY; URL/tar semantics out of scope).
    Add(CopySpec),
    /// `ENTRYPOINT` (exec or shell form normalized to argv).
    Entrypoint(Vec<String>),
    /// `CMD` (same normalization).
    Cmd(Vec<String>),
    /// `SHELL ["sh", "-c"]`.
    Shell(Vec<String>),
    /// `EXPOSE`/`VOLUME`/`STOPSIGNAL`/… recorded but inert at build time.
    NoOp {
        /// Instruction keyword.
        keyword: String,
        /// Raw arguments.
        args: String,
    },
}

impl Instruction {
    /// The Dockerfile keyword.
    pub fn keyword(&self) -> &str {
        match self {
            Instruction::From { .. } => "FROM",
            Instruction::RunShell(_) | Instruction::RunExec(_) => "RUN",
            Instruction::Env(_) => "ENV",
            Instruction::Arg { .. } => "ARG",
            Instruction::Workdir(_) => "WORKDIR",
            Instruction::User(_) => "USER",
            Instruction::Label(_) => "LABEL",
            Instruction::Copy(_) => "COPY",
            Instruction::Add(_) => "ADD",
            Instruction::Entrypoint(_) => "ENTRYPOINT",
            Instruction::Cmd(_) => "CMD",
            Instruction::Shell(_) => "SHELL",
            Instruction::NoOp { .. } => "NOOP",
        }
    }
}

/// A parsed Dockerfile.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Dockerfile {
    /// Instructions with their source line numbers.
    pub instructions: Vec<(u32, Instruction)>,
}

impl Dockerfile {
    /// Count of instructions ("grown in N instructions" uses this).
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Empty file?
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The first FROM's image reference, if any.
    pub fn base_image(&self) -> Option<&str> {
        self.instructions.iter().find_map(|(_, i)| match i {
            Instruction::From { image, .. } => Some(image.as_str()),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords() {
        assert_eq!(
            Instruction::From {
                image: "x".into(),
                alias: None
            }
            .keyword(),
            "FROM"
        );
        assert_eq!(Instruction::RunShell("ls".into()).keyword(), "RUN");
        assert_eq!(Instruction::RunExec(vec![]).keyword(), "RUN");
    }

    #[test]
    fn base_image_finds_first_from() {
        let df = Dockerfile {
            instructions: vec![
                (
                    1,
                    Instruction::Arg {
                        name: "V".into(),
                        default: None,
                    },
                ),
                (
                    2,
                    Instruction::From {
                        image: "alpine:3.19".into(),
                        alias: None,
                    },
                ),
            ],
        };
        assert_eq!(df.base_image(), Some("alpine:3.19"));
        assert_eq!(df.len(), 2);
    }
}
