//! `$VAR` / `${VAR}` / `${VAR:-default}` substitution for ENV/ARG values.

/// Expand variables in `s` using `lookup`. Unknown `$VAR` expands to the
/// empty string (Docker behaviour); `\$` escapes a literal dollar.
pub fn substitute(s: &str, lookup: &dyn Fn(&str) -> Option<String>) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\\' if chars.peek() == Some(&'$') => {
                chars.next();
                out.push('$');
            }
            '$' => match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut inner = String::new();
                    let mut closed = false;
                    for c in chars.by_ref() {
                        if c == '}' {
                            closed = true;
                            break;
                        }
                        inner.push(c);
                    }
                    if !closed {
                        out.push_str("${");
                        out.push_str(&inner);
                        continue;
                    }
                    if let Some((name, default)) = inner.split_once(":-") {
                        match lookup(name) {
                            Some(v) if !v.is_empty() => out.push_str(&v),
                            _ => out.push_str(default),
                        }
                    } else if let Some((name, alt)) = inner.split_once(":+") {
                        if lookup(name).is_some_and(|v| !v.is_empty()) {
                            out.push_str(alt);
                        }
                    } else if let Some(v) = lookup(&inner) {
                        out.push_str(&v);
                    }
                }
                Some(c) if c.is_ascii_alphabetic() || *c == '_' => {
                    let mut name = String::new();
                    while let Some(&c) = chars.peek() {
                        if c.is_ascii_alphanumeric() || c == '_' {
                            name.push(c);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    if let Some(v) = lookup(&name) {
                        out.push_str(&v);
                    }
                }
                _ => out.push('$'),
            },
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |k| {
            pairs
                .iter()
                .find(|(n, _)| *n == k)
                .map(|(_, v)| v.to_string())
        }
    }

    #[test]
    fn plain_vars() {
        let l = env(&[("FOO", "bar")]);
        assert_eq!(substitute("x $FOO y", &l), "x bar y");
        assert_eq!(substitute("${FOO}", &l), "bar");
        assert_eq!(substitute("$FOO$FOO", &l), "barbar");
    }

    #[test]
    fn unknown_is_empty() {
        let l = env(&[]);
        assert_eq!(substitute("a $NOPE b", &l), "a  b");
        assert_eq!(substitute("${NOPE}", &l), "");
    }

    #[test]
    fn defaults() {
        let l = env(&[("SET", "v")]);
        assert_eq!(substitute("${SET:-dflt}", &l), "v");
        assert_eq!(substitute("${UNSET:-dflt}", &l), "dflt");
        assert_eq!(substitute("${SET:+alt}", &l), "alt");
        assert_eq!(substitute("${UNSET:+alt}", &l), "");
    }

    #[test]
    fn escapes_and_literals() {
        let l = env(&[("X", "v")]);
        assert_eq!(substitute("\\$X", &l), "$X");
        assert_eq!(substitute("100$", &l), "100$");
        assert_eq!(substitute("a$1", &l), "a$1", "digits don't start names");
    }

    #[test]
    fn no_dollar_is_identity() {
        let l = env(&[]);
        for s in ["", "plain", "with spaces", "punct!@#%"] {
            assert_eq!(substitute(s, &l), s);
        }
    }

    #[test]
    fn unterminated_brace_left_alone() {
        let l = env(&[("A", "x")]);
        assert_eq!(substitute("${A", &l), "${A");
    }

    #[test]
    fn underscore_names() {
        let l = env(&[("MY_VAR_2", "ok")]);
        assert_eq!(substitute("$MY_VAR_2!", &l), "ok!");
    }
}
