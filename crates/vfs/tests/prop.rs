//! Property tests on filesystem invariants.

use proptest::prelude::*;
use zr_vfs::access::Access;
use zr_vfs::fs::{FollowMode, Fs};
use zr_vfs::path::{join, normalize};

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z]{1,8}"
}

fn arb_path(depth: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(arb_name(), 1..=depth).prop_map(|parts| format!("/{}", parts.join("/")))
}

proptest! {
    /// normalize is idempotent, absolute, and free of dot segments.
    #[test]
    fn normalize_properties(input in "[a-z./]{0,60}") {
        let n = normalize(&format!("/{input}"));
        prop_assert!(n.starts_with('/'));
        prop_assert_eq!(normalize(&n), n.clone());
        prop_assert!(!n.contains("//"));
        for comp in n.split('/') {
            prop_assert!(comp != "." && comp != "..");
        }
    }

    /// join with an absolute rhs ignores the base.
    #[test]
    fn join_absolute_wins(base in arb_path(3), rhs in arb_path(3)) {
        prop_assert_eq!(join(&base, &rhs), normalize(&rhs));
    }

    /// Create/write/read roundtrip for arbitrary content at arbitrary
    /// depth; inode count returns to baseline after removal.
    #[test]
    fn write_read_unlink_roundtrip(
        path in arb_path(4),
        content in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut fs = Fs::new();
        let root = Access::root();
        let baseline = fs.inode_count();
        if let Some((parent, _)) = zr_vfs::path::split_parent(&path) {
            fs.mkdir_p(&parent, 0o755).expect("mkdir -p");
        }
        fs.write_file(&path, 0o644, content.clone(), &root).expect("write");
        prop_assert_eq!(fs.read_file(&path, &root).expect("read"), content);
        let st = fs.stat(&path, &root, FollowMode::Follow).expect("stat");
        prop_assert_eq!(st.nlink, 1);
        fs.unlink(&path, &root).expect("unlink");
        prop_assert!(fs.read_file(&path, &root).is_err());
        // Only the directories remain.
        prop_assert!(fs.inode_count() >= baseline);
    }

    /// Hard links share content; nlink counts stay consistent; content
    /// survives until the last link goes.
    #[test]
    fn hardlink_invariants(content in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut fs = Fs::new();
        let root = Access::root();
        fs.write_file("/a", 0o644, content.clone(), &root).unwrap();
        fs.link("/a", "/b", &root).unwrap();
        fs.link("/b", "/c", &root).unwrap();
        let st = fs.stat("/a", &root, FollowMode::Follow).unwrap();
        prop_assert_eq!(st.nlink, 3);
        fs.unlink("/a", &root).unwrap();
        fs.unlink("/b", &root).unwrap();
        prop_assert_eq!(fs.read_file("/c", &root).unwrap(), content);
        let st = fs.stat("/c", &root, FollowMode::Follow).unwrap();
        prop_assert_eq!(st.nlink, 1);
    }

    /// Renames preserve content and never corrupt the tree.
    #[test]
    fn rename_preserves_content(
        src in arb_path(3),
        dst in arb_path(3),
        content in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assume!(src != dst);
        prop_assume!(!dst.starts_with(&format!("{src}/")));
        prop_assume!(!src.starts_with(&format!("{dst}/")));
        let mut fs = Fs::new();
        let root = Access::root();
        if let Some((p, _)) = zr_vfs::path::split_parent(&src) {
            fs.mkdir_p(&p, 0o755).unwrap();
        }
        if let Some((p, _)) = zr_vfs::path::split_parent(&dst) {
            fs.mkdir_p(&p, 0o755).unwrap();
        }
        // dst's parent dir may shadow src's file path; skip those cases.
        prop_assume!(fs.resolve(&src, &root, FollowMode::Follow).is_err());
        fs.write_file(&src, 0o644, content.clone(), &root).unwrap();
        fs.rename(&src, &dst, &root).unwrap();
        prop_assert!(fs.resolve(&src, &root, FollowMode::Follow).is_err());
        prop_assert_eq!(fs.read_file(&dst, &root).unwrap(), content);
    }

    /// Permission checks are monotone in capability: anything a plain
    /// user can do, a DAC-override credential can too.
    #[test]
    fn dac_override_is_superset(
        perm in 0u32..0o777,
        file_uid in 0u32..4,
        caller_uid in 0u32..4,
    ) {
        let mut fs = Fs::new();
        let root = Access::root();
        fs.write_file("/f", perm, b"x".to_vec(), &root).unwrap();
        fs.set_owner(1 + 1, file_uid, file_uid).ok(); // best effort; ino 2 = /f
        let user = Access::user(caller_uid, caller_uid);
        let capable = Access { cap_dac_override: true, ..user.clone() };
        if fs.read_file("/f", &user).is_ok() {
            prop_assert!(fs.read_file("/f", &capable).is_ok());
        }
    }
}
