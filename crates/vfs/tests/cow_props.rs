//! Property tests for copy-on-write snapshot isolation and digest
//! stability — the invariants the build cache and the image digest
//! stand on, pinned for *arbitrary* operation sequences rather than
//! the curated unit-test cases.

use proptest::prelude::*;
use std::sync::Arc;
use zr_vfs::access::Access;
use zr_vfs::fs::{FollowMode, Fs};
use zr_vfs::Blob;

fn root() -> Access {
    Access::root()
}

/// Interpret one encoded op against `fs`. The op universe covers file
/// writes/appends/truncates, metadata changes, links, renames and
/// removals over a small path set — every mutation class the builder's
/// snapshots must isolate. Errors are fine (e.g. removing a missing
/// file); the property is about isolation, not success.
fn apply(fs: &mut Fs, op: (u8, u8, u8)) {
    let (kind, target, payload) = op;
    let name = format!("/f{}", target % 8);
    let other = format!("/f{}", payload % 8);
    let acc = root();
    match kind % 10 {
        0 | 1 => {
            // Writes are the most common mutation in a build.
            let _ = fs.write_file(&name, 0o644, vec![payload; payload as usize % 64 + 1], &acc);
        }
        2 => {
            let _ = fs.append_file(&name, &[payload], &acc);
        }
        3 => {
            if let Ok(ino) = fs.resolve(&name, &acc, FollowMode::Follow) {
                let _ = fs.truncate(ino, u64::from(payload % 64));
            }
        }
        4 => {
            if let Ok(ino) = fs.resolve(&name, &acc, FollowMode::NoFollow) {
                let _ = fs.set_perm(ino, 0o600 | u32::from(payload % 0o200));
            }
        }
        5 => {
            if let Ok(ino) = fs.resolve(&name, &acc, FollowMode::NoFollow) {
                let _ = fs.set_owner(ino, u32::from(payload), u32::from(payload));
            }
        }
        6 => {
            let _ = fs.unlink(&name, &acc);
        }
        7 => {
            let _ = fs.link(&name, &other, &acc);
        }
        8 => {
            let _ = fs.rename(&name, &other, &acc);
        }
        _ => {
            let _ = fs.symlink(&other, &name, &acc);
        }
    }
}

/// A base filesystem with a few files so early ops have targets.
fn seeded() -> Fs {
    let mut fs = Fs::new();
    for i in 0..4 {
        fs.write_file(&format!("/f{i}"), 0o644, vec![i; 16], &root())
            .unwrap();
    }
    fs
}

proptest! {
    /// A CoW-cloned filesystem never observes writes made to its
    /// parent, and vice versa — for arbitrary mutation sequences on
    /// both sides.
    #[test]
    fn snapshots_never_observe_sibling_writes(
        setup in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..12),
        parent_ops in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..12),
        child_ops in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..12),
    ) {
        let mut parent = seeded();
        for op in setup {
            apply(&mut parent, op);
        }
        let frozen = parent.tree_digest();
        let mut child = parent.clone();

        // Child mutations are invisible to the parent…
        for op in child_ops {
            apply(&mut child, op);
        }
        prop_assert_eq!(parent.tree_digest(), frozen.clone());
        prop_assert_eq!(parent.tree_digest_uncached(), frozen.clone());

        // …and parent mutations are invisible to a fresh snapshot.
        let child_state = child.tree_digest();
        let snap = child.clone();
        for op in parent_ops {
            apply(&mut parent, op);
            apply(&mut child, op);
        }
        prop_assert_eq!(snap.tree_digest(), child_state);
        prop_assert_eq!(snap.tree_digest_uncached(), snap.tree_digest());
    }

    /// The memoized tree digest always equals the full-rehash
    /// reference, and clones digest identically to their source —
    /// whatever sequence of mutations and snapshots produced the tree.
    #[test]
    fn memoized_digest_equals_reference(
        ops in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..24),
    ) {
        let mut fs = seeded();
        for op in ops {
            apply(&mut fs, op);
            // Interleave digests so memos exist at every divergence
            // point; a stale memo would be caught immediately.
            prop_assert_eq!(fs.tree_digest(), fs.tree_digest_uncached());
        }
        let clone = fs.clone();
        prop_assert_eq!(clone.tree_digest(), fs.tree_digest());
    }

    /// Clone-mutate-revert round-trips the digest: restoring a file's
    /// exact previous contents, permissions and ownership restores the
    /// exact previous digest, even though versions and memos moved.
    #[test]
    fn digests_are_stable_across_clone_mutate_revert(
        target in 0u8..4,
        edits in prop::collection::vec((any::<u8>(), any::<u8>()), 1..8),
    ) {
        let fs = seeded();
        let path = format!("/f{target}");
        let acc = root();
        let before = fs.tree_digest();
        let original: Arc<Blob> = fs.read_file_blob(&path, &acc).unwrap();

        let mut work = fs.clone();
        for (perm, data) in edits {
            let _ = work.write_file(&path, 0o644, vec![data; 10], &acc);
            let ino = work.resolve(&path, &acc, FollowMode::Follow).unwrap();
            let _ = work.set_perm(ino, 0o600 | u32::from(perm % 0o100));
        }
        prop_assert_ne!(work.tree_digest(), before.clone());

        // Revert: same bytes (shared blob), same perm, same owner.
        work.write_file_blob(&path, 0o644, original, &acc).unwrap();
        let ino = work.resolve(&path, &acc, FollowMode::Follow).unwrap();
        work.set_perm(ino, 0o644).unwrap();
        work.set_owner(ino, 0, 0).unwrap();
        prop_assert_eq!(work.tree_digest(), before.clone());
        prop_assert_eq!(work.tree_digest_uncached(), before);
    }

    /// Blob digests are a pure function of content: stable across
    /// aliasing, memoization order, and fresh recomputation.
    #[test]
    fn blob_digests_are_content_pure(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let a = Blob::new(data.clone());
        let b = Blob::new(data.clone());
        let alias = Arc::clone(&a);
        prop_assert_eq!(alias.sha_hex(), b.sha_hex()); // memo vs fresh
        prop_assert_eq!(a.sha_bytes(), &zr_digest::Sha256::digest(&data));
    }
}
