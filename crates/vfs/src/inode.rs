//! Inodes and their metadata.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::blob::Blob;
use zr_syscalls::mode;

/// Inode number.
pub type Ino = u64;

/// What an inode *is*. Regular file data lives in an `Arc`-shared
/// [`Blob`] — snapshots of the whole filesystem share payload bytes,
/// and a write swaps in a new blob (whole-file copy-on-write).
/// Directory entry maps sit behind their own `Arc` for the same
/// reason: copying an inode page after a snapshot clones one pointer
/// per directory, and only a directory actually being mutated pays for
/// a deep copy of its map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileKind {
    /// Regular file with shared contents.
    File(Arc<Blob>),
    /// Directory: name → child inode, plus a parent pointer for `..`.
    Dir {
        /// Sorted entries (deterministic iteration for reproducible
        /// builds), copy-on-write shared between snapshots.
        entries: Arc<BTreeMap<String, Ino>>,
        /// `..`; the root points at itself.
        parent: Ino,
    },
    /// Symbolic link and its target path.
    Symlink(String),
    /// Character device (major/minor packed with `mode::makedev`).
    CharDev(u64),
    /// Block device.
    BlockDev(u64),
    /// Named pipe.
    Fifo,
    /// Unix-domain socket.
    Socket,
}

impl FileKind {
    /// The `S_IFMT` type bits for this kind.
    pub fn type_bits(&self) -> u32 {
        match self {
            FileKind::File(_) => mode::S_IFREG,
            FileKind::Dir { .. } => mode::S_IFDIR,
            FileKind::Symlink(_) => mode::S_IFLNK,
            FileKind::CharDev(_) => mode::S_IFCHR,
            FileKind::BlockDev(_) => mode::S_IFBLK,
            FileKind::Fifo => mode::S_IFIFO,
            FileKind::Socket => mode::S_IFSOCK,
        }
    }

    /// Logical size (file length; 0 for non-files, target length for
    /// symlinks, like Linux reports).
    pub fn size(&self) -> u64 {
        match self {
            FileKind::File(data) => data.len() as u64,
            FileKind::Symlink(t) => t.len() as u64,
            _ => 0,
        }
    }
}

/// Everything `stat(2)` reports (minus fields meaningless in the model).
///
/// `uid`/`gid` are **kernel ids** — global identities. Processes inside a
/// user namespace observe these through their id maps (`zr-kernel`
/// translates both directions), which is where the Type III restrictions
/// come from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metadata {
    /// Owner (kernel uid).
    pub uid: u32,
    /// Group (kernel gid).
    pub gid: u32,
    /// Permission bits incl. setuid/setgid/sticky (type bits *not*
    /// included here; they come from the kind).
    pub perm: u32,
    /// Hard-link count.
    pub nlink: u32,
    /// Logical modification time (ticks of the simulated clock).
    pub mtime: u64,
    /// Extended attributes.
    pub xattrs: BTreeMap<String, Vec<u8>>,
}

impl Metadata {
    /// Fresh metadata for a newly created object.
    pub fn new(uid: u32, gid: u32, perm: u32, now: u64) -> Metadata {
        Metadata {
            uid,
            gid,
            perm: perm & 0o7777,
            nlink: 1,
            mtime: now,
            xattrs: BTreeMap::new(),
        }
    }
}

/// One filesystem object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inode {
    /// Its number.
    pub ino: Ino,
    /// What it is (and its payload).
    pub kind: FileKind,
    /// Its metadata.
    pub meta: Metadata,
}

impl Inode {
    /// Full `st_mode`: type bits | permission bits.
    pub fn st_mode(&self) -> u32 {
        self.kind.type_bits() | self.meta.perm
    }

    /// Device number for device nodes, 0 otherwise.
    pub fn rdev(&self) -> u64 {
        match self.kind {
            FileKind::CharDev(d) | FileKind::BlockDev(d) => d,
            _ => 0,
        }
    }

    /// Is this a directory?
    pub fn is_dir(&self) -> bool {
        matches!(self.kind, FileKind::Dir { .. })
    }

    /// Is this a symlink?
    pub fn is_symlink(&self) -> bool {
        matches!(self.kind, FileKind::Symlink(_))
    }
}

/// The `stat(2)` result surfaced to simulated userspace. Ids here are
/// still kernel ids; the kernel maps them into the caller's namespace
/// before returning (unmapped ids appear as the overflow id 65534, just
/// like Linux).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stat {
    /// Inode number.
    pub ino: Ino,
    /// Type and permissions.
    pub mode: u32,
    /// Owner.
    pub uid: u32,
    /// Group.
    pub gid: u32,
    /// Size in bytes.
    pub size: u64,
    /// Hard links.
    pub nlink: u32,
    /// Device number (for device nodes).
    pub rdev: u64,
    /// Modification time (logical ticks).
    pub mtime: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_bits_match_kind() {
        assert_eq!(FileKind::File(Blob::empty()).type_bits(), mode::S_IFREG);
        assert_eq!(
            FileKind::Dir {
                entries: Arc::new(BTreeMap::new()),
                parent: 1
            }
            .type_bits(),
            mode::S_IFDIR
        );
        assert_eq!(FileKind::Symlink("/x".into()).type_bits(), mode::S_IFLNK);
        assert_eq!(FileKind::CharDev(0).type_bits(), mode::S_IFCHR);
        assert_eq!(FileKind::BlockDev(0).type_bits(), mode::S_IFBLK);
        assert_eq!(FileKind::Fifo.type_bits(), mode::S_IFIFO);
        assert_eq!(FileKind::Socket.type_bits(), mode::S_IFSOCK);
    }

    #[test]
    fn st_mode_combines_type_and_perm() {
        let inode = Inode {
            ino: 5,
            kind: FileKind::File(Blob::new(b"hi".to_vec())),
            meta: Metadata::new(0, 0, 0o4755, 0),
        };
        assert_eq!(inode.st_mode(), mode::S_IFREG | 0o4755);
        assert_eq!(inode.kind.size(), 2);
    }

    #[test]
    fn perm_is_masked_to_12_bits() {
        let m = Metadata::new(0, 0, 0o777_7777, 0);
        assert_eq!(m.perm, 0o7777);
    }

    #[test]
    fn sizes() {
        assert_eq!(FileKind::Symlink("/usr/bin".into()).size(), 8);
        assert_eq!(FileKind::Fifo.size(), 0);
    }
}
