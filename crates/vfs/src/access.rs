//! The caller snapshot used for permission checks.
//!
//! `zr-kernel` distills a process's credentials *and* the outcome of its
//! namespace-relative capability checks into this plain struct, so the VFS
//! can stay ignorant of user namespaces while still enforcing classic
//! owner/group/other permissions.

/// Who is asking, in kernel-id terms, plus the DAC-relevant capability
/// verdicts (already resolved against the filesystem's owning namespace).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Access {
    /// Filesystem uid (kernel id).
    pub fsuid: u32,
    /// Filesystem gid (kernel id).
    pub fsgid: u32,
    /// Supplementary groups (kernel ids).
    pub groups: Vec<u32>,
    /// Holds `CAP_DAC_OVERRIDE` *effective against this filesystem*.
    pub cap_dac_override: bool,
    /// Holds `CAP_DAC_READ_SEARCH` effective against this filesystem.
    pub cap_dac_read_search: bool,
    /// Holds `CAP_FOWNER` effective against this filesystem.
    pub cap_fowner: bool,
}

impl Access {
    /// An all-powerful accessor (true root on the filesystem's owning
    /// namespace). Useful for image materialization and tests.
    pub fn root() -> Access {
        Access {
            fsuid: 0,
            fsgid: 0,
            groups: Vec::new(),
            cap_dac_override: true,
            cap_dac_read_search: true,
            cap_fowner: true,
        }
    }

    /// An ordinary user with no capabilities.
    pub fn user(uid: u32, gid: u32) -> Access {
        Access {
            fsuid: uid,
            fsgid: gid,
            groups: Vec::new(),
            cap_dac_override: false,
            cap_dac_read_search: false,
            cap_fowner: false,
        }
    }

    /// Does the caller's group set include `gid`?
    pub fn in_group(&self, gid: u32) -> bool {
        self.fsgid == gid || self.groups.contains(&gid)
    }

    /// Is the caller the owner, or does it hold `CAP_FOWNER`?
    pub fn owns(&self, uid: u32) -> bool {
        self.fsuid == uid || self.cap_fowner
    }
}

/// What an operation wants from an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Want {
    /// Read permission.
    pub r: bool,
    /// Write permission.
    pub w: bool,
    /// Execute / search permission.
    pub x: bool,
}

impl Want {
    /// Read only.
    pub const R: Want = Want {
        r: true,
        w: false,
        x: false,
    };
    /// Write only.
    pub const W: Want = Want {
        r: false,
        w: true,
        x: false,
    };
    /// Execute/search only.
    pub const X: Want = Want {
        r: false,
        w: false,
        x: true,
    };
    /// Read + write.
    pub const RW: Want = Want {
        r: true,
        w: true,
        x: false,
    };
}

/// Classic POSIX DAC: pick the owner/group/other triad and test it,
/// honouring `CAP_DAC_OVERRIDE` / `CAP_DAC_READ_SEARCH` the way
/// `generic_permission()` does.
pub fn permitted(access: &Access, uid: u32, gid: u32, perm: u32, want: Want) -> bool {
    // CAP_DAC_OVERRIDE: everything, except execute on files with no x bit
    // anywhere (kernel refuses to execute mode 0644 even as root). The
    // caller passes `x` only when execution/search is wanted.
    if access.cap_dac_override {
        if want.x {
            return perm & 0o111 != 0;
        }
        return true;
    }
    if access.cap_dac_read_search && !want.w && !want.x {
        return true;
    }

    let triad = if access.fsuid == uid {
        (perm >> 6) & 0o7
    } else if access.in_group(gid) {
        (perm >> 3) & 0o7
    } else {
        perm & 0o7
    };

    (!want.r || triad & 0o4 != 0) && (!want.w || triad & 0o2 != 0) && (!want.x || triad & 0o1 != 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_class_selected_first() {
        let a = Access::user(1000, 1000);
        // 0o400: owner can read, group/other cannot.
        assert!(permitted(&a, 1000, 2000, 0o400, Want::R));
        assert!(!permitted(&a, 1000, 2000, 0o400, Want::W));
        // Owner class applies even when it grants LESS than other.
        assert!(!permitted(&a, 1000, 2000, 0o077, Want::R));
    }

    #[test]
    fn group_class() {
        let mut a = Access::user(1000, 2000);
        assert!(permitted(&a, 0, 2000, 0o040, Want::R));
        a.groups.push(3000);
        assert!(permitted(&a, 0, 3000, 0o040, Want::R));
        assert!(!permitted(&a, 0, 4000, 0o040, Want::R));
    }

    #[test]
    fn other_class() {
        let a = Access::user(1000, 1000);
        assert!(permitted(&a, 0, 0, 0o004, Want::R));
        assert!(!permitted(&a, 0, 0, 0o040, Want::R));
    }

    #[test]
    fn dac_override_allows_everything_but_modeless_exec() {
        let a = Access::root();
        assert!(permitted(&a, 500, 500, 0o000, Want::RW));
        assert!(!permitted(&a, 500, 500, 0o644, Want::X));
        assert!(permitted(&a, 500, 500, 0o100, Want::X));
    }

    #[test]
    fn dac_read_search_reads_only() {
        let a = Access {
            cap_dac_override: false,
            cap_dac_read_search: true,
            ..Access::user(1000, 1000)
        };
        assert!(permitted(&a, 0, 0, 0o000, Want::R));
        assert!(!permitted(&a, 0, 0, 0o000, Want::W));
    }

    #[test]
    fn owns_respects_cap_fowner() {
        let mut a = Access::user(1000, 1000);
        assert!(a.owns(1000));
        assert!(!a.owns(0));
        a.cap_fowner = true;
        assert!(a.owns(0));
    }
}
