//! # zr-vfs — in-memory POSIX-like filesystem
//!
//! The filesystem substrate under the simulated kernel. It is *mechanism
//! only*: inodes carry the full metadata package managers care about
//! (uid/gid as **kernel ids**, mode with type and setuid/setgid/sticky
//! bits, xattrs, device numbers, link counts, logical timestamps), and
//! every operation takes an [`Access`] snapshot describing the caller so
//! classic owner/group/other permission checks happen during path walks.
//!
//! *Policy* — user-namespace id mapping, `CAP_CHOWN` versus superblock
//! ownership, the rules that make Figure 1b fail — lives above, in
//! `zr-kernel`. The split mirrors the kernel's own VFS/LSM layering and
//! keeps this crate independently testable.
//!
//! Errors are [`zr_syscalls::Errno`] values throughout, so syscall
//! results flow unmodified from the deepest layer to the simulated libc.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod blob;
pub mod fs;
pub mod inode;
pub mod path;

pub use access::Access;
pub use blob::Blob;
pub use fs::{FollowMode, Fs, Nondeterminism};
pub use inode::{FileKind, Ino, Inode, Metadata};
pub use path::{join, normalize, split_parent};
