//! Shared, immutable file contents with a memoized content digest.
//!
//! Every regular file's payload lives in a [`Blob`] behind an `Arc`.
//! Cloning a filesystem — the per-instruction build snapshot — clones
//! pointers, never bytes; a write replaces the file's blob with a new
//! one and leaves every other snapshot untouched (whole-file
//! copy-on-write, the overlayfs copy-up model at file granularity).
//!
//! The blob also memoizes its own SHA-256: computed lazily on first
//! use, then shared by every snapshot holding the same `Arc`. This is
//! what makes warm image digests O(changed bytes) — unchanged files
//! contribute a precomputed 32-byte digest instead of being re-hashed.

use std::sync::{Arc, OnceLock};

use zr_digest::{hex, Sha256};

/// Immutable file contents plus a lazily computed SHA-256.
///
/// Blobs are always handled as `Arc<Blob>`; the type has no public
/// constructor returning a bare value. Equality is over the data bytes
/// (the digest memo is derived state).
#[derive(Default)]
pub struct Blob {
    data: Vec<u8>,
    sha: OnceLock<[u8; 32]>,
}

impl Blob {
    /// Wrap `data` in a shared blob.
    pub fn new(data: Vec<u8>) -> Arc<Blob> {
        Arc::new(Blob {
            data,
            sha: OnceLock::new(),
        })
    }

    /// An empty blob (fresh `Arc`; empty files are rare enough that a
    /// shared singleton would buy nothing).
    pub fn empty() -> Arc<Blob> {
        Blob::new(Vec::new())
    }

    /// Rehydrate a blob from storage with its digest already known —
    /// the deserialization constructor the persistent store uses, so a
    /// reloaded filesystem starts with every payload memo warm and the
    /// first `tree_digest` after a cold open hashes no file bytes.
    ///
    /// The claimed digest is verified against the data: a corrupt or
    /// mislabeled payload comes back as `None` instead of poisoning
    /// every digest computed over it.
    pub fn with_sha(data: Vec<u8>, sha: [u8; 32]) -> Option<Arc<Blob>> {
        if Sha256::digest(&data) != sha {
            return None;
        }
        let cell = OnceLock::new();
        cell.set(sha).expect("fresh cell");
        Some(Arc::new(Blob { data, sha: cell }))
    }

    /// The contents.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Content length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Is the blob empty?
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The SHA-256 of the contents, computed on first call and memoized
    /// for the lifetime of the allocation — every snapshot sharing this
    /// blob reuses the same digest.
    pub fn sha_bytes(&self) -> &[u8; 32] {
        self.sha.get_or_init(|| Sha256::digest(&self.data))
    }

    /// The memoized digest as 64 hex characters.
    pub fn sha_hex(&self) -> String {
        hex(self.sha_bytes())
    }

    /// Has the digest been computed yet? (Observability for tests and
    /// the dedup accounting: a "dirty" blob is one no digest consumer
    /// has seen.)
    pub fn sha_is_cached(&self) -> bool {
        self.sha.get().is_some()
    }
}

impl std::fmt::Debug for Blob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Blob")
            .field("len", &self.data.len())
            .field("sha_cached", &self.sha_is_cached())
            .finish()
    }
}

impl PartialEq for Blob {
    fn eq(&self, other: &Blob) -> bool {
        // Pointer-equal blobs (the common case after a snapshot) are
        // equal without touching the bytes.
        std::ptr::eq(self, other) || self.data == other.data
    }
}

impl Eq for Blob {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_memoized_and_correct() {
        let blob = Blob::new(b"abc".to_vec());
        assert!(!blob.sha_is_cached());
        assert_eq!(
            blob.sha_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert!(blob.sha_is_cached());
        // A clone of the Arc shares the memo.
        let alias = Arc::clone(&blob);
        assert!(alias.sha_is_cached());
        assert_eq!(alias.sha_bytes(), blob.sha_bytes());
    }

    #[test]
    fn with_sha_preseeds_the_memo_and_verifies() {
        let sha = *Blob::new(b"abc".to_vec()).sha_bytes();
        let blob = Blob::with_sha(b"abc".to_vec(), sha).expect("digest matches");
        assert!(blob.sha_is_cached(), "memo arrives warm");
        assert_eq!(*blob.sha_bytes(), sha);
        assert!(
            Blob::with_sha(b"abd".to_vec(), sha).is_none(),
            "a mislabeled payload is rejected"
        );
    }

    #[test]
    fn equality_is_over_data() {
        let a = Blob::new(b"x".to_vec());
        let b = Blob::new(b"x".to_vec());
        let _ = a.sha_hex(); // memo state must not affect equality
        assert_eq!(*a, *b);
        assert_ne!(*a, *Blob::new(b"y".to_vec()));
        assert!(Blob::empty().is_empty());
        assert_eq!(Blob::new(b"ab".to_vec()).len(), 2);
    }
}
