//! Path manipulation for the virtual filesystem.
//!
//! All VFS paths are absolute, `/`-separated, UTF-8 strings. [`normalize`]
//! resolves `.` and `..` *lexically* (the kernel-level walker handles
//! `..`-through-symlink correctly by walking components instead).

/// Maximum path length, mirroring `PATH_MAX`.
pub const PATH_MAX: usize = 4096;
/// Maximum single component length, mirroring `NAME_MAX`.
pub const NAME_MAX: usize = 255;

/// Split a path into its non-trivial components (`.` and empty components
/// removed, `..` preserved for the walker).
pub fn components(path: &str) -> impl Iterator<Item = &str> {
    path.split('/').filter(|c| !c.is_empty() && *c != ".")
}

/// Lexically normalize `path` into an absolute path: collapse `//`,
/// resolve `.` and `..` (never above root).
pub fn normalize(path: &str) -> String {
    let mut stack: Vec<&str> = Vec::new();
    for c in components(path) {
        if c == ".." {
            stack.pop();
        } else {
            stack.push(c);
        }
    }
    if stack.is_empty() {
        "/".to_string()
    } else {
        let mut out = String::with_capacity(path.len());
        for c in stack {
            out.push('/');
            out.push_str(c);
        }
        out
    }
}

/// Join `rel` onto `base` (absolute). If `rel` is already absolute it wins.
pub fn join(base: &str, rel: &str) -> String {
    if rel.starts_with('/') {
        normalize(rel)
    } else {
        normalize(&format!("{base}/{rel}"))
    }
}

/// Split a normalized path into (parent, final component).
/// Returns `None` for the root itself.
pub fn split_parent(path: &str) -> Option<(String, &str)> {
    let norm_len = path.len();
    debug_assert!(path.starts_with('/'), "split_parent wants absolute paths");
    if norm_len <= 1 {
        return None;
    }
    let idx = path.rfind('/').expect("absolute path has a slash");
    let name = &path[idx + 1..];
    let parent = if idx == 0 {
        "/".to_string()
    } else {
        path[..idx].to_string()
    };
    Some((parent, name))
}

/// Validate a single directory-entry name.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name != "."
        && name != ".."
        && name.len() <= NAME_MAX
        && !name.contains('/')
        && !name.contains('\0')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_basics() {
        assert_eq!(normalize("/"), "/");
        assert_eq!(normalize("//"), "/");
        assert_eq!(normalize("/a/b/c"), "/a/b/c");
        assert_eq!(normalize("/a//b/./c/"), "/a/b/c");
        assert_eq!(normalize("/a/b/../c"), "/a/c");
        assert_eq!(normalize("/../.."), "/");
        assert_eq!(normalize("/a/../../b"), "/b");
    }

    #[test]
    fn join_basics() {
        assert_eq!(join("/usr", "bin/ls"), "/usr/bin/ls");
        assert_eq!(join("/usr", "/etc/passwd"), "/etc/passwd");
        assert_eq!(join("/usr/bin", ".."), "/usr");
        assert_eq!(join("/", "x"), "/x");
    }

    #[test]
    fn split_parent_basics() {
        assert_eq!(split_parent("/a/b"), Some(("/a".to_string(), "b")));
        assert_eq!(split_parent("/a"), Some(("/".to_string(), "a")));
        assert_eq!(split_parent("/"), None);
    }

    #[test]
    fn name_validity() {
        assert!(valid_name("etc"));
        assert!(valid_name("a.b-c_d"));
        assert!(!valid_name(""));
        assert!(!valid_name("."));
        assert!(!valid_name(".."));
        assert!(!valid_name("a/b"));
        assert!(!valid_name("a\0b"));
        assert!(!valid_name(&"x".repeat(256)));
    }

    #[test]
    fn components_filters_noise() {
        let v: Vec<&str> = components("//a/./b///c/").collect();
        assert_eq!(v, vec!["a", "b", "c"]);
        let v: Vec<&str> = components("/a/../b").collect();
        assert_eq!(v, vec!["a", "..", "b"]);
    }
}
