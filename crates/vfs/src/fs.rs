//! The filesystem proper: an inode arena plus permission-checked
//! operations.
//!
//! Policy/mechanism split: every operation here enforces *classic POSIX
//! DAC* (path-walk search permission, read/write checks, sticky-bit delete
//! rules) against the provided [`Access`] snapshot. Namespace-aware policy
//! (who may chown what to whom) is the simulated kernel's job; the
//! corresponding operations here (`set_owner`, `set_perm`, …) are
//! mechanical.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::access::{permitted, Access, Want};
use crate::blob::Blob;
use crate::inode::{FileKind, Ino, Inode, Metadata, Stat};
use crate::path::{components, join, normalize, split_parent, valid_name};
use zr_digest::{FieldDigest, Sha256};
use zr_syscalls::Errno;

/// Symlink-chase limit (`MAXSYMLINKS`).
const MAX_SYMLINKS: u32 = 40;

/// Inode slots per copy-on-write page. Small enough that the first
/// write after a snapshot copies little; large enough that a snapshot
/// of a big image clones thousands of pointers, not millions.
const PAGE_SLOTS: usize = 64;

/// One copy-on-write page of the inode arena.
type Page = Vec<Option<Inode>>;

/// Injectable nondeterminism sources — the audit mode's forcing
/// functions.
///
/// A real kernel leaks wall-clock time, RNG output, on-disk directory
/// order and default ownership into build outputs; the simulated kernel
/// is deterministic by construction, which would make a reproducibility
/// auditor vacuously green. This config re-introduces each leak *on
/// purpose*, one knob per divergence class from the Docker
/// reproducibility literature, so tests can force a class and assert
/// the auditor names it — and, with the default (all-off) config,
/// assert the normalizing exporter suppresses it.
///
/// All sources are seeded/deterministic themselves: two builds under the
/// *same* `Nondeterminism` agree, two builds under different ones
/// diverge. That keeps every forced-divergence test replayable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Nondeterminism {
    /// Added to every fresh mtime the logical clock hands out — a
    /// skewed build clock (class: tar mtime).
    pub clock_skew: u64,
    /// Seed for the kernel's `getrandom` stream. `None` = the fixed
    /// default stream every builder agrees on; `Some(seed)` = a
    /// machine-local RNG (class: payload content via generated files).
    pub gen_seed: Option<u64>,
    /// Seed for shuffling `read_dir` results — on-disk directory order
    /// instead of the sorted canonical order (class: tar ordering, for
    /// exporters that pack in readdir order).
    pub shuffle_readdir: Option<u64>,
    /// Override the uid/gid newly created files receive, modelling a
    /// builder whose default identity mapping differs (class: owner).
    pub default_ids: Option<(u32, u32)>,
}

impl Nondeterminism {
    /// Is every source disabled (the deterministic default)?
    pub fn is_clean(&self) -> bool {
        *self == Nondeterminism::default()
    }
}

/// Whether the final path component follows symlinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FollowMode {
    /// `stat`-like: resolve a trailing symlink.
    Follow,
    /// `lstat`/`unlink`-like: operate on the symlink itself.
    NoFollow,
}

/// The filesystem.
///
/// The inode arena is split into fixed-size pages, each behind an
/// `Arc`: `Fs::clone` — the per-instruction build snapshot — clones one
/// pointer per page plus the small bookkeeping fields, **O(pages)**
/// instead of O(inodes × bytes). The first mutation of a page after a
/// snapshot copies just that page (`Arc::make_mut`), so between two
/// snapshots the work done is proportional to the pages actually
/// touched. File payloads are [`Blob`]s, shared the same way.
#[derive(Debug)]
pub struct Fs {
    /// Copy-on-write inode pages; slot = ino - 1, `PAGE_SLOTS` per page
    /// (the last page may be partial).
    pages: Vec<Arc<Page>>,
    /// Total slots allocated across all pages.
    slots: usize,
    next_free: Vec<usize>,
    clock: u64,
    /// Content version: bumped on every mutation. Keys the tree-digest
    /// memo — within one `Fs` value's lifetime a version uniquely
    /// identifies a tree state (clones copy the memo *value* and then
    /// diverge on their own counters).
    version: u64,
    /// Memoized `(version, tree_digest)` of the last digest computed.
    tree_memo: Mutex<Option<(u64, String)>>,
    /// Injected nondeterminism sources (all off by default).
    nondet: Nondeterminism,
}

impl Clone for Fs {
    fn clone(&self) -> Fs {
        Fs {
            pages: self.pages.clone(),
            slots: self.slots,
            next_free: self.next_free.clone(),
            clock: self.clock,
            version: self.version,
            // Copy the memo value, not the cell: the clone keeps the
            // warm digest but diverges independently from here on.
            tree_memo: Mutex::new(self.memo_value()),
            nondet: self.nondet.clone(),
        }
    }
}

impl Default for Fs {
    fn default() -> Fs {
        Fs::new()
    }
}

impl Fs {
    /// A filesystem containing only a root directory owned by kernel uid 0,
    /// mode 0755.
    pub fn new() -> Fs {
        let root = Inode {
            ino: 1,
            kind: FileKind::Dir {
                entries: Arc::new(BTreeMap::new()),
                parent: 1,
            },
            meta: Metadata::new(0, 0, 0o755, 0),
        };
        Fs {
            pages: vec![Arc::new(vec![Some(root)])],
            slots: 1,
            next_free: Vec::new(),
            clock: 0,
            version: 0,
            tree_memo: Mutex::new(None),
            nondet: Nondeterminism::default(),
        }
    }

    /// Root inode number.
    pub const fn root(&self) -> Ino {
        1
    }

    /// Install injected nondeterminism sources (audit mode). The
    /// default-constructed value restores full determinism.
    pub fn set_nondeterminism(&mut self, nondet: Nondeterminism) {
        self.nondet = nondet;
    }

    /// The currently installed nondeterminism config.
    pub fn nondeterminism(&self) -> &Nondeterminism {
        &self.nondet
    }

    /// Advance and return the logical clock (each mutation ticks it).
    /// An injected `clock_skew` shifts the *observed* time — the
    /// counter itself stays monotonic and un-skewed so two builds
    /// under different skews still tick in lockstep.
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock + self.nondet.clock_skew
    }

    /// The uid/gid a newly created inode receives: the caller's
    /// fsuid/fsgid, unless an alternate default identity is injected.
    fn create_ids(&self, access: &Access) -> (u32, u32) {
        self.nondet
            .default_ids
            .unwrap_or((access.fsuid, access.fsgid))
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Count of live inodes (diagnostics, tests, image statistics).
    pub fn inode_count(&self) -> usize {
        self.inodes().count()
    }

    // ---- inode plumbing ---------------------------------------------------

    /// Borrow an inode.
    pub fn inode(&self, ino: Ino) -> Result<&Inode, Errno> {
        let slot = (ino as usize).checked_sub(1).ok_or(Errno::ENOENT)?;
        self.pages
            .get(slot / PAGE_SLOTS)
            .and_then(|p| p.get(slot % PAGE_SLOTS))
            .and_then(Option::as_ref)
            .ok_or(Errno::ENOENT)
    }

    /// Mutable inode access: bumps the content version and copies the
    /// containing page first if it is shared with a snapshot.
    fn inode_mut(&mut self, ino: Ino) -> Result<&mut Inode, Errno> {
        let slot = (ino as usize).checked_sub(1).ok_or(Errno::ENOENT)?;
        let page = self.pages.get_mut(slot / PAGE_SLOTS).ok_or(Errno::ENOENT)?;
        self.version += 1;
        Arc::make_mut(page)
            .get_mut(slot % PAGE_SLOTS)
            .and_then(Option::as_mut)
            .ok_or(Errno::ENOENT)
    }

    fn alloc(&mut self, kind: FileKind, meta: Metadata) -> Ino {
        self.version += 1;
        if let Some(slot) = self.next_free.pop() {
            let ino = slot as Ino + 1;
            Arc::make_mut(&mut self.pages[slot / PAGE_SLOTS])[slot % PAGE_SLOTS] =
                Some(Inode { ino, kind, meta });
            ino
        } else {
            let slot = self.slots;
            let ino = slot as Ino + 1;
            if slot.is_multiple_of(PAGE_SLOTS) {
                self.pages.push(Arc::new(Vec::with_capacity(PAGE_SLOTS)));
            }
            let page = self.pages.last_mut().expect("page ensured above");
            Arc::make_mut(page).push(Some(Inode { ino, kind, meta }));
            self.slots += 1;
            ino
        }
    }

    fn free(&mut self, ino: Ino) {
        let slot = ino as usize - 1;
        self.version += 1;
        Arc::make_mut(&mut self.pages[slot / PAGE_SLOTS])[slot % PAGE_SLOTS] = None;
        self.next_free.push(slot);
    }

    /// Iterate every live inode in slot order.
    pub fn inodes(&self) -> impl Iterator<Item = &Inode> {
        self.pages
            .iter()
            .flat_map(|p| p.iter().filter_map(Option::as_ref))
    }

    // ---- snapshot/digest observability ------------------------------------

    /// Content version: monotone within this value's lifetime, bumped
    /// by every mutation. Two reads returning the same version saw the
    /// same tree.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of copy-on-write pages backing the arena.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Pages currently shared with at least one other snapshot. Right
    /// after a clone this equals [`page_count`](Self::page_count); each
    /// first-write since then peels one page off.
    pub fn shared_pages(&self) -> usize {
        self.pages
            .iter()
            .filter(|p| Arc::strong_count(p) > 1)
            .count()
    }

    /// Every regular file's blob, in slot order (one entry per inode,
    /// however many hard links point at it).
    pub fn blobs(&self) -> impl Iterator<Item = &Arc<Blob>> {
        self.inodes().filter_map(|inode| match &inode.kind {
            FileKind::File(blob) => Some(blob),
            _ => None,
        })
    }

    /// Total file payload bytes (each inode's blob counted once).
    pub fn content_bytes(&self) -> u64 {
        self.blobs().map(|b| b.len() as u64).sum()
    }

    fn memo_value(&self) -> Option<(u64, String)> {
        self.tree_memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Deterministic content digest of the whole tree: every reachable
    /// path's name, type, permissions and ownership, plus symlink
    /// targets and file payload digests, in sorted pre-order.
    /// Timestamps are excluded (they encode execution order, not
    /// content).
    ///
    /// The digest is memoized per content [`version`](Self::version),
    /// and file payloads contribute their blob's memoized SHA-256 — so
    /// a warm digest after a k-file change hashes O(k) file bytes plus
    /// O(paths) metadata, and an unchanged tree answers from the memo
    /// without walking at all.
    pub fn tree_digest(&self) -> String {
        if let Some((version, digest)) = self.memo_value() {
            if version == self.version {
                return digest;
            }
        }
        let digest = self.tree_digest_with(|blob| *blob.sha_bytes());
        *self
            .tree_memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) =
            Some((self.version, digest.clone()));
        digest
    }

    /// Reference implementation of [`tree_digest`](Self::tree_digest):
    /// byte-identical output, but every file payload is re-hashed from
    /// its raw bytes and no memo is consulted or updated. The paper
    /// report's `P-snap` gate compares the two to pin that memoization
    /// never changes an observable digest.
    pub fn tree_digest_uncached(&self) -> String {
        self.tree_digest_with(|blob| Sha256::digest(blob.data()))
    }

    fn tree_digest_with(&self, blob_sha: impl Fn(&Arc<Blob>) -> [u8; 32]) -> String {
        use zr_syscalls::mode::{S_IFLNK, S_IFMT, S_IFREG};
        let root = Access::root();
        let mut d = FieldDigest::new("zr-tree-v1");
        for (path, st) in self.walk_paths(&root) {
            d.field(path.as_bytes())
                .field(&st.mode.to_be_bytes())
                .field(&st.uid.to_be_bytes())
                .field(&st.gid.to_be_bytes());
            match st.mode & S_IFMT {
                S_IFLNK => {
                    if let Ok(target) = self.readlink(&path, &root) {
                        d.field(target.as_bytes());
                    }
                }
                S_IFREG => {
                    if let Ok(inode) = self.inode(st.ino) {
                        if let FileKind::File(blob) = &inode.kind {
                            d.field(&blob_sha(blob));
                        }
                    }
                }
                _ => {}
            }
        }
        d.finish()
    }

    fn dir_entries(&self, ino: Ino) -> Result<&BTreeMap<String, Ino>, Errno> {
        match &self.inode(ino)?.kind {
            FileKind::Dir { entries, .. } => Ok(entries),
            _ => Err(Errno::ENOTDIR),
        }
    }

    /// Mutable entry-map access. The map sits behind its own `Arc`:
    /// a directory still shared with a snapshot is deep-copied here —
    /// and only here — so mutating one directory never pays for its
    /// page neighbors, and an untouched directory is never copied at
    /// all (the PR-4 "whole directory clones on first page touch"
    /// amplification is capped to the directory actually written).
    fn dir_entries_mut(&mut self, ino: Ino) -> Result<&mut BTreeMap<String, Ino>, Errno> {
        match &mut self.inode_mut(ino)?.kind {
            FileKind::Dir { entries, .. } => Ok(Arc::make_mut(entries)),
            _ => Err(Errno::ENOTDIR),
        }
    }

    // ---- path walking -------------------------------------------------------

    /// Resolve `path` to an inode, enforcing search permission on every
    /// traversed directory and chasing symlinks (bounded by
    /// `MAX_SYMLINKS`).
    pub fn resolve(&self, path: &str, access: &Access, follow: FollowMode) -> Result<Ino, Errno> {
        let mut depth = 0u32;
        self.resolve_inner(path, access, follow, &mut depth)
    }

    fn resolve_inner(
        &self,
        path: &str,
        access: &Access,
        follow: FollowMode,
        depth: &mut u32,
    ) -> Result<Ino, Errno> {
        let comps: Vec<&str> = components(path).collect();
        let mut cur = self.root();
        let mut i = 0usize;
        while i < comps.len() {
            let comp = comps[i];
            let node = self.inode(cur)?;
            let (entries, parent) = match &node.kind {
                FileKind::Dir { entries, parent } => (entries, *parent),
                _ => return Err(Errno::ENOTDIR),
            };
            if !permitted(
                access,
                node.meta.uid,
                node.meta.gid,
                node.meta.perm,
                Want::X,
            ) {
                return Err(Errno::EACCES);
            }
            if comp == ".." {
                cur = parent;
                i += 1;
                continue;
            }
            let &child = entries.get(comp).ok_or(Errno::ENOENT)?;
            let child_node = self.inode(child)?;
            let last = i + 1 == comps.len();
            if let FileKind::Symlink(target) = &child_node.kind {
                if !last || follow == FollowMode::Follow {
                    *depth += 1;
                    if *depth > MAX_SYMLINKS {
                        return Err(Errno::ELOOP);
                    }
                    // Re-resolve: target replaces this component; the rest
                    // of the path is appended.
                    let mut rebuilt = if target.starts_with('/') {
                        target.clone()
                    } else {
                        // Relative to the symlink's directory (`cur`).
                        let dir = self.path_of(cur)?;
                        format!("{dir}/{target}")
                    };
                    for rest in &comps[i + 1..] {
                        rebuilt.push('/');
                        rebuilt.push_str(rest);
                    }
                    return self.resolve_inner(&normalize(&rebuilt), access, follow, depth);
                }
            }
            cur = child;
            i += 1;
        }
        Ok(cur)
    }

    /// Reconstruct the absolute path of a directory inode (used for
    /// relative symlink resolution and getcwd). O(depth × siblings).
    pub fn path_of(&self, ino: Ino) -> Result<String, Errno> {
        if ino == self.root() {
            return Ok("/".to_string());
        }
        let mut parts: Vec<String> = Vec::new();
        let mut cur = ino;
        let mut guard = 0u32;
        while cur != self.root() {
            guard += 1;
            if guard > 4096 {
                return Err(Errno::ELOOP);
            }
            let parent = match &self.inode(cur)?.kind {
                FileKind::Dir { parent, .. } => *parent,
                _ => return Err(Errno::ENOTDIR),
            };
            let name = self
                .dir_entries(parent)?
                .iter()
                .find(|(_, &i)| i == cur)
                .map(|(n, _)| n.clone())
                .ok_or(Errno::ENOENT)?;
            parts.push(name);
            cur = parent;
        }
        parts.reverse();
        Ok(format!("/{}", parts.join("/")))
    }

    /// Resolve the parent directory of `path` (following intermediate
    /// symlinks) and return it with the validated final component.
    fn walk_parent(&self, path: &str, access: &Access) -> Result<(Ino, String), Errno> {
        let norm = normalize(path);
        let (parent, name) = split_parent(&norm).ok_or(Errno::EEXIST)?; // root: EEXIST for create-like ops
        if !valid_name(name) {
            return Err(Errno::EINVAL);
        }
        let dir = self.resolve(&parent, access, FollowMode::Follow)?;
        if !self.inode(dir)?.is_dir() {
            return Err(Errno::ENOTDIR);
        }
        Ok((dir, name.to_string()))
    }

    fn check_write_dir(&self, dir: Ino, access: &Access) -> Result<(), Errno> {
        let d = self.inode(dir)?;
        if !permitted(access, d.meta.uid, d.meta.gid, d.meta.perm, Want::W) {
            return Err(Errno::EACCES);
        }
        Ok(())
    }

    // ---- creation -----------------------------------------------------------

    /// `mkdir(2)`.
    pub fn mkdir(&mut self, path: &str, perm: u32, access: &Access) -> Result<Ino, Errno> {
        let (dir, name) = self.walk_parent(path, access)?;
        self.check_write_dir(dir, access)?;
        if self.dir_entries(dir)?.contains_key(&name) {
            return Err(Errno::EEXIST);
        }
        let now = self.tick();
        let (uid, gid) = self.create_ids(access);
        let meta = Metadata::new(uid, gid, perm, now);
        let ino = self.alloc(
            FileKind::Dir {
                entries: Arc::new(BTreeMap::new()),
                parent: dir,
            },
            meta,
        );
        self.dir_entries_mut(dir)?.insert(name, ino);
        Ok(ino)
    }

    /// Create a regular file (`open(O_CREAT|O_EXCL)` path). Fails if the
    /// name exists.
    pub fn create_file(
        &mut self,
        path: &str,
        perm: u32,
        data: Vec<u8>,
        access: &Access,
    ) -> Result<Ino, Errno> {
        self.create_file_blob(path, perm, Blob::new(data), access)
    }

    /// [`create_file`](Self::create_file) with an already-shared blob
    /// (content-addressed copies: no bytes move, the digest memo rides
    /// along).
    pub fn create_file_blob(
        &mut self,
        path: &str,
        perm: u32,
        blob: Arc<Blob>,
        access: &Access,
    ) -> Result<Ino, Errno> {
        let (dir, name) = self.walk_parent(path, access)?;
        self.check_write_dir(dir, access)?;
        if self.dir_entries(dir)?.contains_key(&name) {
            return Err(Errno::EEXIST);
        }
        let now = self.tick();
        let (uid, gid) = self.create_ids(access);
        let meta = Metadata::new(uid, gid, perm, now);
        let ino = self.alloc(FileKind::File(blob), meta);
        self.dir_entries_mut(dir)?.insert(name, ino);
        Ok(ino)
    }

    /// `open(O_CREAT|O_TRUNC)`-style write of a whole file: create or
    /// replace contents (permission checks on dir for create, on file for
    /// overwrite).
    pub fn write_file(
        &mut self,
        path: &str,
        perm: u32,
        data: Vec<u8>,
        access: &Access,
    ) -> Result<Ino, Errno> {
        self.write_file_blob(path, perm, Blob::new(data), access)
    }

    /// [`write_file`](Self::write_file) with an already-shared blob —
    /// what COPY/ADD use so a context file's bytes (and digest memo)
    /// are shared between the build context and every snapshot, never
    /// duplicated.
    pub fn write_file_blob(
        &mut self,
        path: &str,
        perm: u32,
        blob: Arc<Blob>,
        access: &Access,
    ) -> Result<Ino, Errno> {
        match self.resolve(path, access, FollowMode::Follow) {
            Ok(ino) => {
                let node = self.inode(ino)?;
                if node.is_dir() {
                    return Err(Errno::EISDIR);
                }
                if !permitted(
                    access,
                    node.meta.uid,
                    node.meta.gid,
                    node.meta.perm,
                    Want::W,
                ) {
                    return Err(Errno::EACCES);
                }
                let now = self.tick();
                let node = self.inode_mut(ino)?;
                match &mut node.kind {
                    FileKind::File(existing) => *existing = blob,
                    _ => return Err(Errno::EINVAL),
                }
                node.meta.mtime = now;
                Ok(ino)
            }
            Err(Errno::ENOENT) => self.create_file_blob(path, perm, blob, access),
            Err(e) => Err(e),
        }
    }

    /// Append to an existing file. The file gets a fresh blob (old
    /// bytes + suffix); snapshots sharing the old blob are untouched.
    pub fn append_file(&mut self, path: &str, data: &[u8], access: &Access) -> Result<(), Errno> {
        let ino = self.resolve(path, access, FollowMode::Follow)?;
        let node = self.inode(ino)?;
        if !permitted(
            access,
            node.meta.uid,
            node.meta.gid,
            node.meta.perm,
            Want::W,
        ) {
            return Err(Errno::EACCES);
        }
        let now = self.tick();
        let node = self.inode_mut(ino)?;
        match &mut node.kind {
            FileKind::File(existing) => {
                let mut grown = Vec::with_capacity(existing.len() + data.len());
                grown.extend_from_slice(existing.data());
                grown.extend_from_slice(data);
                *existing = Blob::new(grown);
            }
            FileKind::Dir { .. } => return Err(Errno::EISDIR),
            _ => return Err(Errno::EINVAL),
        }
        node.meta.mtime = now;
        Ok(())
    }

    /// `symlink(2)`.
    pub fn symlink(&mut self, target: &str, path: &str, access: &Access) -> Result<Ino, Errno> {
        let (dir, name) = self.walk_parent(path, access)?;
        self.check_write_dir(dir, access)?;
        if self.dir_entries(dir)?.contains_key(&name) {
            return Err(Errno::EEXIST);
        }
        let now = self.tick();
        // Symlinks are created 0777 like Linux.
        let (uid, gid) = self.create_ids(access);
        let meta = Metadata::new(uid, gid, 0o777, now);
        let ino = self.alloc(FileKind::Symlink(target.to_string()), meta);
        self.dir_entries_mut(dir)?.insert(name, ino);
        Ok(ino)
    }

    /// `mknod(2)` mechanics: create a device/fifo/socket/regular node.
    /// The *privilege* decision (CAP_MKNOD vs userns) is the kernel's.
    pub fn mknod(
        &mut self,
        path: &str,
        kind: FileKind,
        perm: u32,
        access: &Access,
    ) -> Result<Ino, Errno> {
        if matches!(kind, FileKind::Dir { .. } | FileKind::Symlink(_)) {
            return Err(Errno::EINVAL);
        }
        let (dir, name) = self.walk_parent(path, access)?;
        self.check_write_dir(dir, access)?;
        if self.dir_entries(dir)?.contains_key(&name) {
            return Err(Errno::EEXIST);
        }
        let now = self.tick();
        let (uid, gid) = self.create_ids(access);
        let meta = Metadata::new(uid, gid, perm, now);
        let ino = self.alloc(kind, meta);
        self.dir_entries_mut(dir)?.insert(name, ino);
        Ok(ino)
    }

    /// `link(2)`: new hard link to an existing non-directory.
    pub fn link(&mut self, existing: &str, newpath: &str, access: &Access) -> Result<(), Errno> {
        let ino = self.resolve(existing, access, FollowMode::NoFollow)?;
        if self.inode(ino)?.is_dir() {
            return Err(Errno::EPERM);
        }
        let (dir, name) = self.walk_parent(newpath, access)?;
        self.check_write_dir(dir, access)?;
        if self.dir_entries(dir)?.contains_key(&name) {
            return Err(Errno::EEXIST);
        }
        self.dir_entries_mut(dir)?.insert(name, ino);
        self.inode_mut(ino)?.meta.nlink += 1;
        Ok(())
    }

    // ---- reading ------------------------------------------------------------

    /// Whole-file read.
    pub fn read_file(&self, path: &str, access: &Access) -> Result<Vec<u8>, Errno> {
        let ino = self.resolve(path, access, FollowMode::Follow)?;
        let node = self.inode(ino)?;
        if !permitted(
            access,
            node.meta.uid,
            node.meta.gid,
            node.meta.perm,
            Want::R,
        ) {
            return Err(Errno::EACCES);
        }
        match &node.kind {
            FileKind::File(blob) => Ok(blob.data().to_vec()),
            FileKind::Dir { .. } => Err(Errno::EISDIR),
            _ => Err(Errno::EINVAL),
        }
    }

    /// Whole-file read returning the shared blob — an O(1) handle, no
    /// byte copy (the read-side twin of
    /// [`write_file_blob`](Self::write_file_blob)).
    pub fn read_file_blob(&self, path: &str, access: &Access) -> Result<Arc<Blob>, Errno> {
        let ino = self.resolve(path, access, FollowMode::Follow)?;
        let node = self.inode(ino)?;
        if !permitted(
            access,
            node.meta.uid,
            node.meta.gid,
            node.meta.perm,
            Want::R,
        ) {
            return Err(Errno::EACCES);
        }
        match &node.kind {
            FileKind::File(blob) => Ok(Arc::clone(blob)),
            FileKind::Dir { .. } => Err(Errno::EISDIR),
            _ => Err(Errno::EINVAL),
        }
    }

    /// `readlink(2)`.
    pub fn readlink(&self, path: &str, access: &Access) -> Result<String, Errno> {
        let ino = self.resolve(path, access, FollowMode::NoFollow)?;
        match &self.inode(ino)?.kind {
            FileKind::Symlink(t) => Ok(t.clone()),
            _ => Err(Errno::EINVAL),
        }
    }

    /// The shared payload blob of a regular-file inode — the by-inode
    /// twin of [`read_file_blob`](Self::read_file_blob), with no path
    /// resolution and no permission regime (serializer use: a tree walk
    /// already holds the inode numbers, re-resolving every path would
    /// make the walk O(paths·depth)).
    pub fn file_blob(&self, ino: Ino) -> Result<Arc<Blob>, Errno> {
        match &self.inode(ino)?.kind {
            FileKind::File(blob) => Ok(Arc::clone(blob)),
            FileKind::Dir { .. } => Err(Errno::EISDIR),
            _ => Err(Errno::EINVAL),
        }
    }

    /// The target of a symlink inode (by-inode `readlink`).
    pub fn symlink_target(&self, ino: Ino) -> Result<String, Errno> {
        match &self.inode(ino)?.kind {
            FileKind::Symlink(t) => Ok(t.clone()),
            _ => Err(Errno::EINVAL),
        }
    }

    /// Directory listing (requires read permission on the directory).
    ///
    /// Entries come back sorted — unless a `shuffle_readdir` seed is
    /// injected, in which case they arrive in a deterministic but
    /// non-sorted "on-disk" order, the way a real `getdents64` makes no
    /// ordering promise. Canonical consumers (tree digests, normalized
    /// exports) use [`read_dir_sorted`](Self::read_dir_sorted) and are
    /// immune.
    pub fn read_dir(&self, path: &str, access: &Access) -> Result<Vec<(String, Ino)>, Errno> {
        let mut entries = self.read_dir_sorted(path, access)?;
        if let Some(seed) = self.nondet.shuffle_readdir {
            shuffle_entries(&mut entries, seed);
        }
        Ok(entries)
    }

    /// Directory listing in canonical sorted order, bypassing any
    /// injected readdir shuffle.
    pub fn read_dir_sorted(
        &self,
        path: &str,
        access: &Access,
    ) -> Result<Vec<(String, Ino)>, Errno> {
        let ino = self.resolve(path, access, FollowMode::Follow)?;
        let node = self.inode(ino)?;
        if !permitted(
            access,
            node.meta.uid,
            node.meta.gid,
            node.meta.perm,
            Want::R,
        ) {
            return Err(Errno::EACCES);
        }
        Ok(self
            .dir_entries(ino)?
            .iter()
            .map(|(n, &i)| (n.clone(), i))
            .collect())
    }

    /// `stat`/`lstat`.
    pub fn stat(&self, path: &str, access: &Access, follow: FollowMode) -> Result<Stat, Errno> {
        let ino = self.resolve(path, access, follow)?;
        Ok(self.stat_ino(ino))
    }

    /// Stat by inode (no permission check — matches fstat semantics).
    pub fn stat_ino(&self, ino: Ino) -> Stat {
        let node = self.inode(ino).expect("stat_ino on live inode");
        Stat {
            ino,
            mode: node.st_mode(),
            uid: node.meta.uid,
            gid: node.meta.gid,
            size: node.kind.size(),
            nlink: node.meta.nlink,
            rdev: node.rdev(),
            mtime: node.meta.mtime,
        }
    }

    // ---- removal -------------------------------------------------------------

    /// Sticky-bit rule: in a sticky directory you may only remove entries
    /// you own (or the directory), absent CAP_FOWNER.
    fn may_delete(&self, dir: Ino, victim: Ino, access: &Access) -> Result<(), Errno> {
        self.check_write_dir(dir, access)?;
        let d = self.inode(dir)?;
        if d.meta.perm & zr_syscalls::mode::S_ISVTX != 0 {
            let v = self.inode(victim)?;
            if !access.owns(v.meta.uid) && !access.owns(d.meta.uid) {
                return Err(Errno::EPERM);
            }
        }
        Ok(())
    }

    /// `unlink(2)` (not for directories).
    pub fn unlink(&mut self, path: &str, access: &Access) -> Result<(), Errno> {
        let (dir, name) = self.walk_parent(path, access)?;
        let &victim = self.dir_entries(dir)?.get(&name).ok_or(Errno::ENOENT)?;
        if self.inode(victim)?.is_dir() {
            return Err(Errno::EISDIR);
        }
        self.may_delete(dir, victim, access)?;
        self.dir_entries_mut(dir)?.remove(&name);
        let node = self.inode_mut(victim)?;
        node.meta.nlink -= 1;
        if node.meta.nlink == 0 {
            self.free(victim);
        }
        Ok(())
    }

    /// `rmdir(2)`.
    pub fn rmdir(&mut self, path: &str, access: &Access) -> Result<(), Errno> {
        let (dir, name) = self.walk_parent(path, access)?;
        let &victim = self.dir_entries(dir)?.get(&name).ok_or(Errno::ENOENT)?;
        if !self.inode(victim)?.is_dir() {
            return Err(Errno::ENOTDIR);
        }
        if !self.dir_entries(victim)?.is_empty() {
            return Err(Errno::ENOTEMPTY);
        }
        self.may_delete(dir, victim, access)?;
        self.dir_entries_mut(dir)?.remove(&name);
        self.free(victim);
        Ok(())
    }

    /// `rename(2)` within this filesystem.
    pub fn rename(&mut self, old: &str, new: &str, access: &Access) -> Result<(), Errno> {
        let (odir, oname) = self.walk_parent(old, access)?;
        let &moving = self.dir_entries(odir)?.get(&oname).ok_or(Errno::ENOENT)?;
        self.may_delete(odir, moving, access)?;
        let (ndir, nname) = self.walk_parent(new, access)?;
        self.check_write_dir(ndir, access)?;

        // Replace-target semantics: an existing non-dir target is
        // replaced; an existing dir target must be empty.
        if let Some(&target) = self.dir_entries(ndir)?.get(&nname) {
            if target == moving {
                return Ok(());
            }
            let t = self.inode(target)?;
            if t.is_dir() {
                if !self.dir_entries(target)?.is_empty() {
                    return Err(Errno::ENOTEMPTY);
                }
                self.free(target);
            } else {
                let tm = self.inode_mut(target)?;
                tm.meta.nlink -= 1;
                if tm.meta.nlink == 0 {
                    self.free(target);
                }
            }
            self.dir_entries_mut(ndir)?.remove(&nname);
        }

        // Moving a directory under its own descendant would orphan it.
        if self.inode(moving)?.is_dir() {
            let mut cur = ndir;
            loop {
                if cur == moving {
                    return Err(Errno::EINVAL);
                }
                if cur == self.root() {
                    break;
                }
                cur = match &self.inode(cur)?.kind {
                    FileKind::Dir { parent, .. } => *parent,
                    _ => return Err(Errno::ENOTDIR),
                };
            }
        }

        self.dir_entries_mut(odir)?.remove(&oname);
        self.dir_entries_mut(ndir)?.insert(nname, moving);
        if let FileKind::Dir { parent, .. } = &mut self.inode_mut(moving)?.kind {
            *parent = ndir;
        }
        Ok(())
    }

    // ---- metadata mutation (mechanical; policy lives in zr-kernel) -----------

    /// Set owner/group. Clears setuid/setgid like a real chown by an
    /// unprivileged caller would (we always clear; the kernel model keeps
    /// it simple and conservative).
    pub fn set_owner(&mut self, ino: Ino, uid: u32, gid: u32) -> Result<(), Errno> {
        let now = self.tick();
        let node = self.inode_mut(ino)?;
        node.meta.uid = uid;
        node.meta.gid = gid;
        if !node.is_dir() {
            node.meta.perm &= !(zr_syscalls::mode::S_ISUID | zr_syscalls::mode::S_ISGID);
        }
        node.meta.mtime = now;
        Ok(())
    }

    /// Set permission bits.
    pub fn set_perm(&mut self, ino: Ino, perm: u32) -> Result<(), Errno> {
        let now = self.tick();
        let node = self.inode_mut(ino)?;
        node.meta.perm = perm & 0o7777;
        node.meta.mtime = now;
        Ok(())
    }

    /// Set modification time explicitly (utimensat).
    pub fn set_mtime(&mut self, ino: Ino, mtime: u64) -> Result<(), Errno> {
        self.inode_mut(ino)?.meta.mtime = mtime;
        Ok(())
    }

    /// Truncate a regular file (fresh blob; snapshots keep the old one).
    pub fn truncate(&mut self, ino: Ino, size: u64) -> Result<(), Errno> {
        let now = self.tick();
        let node = self.inode_mut(ino)?;
        match &mut node.kind {
            FileKind::File(blob) => {
                let mut data = blob.data().to_vec();
                data.resize(size as usize, 0);
                *blob = Blob::new(data);
                node.meta.mtime = now;
                Ok(())
            }
            FileKind::Dir { .. } => Err(Errno::EISDIR),
            _ => Err(Errno::EINVAL),
        }
    }

    // ---- xattrs ---------------------------------------------------------------

    /// Set an extended attribute.
    pub fn set_xattr(&mut self, ino: Ino, name: &str, value: &[u8]) -> Result<(), Errno> {
        self.inode_mut(ino)?
            .meta
            .xattrs
            .insert(name.to_string(), value.to_vec());
        Ok(())
    }

    /// Get an extended attribute.
    pub fn get_xattr(&self, ino: Ino, name: &str) -> Result<Vec<u8>, Errno> {
        self.inode(ino)?
            .meta
            .xattrs
            .get(name)
            .cloned()
            .ok_or(Errno::ENODATA)
    }

    /// List extended attribute names.
    pub fn list_xattr(&self, ino: Ino) -> Result<Vec<String>, Errno> {
        Ok(self.inode(ino)?.meta.xattrs.keys().cloned().collect())
    }

    /// Remove an extended attribute.
    pub fn remove_xattr(&mut self, ino: Ino, name: &str) -> Result<(), Errno> {
        self.inode_mut(ino)?
            .meta
            .xattrs
            .remove(name)
            .map(|_| ())
            .ok_or(Errno::ENODATA)
    }

    // ---- bulk helpers (image materialization) ----------------------------------

    /// Depth-first pre-order walk of every path reachable from `/`,
    /// symlinks not followed, as `access`. Directory entries are read
    /// in canonical sorted order (immune to an injected readdir
    /// shuffle), so the visit order is deterministic — consumers build
    /// reproducible digests and size accounting on top of this one
    /// walk instead of each hand-rolling their own.
    pub fn walk_paths(&self, access: &Access) -> Vec<(String, Stat)> {
        self.walk_paths_with(access, Self::read_dir_sorted)
    }

    /// [`walk_paths`](Self::walk_paths), but honoring the *observed*
    /// `read_dir` order — what a naive exporter that packs entries in
    /// on-disk order would traverse. Identical to `walk_paths` unless a
    /// readdir shuffle is injected.
    pub fn walk_paths_readdir(&self, access: &Access) -> Vec<(String, Stat)> {
        self.walk_paths_with(access, Self::read_dir)
    }

    fn walk_paths_with(
        &self,
        access: &Access,
        read: impl Fn(&Self, &str, &Access) -> Result<Vec<(String, Ino)>, Errno>,
    ) -> Vec<(String, Stat)> {
        let mut out = Vec::new();
        let mut stack = vec!["/".to_string()];
        while let Some(path) = stack.pop() {
            let Ok(st) = self.stat(&path, access, FollowMode::NoFollow) else {
                continue;
            };
            if st.mode & zr_syscalls::mode::S_IFMT == zr_syscalls::mode::S_IFDIR {
                if let Ok(entries) = read(self, &path, access) {
                    // Reverse push keeps the pop order equal to the
                    // read order.
                    for (name, _) in entries.iter().rev() {
                        stack.push(join(&path, name));
                    }
                }
            }
            out.push((path, st));
        }
        out
    }

    /// `mkdir -p` as filesystem-owner root: used when materializing image
    /// layers, outside any container's permission regime.
    pub fn mkdir_p(&mut self, path: &str, perm: u32) -> Result<Ino, Errno> {
        let root_access = Access::root();
        let norm = normalize(path);
        if norm == "/" {
            return Ok(self.root());
        }
        let mut built = String::new();
        let mut last = self.root();
        for comp in components(&norm) {
            built.push('/');
            built.push_str(comp);
            last = match self.resolve(&built, &root_access, FollowMode::Follow) {
                Ok(ino) => ino,
                Err(Errno::ENOENT) => self.mkdir(&built, perm, &root_access)?,
                Err(e) => return Err(e),
            };
        }
        Ok(last)
    }
}

/// Deterministic "on-disk order": sort entries by a seeded hash of the
/// name. Different seeds give different permutations; the same seed
/// always gives the same one, so shuffled-readdir tests replay exactly.
fn shuffle_entries(entries: &mut [(String, Ino)], seed: u64) {
    entries.sort_by_key(|(name, _)| {
        let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
        for &b in name.as_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            h ^= h >> 29;
        }
        h
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> Access {
        Access::root()
    }

    #[test]
    fn fresh_fs_has_root_dir() {
        let fs = Fs::new();
        assert_eq!(fs.resolve("/", &root(), FollowMode::Follow), Ok(1));
        assert_eq!(fs.inode_count(), 1);
    }

    #[test]
    fn mkdir_and_resolve() {
        let mut fs = Fs::new();
        let etc = fs.mkdir("/etc", 0o755, &root()).unwrap();
        assert_eq!(fs.resolve("/etc", &root(), FollowMode::Follow), Ok(etc));
        assert_eq!(fs.resolve("/etc/", &root(), FollowMode::Follow), Ok(etc));
        assert_eq!(
            fs.resolve("/missing", &root(), FollowMode::Follow),
            Err(Errno::ENOENT)
        );
    }

    #[test]
    fn mkdir_requires_parent_write() {
        let mut fs = Fs::new();
        // Root dir is 0755 owned by uid 0: uid 1000 cannot create in it.
        let user = Access::user(1000, 1000);
        assert_eq!(fs.mkdir("/home", 0o755, &user), Err(Errno::EACCES));
        fs.mkdir("/home", 0o777, &root()).unwrap();
        assert!(fs.mkdir("/home/me", 0o755, &user).is_ok());
    }

    #[test]
    fn walk_paths_is_deterministic_and_complete() {
        let mut fs = Fs::new();
        fs.mkdir_p("/b/sub", 0o755).unwrap();
        fs.mkdir_p("/a", 0o755).unwrap();
        fs.write_file("/a/file", 0o644, b"x".to_vec(), &root())
            .unwrap();
        fs.symlink("/a/file", "/b/link", &root()).unwrap();
        // A deleted file leaves an inode-table hole; the walk, being
        // path-driven, neither lists it nor misses later entries.
        fs.write_file("/a/tmp", 0o644, b"y".to_vec(), &root())
            .unwrap();
        fs.unlink("/a/tmp", &root()).unwrap();
        let paths: Vec<String> = fs.walk_paths(&root()).into_iter().map(|(p, _)| p).collect();
        assert_eq!(
            paths,
            fs.walk_paths(&root())
                .into_iter()
                .map(|(p, _)| p)
                .collect::<Vec<_>>()
        );
        assert_eq!(paths, vec!["/", "/a", "/a/file", "/b", "/b/link", "/b/sub"]);
    }

    #[test]
    fn file_write_read_roundtrip() {
        let mut fs = Fs::new();
        fs.write_file("/hello", 0o644, b"world".to_vec(), &root())
            .unwrap();
        assert_eq!(fs.read_file("/hello", &root()), Ok(b"world".to_vec()));
        // Overwrite.
        fs.write_file("/hello", 0o644, b"again".to_vec(), &root())
            .unwrap();
        assert_eq!(fs.read_file("/hello", &root()), Ok(b"again".to_vec()));
        // Append.
        fs.append_file("/hello", b"+", &root()).unwrap();
        assert_eq!(fs.read_file("/hello", &root()), Ok(b"again+".to_vec()));
    }

    #[test]
    fn read_requires_permission() {
        let mut fs = Fs::new();
        fs.write_file("/secret", 0o600, b"k".to_vec(), &root())
            .unwrap();
        let user = Access::user(1000, 1000);
        assert_eq!(fs.read_file("/secret", &user), Err(Errno::EACCES));
    }

    #[test]
    fn search_permission_enforced_on_walk() {
        let mut fs = Fs::new();
        fs.mkdir("/locked", 0o700, &root()).unwrap();
        fs.write_file("/locked/file", 0o777, b"x".to_vec(), &root())
            .unwrap();
        let user = Access::user(1000, 1000);
        assert_eq!(fs.read_file("/locked/file", &user), Err(Errno::EACCES));
    }

    #[test]
    fn symlink_follow_and_nofollow() {
        let mut fs = Fs::new();
        fs.write_file("/target", 0o644, b"data".to_vec(), &root())
            .unwrap();
        fs.symlink("/target", "/link", &root()).unwrap();
        let followed = fs.stat("/link", &root(), FollowMode::Follow).unwrap();
        assert_eq!(
            followed.mode & zr_syscalls::mode::S_IFMT,
            zr_syscalls::mode::S_IFREG
        );
        let nofollow = fs.stat("/link", &root(), FollowMode::NoFollow).unwrap();
        assert_eq!(
            nofollow.mode & zr_syscalls::mode::S_IFMT,
            zr_syscalls::mode::S_IFLNK
        );
        assert_eq!(fs.readlink("/link", &root()), Ok("/target".to_string()));
        assert_eq!(fs.read_file("/link", &root()), Ok(b"data".to_vec()));
    }

    #[test]
    fn relative_symlinks_resolve_from_their_directory() {
        let mut fs = Fs::new();
        fs.mkdir_p("/usr/bin", 0o755).unwrap();
        fs.write_file("/usr/bin/real", 0o755, b"#!".to_vec(), &root())
            .unwrap();
        fs.symlink("real", "/usr/bin/alias", &root()).unwrap();
        assert_eq!(fs.read_file("/usr/bin/alias", &root()), Ok(b"#!".to_vec()));
    }

    #[test]
    fn symlink_loops_detected() {
        let mut fs = Fs::new();
        fs.symlink("/b", "/a", &root()).unwrap();
        fs.symlink("/a", "/b", &root()).unwrap();
        assert_eq!(
            fs.resolve("/a", &root(), FollowMode::Follow),
            Err(Errno::ELOOP)
        );
    }

    #[test]
    fn unlink_and_nlink_semantics() {
        let mut fs = Fs::new();
        fs.write_file("/f", 0o644, b"x".to_vec(), &root()).unwrap();
        fs.link("/f", "/g", &root()).unwrap();
        let st = fs.stat("/f", &root(), FollowMode::Follow).unwrap();
        assert_eq!(st.nlink, 2);
        fs.unlink("/f", &root()).unwrap();
        // Content still reachable through the second link.
        assert_eq!(fs.read_file("/g", &root()), Ok(b"x".to_vec()));
        fs.unlink("/g", &root()).unwrap();
        assert_eq!(fs.inode_count(), 1); // only root remains
    }

    #[test]
    fn rmdir_requires_empty() {
        let mut fs = Fs::new();
        fs.mkdir_p("/a/b", 0o755).unwrap();
        assert_eq!(fs.rmdir("/a", &root()), Err(Errno::ENOTEMPTY));
        fs.rmdir("/a/b", &root()).unwrap();
        fs.rmdir("/a", &root()).unwrap();
        assert_eq!(fs.inode_count(), 1);
    }

    #[test]
    fn rename_moves_and_replaces() {
        let mut fs = Fs::new();
        fs.mkdir_p("/a", 0o755).unwrap();
        fs.mkdir_p("/b", 0o755).unwrap();
        fs.write_file("/a/f", 0o644, b"1".to_vec(), &root())
            .unwrap();
        fs.write_file("/b/f", 0o644, b"2".to_vec(), &root())
            .unwrap();
        fs.rename("/a/f", "/b/f", &root()).unwrap();
        assert_eq!(fs.read_file("/b/f", &root()), Ok(b"1".to_vec()));
        assert_eq!(
            fs.resolve("/a/f", &root(), FollowMode::Follow),
            Err(Errno::ENOENT)
        );
    }

    #[test]
    fn rename_dir_updates_parent() {
        let mut fs = Fs::new();
        fs.mkdir_p("/a/sub", 0o755).unwrap();
        fs.mkdir_p("/b", 0o755).unwrap();
        fs.write_file("/a/sub/f", 0o644, b"x".to_vec(), &root())
            .unwrap();
        fs.rename("/a/sub", "/b/sub", &root()).unwrap();
        assert_eq!(fs.read_file("/b/sub/f", &root()), Ok(b"x".to_vec()));
        // ".." of the moved dir now points at /b.
        let ino = fs
            .resolve("/b/sub/..", &root(), FollowMode::Follow)
            .unwrap();
        assert_eq!(fs.path_of(ino).unwrap(), "/b");
    }

    #[test]
    fn rename_into_own_subtree_rejected() {
        let mut fs = Fs::new();
        fs.mkdir_p("/a/b", 0o755).unwrap();
        assert_eq!(fs.rename("/a", "/a/b/c", &root()), Err(Errno::EINVAL));
    }

    #[test]
    fn sticky_bit_restricts_deletion() {
        let mut fs = Fs::new();
        fs.mkdir("/tmp", 0o1777, &root()).unwrap();
        let alice = Access::user(1000, 1000);
        let bob = Access::user(1001, 1001);
        fs.write_file("/tmp/alice.txt", 0o666, b"hi".to_vec(), &alice)
            .unwrap();
        assert_eq!(fs.unlink("/tmp/alice.txt", &bob), Err(Errno::EPERM));
        assert!(fs.unlink("/tmp/alice.txt", &alice).is_ok());
    }

    #[test]
    fn chown_clears_setuid() {
        let mut fs = Fs::new();
        let ino = fs
            .create_file("/sbin-su", 0o4755, b"elf".to_vec(), &root())
            .unwrap();
        fs.set_perm(ino, 0o4755).unwrap();
        fs.set_owner(ino, 500, 500).unwrap();
        let st = fs.stat_ino(ino);
        assert_eq!(st.mode & 0o7777, 0o755, "setuid must be cleared");
        assert_eq!((st.uid, st.gid), (500, 500));
    }

    #[test]
    fn mknod_devices_and_fifos() {
        let mut fs = Fs::new();
        let dev = zr_syscalls::mode::makedev(1, 3);
        fs.mknod("/dev-null", FileKind::CharDev(dev), 0o666, &root())
            .unwrap();
        let st = fs.stat("/dev-null", &root(), FollowMode::Follow).unwrap();
        assert_eq!(
            st.mode & zr_syscalls::mode::S_IFMT,
            zr_syscalls::mode::S_IFCHR
        );
        assert_eq!(st.rdev, dev);
        fs.mknod("/pipe", FileKind::Fifo, 0o644, &root()).unwrap();
        assert_eq!(
            fs.mknod("/pipe", FileKind::Fifo, 0o644, &root()),
            Err(Errno::EEXIST)
        );
    }

    #[test]
    fn xattr_roundtrip() {
        let mut fs = Fs::new();
        let ino = fs.create_file("/f", 0o644, vec![], &root()).unwrap();
        assert_eq!(fs.get_xattr(ino, "user.test"), Err(Errno::ENODATA));
        fs.set_xattr(ino, "security.capability", b"\x01").unwrap();
        fs.set_xattr(ino, "user.test", b"v").unwrap();
        assert_eq!(fs.get_xattr(ino, "user.test"), Ok(b"v".to_vec()));
        assert_eq!(
            fs.list_xattr(ino),
            Ok(vec![
                "security.capability".to_string(),
                "user.test".to_string()
            ])
        );
        fs.remove_xattr(ino, "user.test").unwrap();
        assert_eq!(fs.remove_xattr(ino, "user.test"), Err(Errno::ENODATA));
    }

    #[test]
    fn read_dir_lists_sorted() {
        let mut fs = Fs::new();
        fs.mkdir_p("/d", 0o755).unwrap();
        fs.write_file("/d/zeta", 0o644, vec![], &root()).unwrap();
        fs.write_file("/d/alpha", 0o644, vec![], &root()).unwrap();
        let names: Vec<String> = fs
            .read_dir("/d", &root())
            .unwrap()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["alpha".to_string(), "zeta".to_string()]);
    }

    #[test]
    fn injected_clock_skew_shifts_fresh_mtimes() {
        let mut a = Fs::new();
        let mut b = Fs::new();
        b.set_nondeterminism(Nondeterminism {
            clock_skew: 1000,
            ..Nondeterminism::default()
        });
        a.write_file("/f", 0o644, b"x".to_vec(), &root()).unwrap();
        b.write_file("/f", 0o644, b"x".to_vec(), &root()).unwrap();
        let ma = a.stat("/f", &root(), FollowMode::NoFollow).unwrap().mtime;
        let mb = b.stat("/f", &root(), FollowMode::NoFollow).unwrap().mtime;
        assert_eq!(mb, ma + 1000);
        // The skew is invisible to the (timestamp-free) tree digest.
        assert_eq!(a.tree_digest(), b.tree_digest());
    }

    #[test]
    fn injected_default_ids_own_new_files_only() {
        let mut fs = Fs::new();
        fs.write_file("/before", 0o644, vec![], &root()).unwrap();
        fs.set_nondeterminism(Nondeterminism {
            default_ids: Some((4242, 4343)),
            ..Nondeterminism::default()
        });
        fs.write_file("/after", 0o644, vec![], &root()).unwrap();
        let before = fs.stat("/before", &root(), FollowMode::NoFollow).unwrap();
        let after = fs.stat("/after", &root(), FollowMode::NoFollow).unwrap();
        assert_eq!((before.uid, before.gid), (0, 0));
        assert_eq!((after.uid, after.gid), (4242, 4343));
    }

    #[test]
    fn injected_shuffle_perturbs_read_dir_not_walk_paths() {
        let mut fs = Fs::new();
        fs.mkdir_p("/d", 0o755).unwrap();
        for name in ["alpha", "beta", "gamma", "delta", "epsilon"] {
            fs.write_file(&format!("/d/{name}"), 0o644, vec![], &root())
                .unwrap();
        }
        let sorted: Vec<String> = fs
            .read_dir("/d", &root())
            .unwrap()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        let canonical_walk = fs.walk_paths(&root());
        let digest = fs.tree_digest();

        fs.set_nondeterminism(Nondeterminism {
            shuffle_readdir: Some(7),
            ..Nondeterminism::default()
        });
        let shuffled: Vec<String> = fs
            .read_dir("/d", &root())
            .unwrap()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_ne!(shuffled, sorted, "seed 7 must perturb five entries");
        let mut resorted = shuffled.clone();
        resorted.sort();
        assert_eq!(resorted, sorted, "same entries, different order");
        // Canonical surfaces are immune.
        assert_eq!(fs.walk_paths(&root()), canonical_walk);
        assert_eq!(fs.tree_digest(), digest);
        // The readdir-order walk is not.
        let raw: Vec<String> = fs
            .walk_paths_readdir(&root())
            .into_iter()
            .map(|(p, _)| p)
            .collect();
        let canonical: Vec<String> = canonical_walk.into_iter().map(|(p, _)| p).collect();
        assert_ne!(raw, canonical);
    }

    #[test]
    fn truncate_grows_and_shrinks() {
        let mut fs = Fs::new();
        let ino = fs
            .create_file("/f", 0o644, b"abcdef".to_vec(), &root())
            .unwrap();
        fs.truncate(ino, 3).unwrap();
        assert_eq!(fs.read_file("/f", &root()), Ok(b"abc".to_vec()));
        fs.truncate(ino, 5).unwrap();
        assert_eq!(fs.read_file("/f", &root()), Ok(b"abc\0\0".to_vec()));
    }

    #[test]
    fn dotdot_walks_up() {
        let mut fs = Fs::new();
        fs.mkdir_p("/a/b/c", 0o755).unwrap();
        let a = fs.resolve("/a", &root(), FollowMode::Follow).unwrap();
        assert_eq!(
            fs.resolve("/a/b/c/../..", &root(), FollowMode::Follow),
            Ok(a)
        );
        // .. above root stays at root.
        assert_eq!(fs.resolve("/../../a", &root(), FollowMode::Follow), Ok(a));
    }

    #[test]
    fn path_of_reconstructs() {
        let mut fs = Fs::new();
        let ino = fs.mkdir_p("/var/lib/rpm", 0o755).unwrap();
        assert_eq!(fs.path_of(ino), Ok("/var/lib/rpm".to_string()));
        assert_eq!(fs.path_of(fs.root()), Ok("/".to_string()));
    }

    #[test]
    fn ino_reuse_after_free() {
        let mut fs = Fs::new();
        let a = fs.create_file("/a", 0o644, vec![], &root()).unwrap();
        fs.unlink("/a", &root()).unwrap();
        let b = fs.create_file("/b", 0o644, vec![], &root()).unwrap();
        assert_eq!(a, b, "slot is recycled");
    }

    #[test]
    fn snapshots_are_isolated_both_ways() {
        let mut parent = Fs::new();
        parent
            .write_file("/shared", 0o644, b"base".to_vec(), &root())
            .unwrap();
        let mut child = parent.clone();
        child
            .write_file("/shared", 0o644, b"edited".to_vec(), &root())
            .unwrap();
        child
            .write_file("/child-only", 0o644, b"new".to_vec(), &root())
            .unwrap();
        assert_eq!(parent.read_file("/shared", &root()), Ok(b"base".to_vec()));
        assert_eq!(
            parent.resolve("/child-only", &root(), FollowMode::Follow),
            Err(Errno::ENOENT)
        );
        parent
            .write_file("/parent-only", 0o644, b"p".to_vec(), &root())
            .unwrap();
        assert_eq!(
            child.resolve("/parent-only", &root(), FollowMode::Follow),
            Err(Errno::ENOENT)
        );
        assert_eq!(child.read_file("/shared", &root()), Ok(b"edited".to_vec()));
    }

    #[test]
    fn clone_shares_pages_until_first_write() {
        let mut fs = Fs::new();
        // Enough files to span several pages.
        fs.mkdir_p("/d", 0o755).unwrap();
        for i in 0..(3 * PAGE_SLOTS) {
            fs.write_file(&format!("/d/f{i}"), 0o644, vec![b'x'; 8], &root())
                .unwrap();
        }
        let snap = fs.clone();
        assert!(fs.page_count() >= 3);
        assert_eq!(
            fs.shared_pages(),
            fs.page_count(),
            "a fresh snapshot shares every page"
        );
        // One write peels off only the touched pages: the file's page
        // and the directory's (for mtime-free content this is the
        // file's page plus possibly the dir entry's page).
        fs.write_file("/d/f0", 0o644, b"new".to_vec(), &root())
            .unwrap();
        let peeled = fs.page_count() - fs.shared_pages();
        assert!(
            (1..=2).contains(&peeled),
            "one write must touch at most the file and dir pages, peeled {peeled}"
        );
        drop(snap);
        assert_eq!(fs.shared_pages(), 0);
    }

    /// The entry-map `Arc` of a directory (white-box test plumbing).
    fn entries_ptr(fs: &Fs, path: &str) -> *const BTreeMap<String, Ino> {
        let ino = fs.resolve(path, &root(), FollowMode::Follow).unwrap();
        match &fs.inode(ino).unwrap().kind {
            FileKind::Dir { entries, .. } => Arc::as_ptr(entries),
            _ => panic!("{path} is not a directory"),
        }
    }

    #[test]
    fn untouched_directories_are_never_deep_copied() {
        // Two sibling directories share the first CoW page; mutating
        // the small one copies that page — but the big directory's
        // 512-entry map must ride along as a pointer clone, never a
        // deep copy (the PR-4 copy-amplification regression pin).
        let mut fs = Fs::new();
        fs.mkdir_p("/big", 0o755).unwrap();
        fs.mkdir_p("/small", 0o755).unwrap();
        for i in 0..512 {
            fs.write_file(&format!("/big/f{i}"), 0o644, vec![b'x'], &root())
                .unwrap();
        }
        let snap = fs.clone();
        fs.write_file("/small/new", 0o644, b"y".to_vec(), &root())
            .unwrap();
        assert_eq!(
            entries_ptr(&fs, "/big"),
            entries_ptr(&snap, "/big"),
            "a page-neighbor write must not deep-copy /big's entry map"
        );
        assert_ne!(
            entries_ptr(&fs, "/small"),
            entries_ptr(&snap, "/small"),
            "the mutated directory owns a private map"
        );
        // Isolation still holds once /big itself diverges.
        fs.write_file("/big/new", 0o644, b"z".to_vec(), &root())
            .unwrap();
        assert_ne!(entries_ptr(&fs, "/big"), entries_ptr(&snap, "/big"));
        assert!(snap
            .resolve("/big/new", &root(), FollowMode::Follow)
            .is_err());
    }

    #[test]
    fn blobs_are_shared_across_snapshots() {
        let mut fs = Fs::new();
        fs.write_file("/big", 0o644, vec![7u8; 4096], &root())
            .unwrap();
        let snap = fs.clone();
        let a = fs.read_file_blob("/big", &root()).unwrap();
        let b = snap.read_file_blob("/big", &root()).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "snapshot shares the payload");
        // The digest memo computed through one handle is visible to all.
        assert!(!a.sha_is_cached());
        let _ = b.sha_hex();
        assert!(a.sha_is_cached());
    }

    #[test]
    fn tree_digest_is_memoized_and_tracks_content() {
        let mut fs = Fs::new();
        fs.write_file("/f", 0o644, b"one".to_vec(), &root())
            .unwrap();
        let d1 = fs.tree_digest();
        assert_eq!(d1, fs.tree_digest(), "memoized digest is stable");
        assert_eq!(d1, fs.tree_digest_uncached(), "memo matches full rehash");
        fs.write_file("/f", 0o644, b"two".to_vec(), &root())
            .unwrap();
        let d2 = fs.tree_digest();
        assert_ne!(d1, d2, "content change moves the digest");
        assert_eq!(d2, fs.tree_digest_uncached());
        // mtime-only changes do not move the digest (timestamps are
        // excluded by design).
        let ino = fs.resolve("/f", &root(), FollowMode::Follow).unwrap();
        fs.set_mtime(ino, 9999).unwrap();
        assert_eq!(fs.tree_digest(), d2);
    }

    #[test]
    fn content_bytes_counts_each_inode_once() {
        let mut fs = Fs::new();
        fs.write_file("/a", 0o644, vec![0u8; 100], &root()).unwrap();
        fs.link("/a", "/b", &root()).unwrap();
        assert_eq!(fs.content_bytes(), 100, "hard links do not double count");
        assert_eq!(fs.blobs().count(), 1);
    }

    #[test]
    fn write_file_blob_shares_the_handle() {
        let mut fs = Fs::new();
        let blob = Blob::new(b"ctx".to_vec());
        let _ = blob.sha_hex(); // warm the memo before insertion
        fs.write_file_blob("/etc-copy", 0o644, Arc::clone(&blob), &root())
            .unwrap();
        let stored = fs.read_file_blob("/etc-copy", &root()).unwrap();
        assert!(Arc::ptr_eq(&blob, &stored));
        assert!(stored.sha_is_cached(), "memo rode along");
    }
}
