//! Tokenizer: command text → words and operators, with quoting and
//! `$VAR` expansion.

/// A shell token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// A (fully expanded) word.
    Word(String),
    /// `&&`.
    AndIf,
    /// `||`.
    OrIf,
    /// `;`.
    Semi,
    /// `>`.
    RedirOut,
    /// `>>`.
    RedirAppend,
}

/// Lexer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LexError {
    /// A quote was never closed.
    UnterminatedQuote(char),
    /// `&` or `|` alone (we do not support background jobs or pipes).
    Unsupported(String),
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LexError::UnterminatedQuote(q) => write!(f, "unterminated {q} quote"),
            LexError::Unsupported(s) => write!(f, "unsupported operator '{s}'"),
        }
    }
}

impl std::error::Error for LexError {}

fn expand_var(
    chars: &mut std::iter::Peekable<std::str::Chars>,
    env: &dyn Fn(&str) -> Option<String>,
    out: &mut String,
) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut name = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                name.push(c);
            }
            if let Some(v) = env(&name) {
                out.push_str(&v);
            }
        }
        Some(c) if c.is_ascii_alphabetic() || *c == '_' => {
            let mut name = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    name.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            if let Some(v) = env(&name) {
                out.push_str(&v);
            }
        }
        Some('?') => {
            chars.next();
            // $? expansion is wired by the executor via the env lookup.
            if let Some(v) = env("?") {
                out.push_str(&v);
            }
        }
        _ => out.push('$'),
    }
}

/// Tokenize `input`, expanding variables through `env`.
pub fn lex(input: &str, env: &dyn Fn(&str) -> Option<String>) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    let mut word = String::new();
    let mut has_word = false;

    macro_rules! flush {
        () => {
            if has_word {
                tokens.push(Token::Word(std::mem::take(&mut word)));
                #[allow(unused_assignments)]
                {
                    has_word = false;
                }
            }
        };
    }

    while let Some(c) = chars.next() {
        match c {
            ' ' | '\t' | '\n' => flush!(),
            '#' if !has_word => break, // comment to end of line
            '\'' => {
                has_word = true;
                let mut closed = false;
                for c in chars.by_ref() {
                    if c == '\'' {
                        closed = true;
                        break;
                    }
                    word.push(c);
                }
                if !closed {
                    return Err(LexError::UnterminatedQuote('\''));
                }
            }
            '"' => {
                has_word = true;
                let mut closed = false;
                while let Some(c) = chars.next() {
                    match c {
                        '"' => {
                            closed = true;
                            break;
                        }
                        '\\' => match chars.next() {
                            Some(c2 @ ('"' | '\\' | '$')) => word.push(c2),
                            Some(c2) => {
                                word.push('\\');
                                word.push(c2);
                            }
                            None => return Err(LexError::UnterminatedQuote('"')),
                        },
                        '$' => expand_var(&mut chars, env, &mut word),
                        c => word.push(c),
                    }
                }
                if !closed {
                    return Err(LexError::UnterminatedQuote('"'));
                }
            }
            '\\' => {
                has_word = true;
                if let Some(c2) = chars.next() {
                    word.push(c2);
                }
            }
            '$' => {
                has_word = true;
                expand_var(&mut chars, env, &mut word);
            }
            '&' => {
                if chars.peek() == Some(&'&') {
                    chars.next();
                    flush!();
                    tokens.push(Token::AndIf);
                } else {
                    return Err(LexError::Unsupported("&".into()));
                }
            }
            '|' => {
                if chars.peek() == Some(&'|') {
                    chars.next();
                    flush!();
                    tokens.push(Token::OrIf);
                } else {
                    return Err(LexError::Unsupported("|".into()));
                }
            }
            ';' => {
                flush!();
                tokens.push(Token::Semi);
            }
            '>' => {
                flush!();
                if chars.peek() == Some(&'>') {
                    chars.next();
                    tokens.push(Token::RedirAppend);
                } else {
                    tokens.push(Token::RedirOut);
                }
            }
            c => {
                has_word = true;
                word.push(c);
            }
        }
    }
    flush!();
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn none(_: &str) -> Option<String> {
        None
    }

    fn words(input: &str) -> Vec<String> {
        lex(input, &none)
            .unwrap()
            .into_iter()
            .map(|t| match t {
                Token::Word(w) => w,
                other => format!("<{other:?}>"),
            })
            .collect()
    }

    #[test]
    fn simple_split() {
        assert_eq!(
            words("yum install -y openssh"),
            vec!["yum", "install", "-y", "openssh"]
        );
    }

    #[test]
    fn quotes() {
        assert_eq!(words("echo 'a b' \"c d\""), vec!["echo", "a b", "c d"]);
        assert_eq!(words(r#"echo a\ b"#), vec!["echo", "a b"]);
        assert_eq!(words(r#"echo "x\"y""#), vec!["echo", "x\"y"]);
    }

    #[test]
    fn single_quotes_no_expansion() {
        let env = |k: &str| (k == "V").then(|| "val".to_string());
        let toks = lex("echo '$V' \"$V\" $V", &env).unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("echo".into()),
                Token::Word("$V".into()),
                Token::Word("val".into()),
                Token::Word("val".into()),
            ]
        );
    }

    #[test]
    fn operators() {
        let toks = lex("a && b || c; d", &none).unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("a".into()),
                Token::AndIf,
                Token::Word("b".into()),
                Token::OrIf,
                Token::Word("c".into()),
                Token::Semi,
                Token::Word("d".into()),
            ]
        );
    }

    #[test]
    fn redirects() {
        let toks = lex("echo hi > /etc/x >> /etc/y", &none).unwrap();
        assert!(toks.contains(&Token::RedirOut));
        assert!(toks.contains(&Token::RedirAppend));
    }

    #[test]
    fn comments_stripped() {
        assert_eq!(words("echo hi # comment && rm -rf /"), vec!["echo", "hi"]);
        // '#' inside a word is literal.
        assert_eq!(words("echo a#b"), vec!["echo", "a#b"]);
    }

    #[test]
    fn errors() {
        assert!(matches!(
            lex("echo 'x", &none),
            Err(LexError::UnterminatedQuote('\''))
        ));
        assert!(matches!(lex("a | b", &none), Err(LexError::Unsupported(_))));
        assert!(matches!(lex("a & b", &none), Err(LexError::Unsupported(_))));
    }

    #[test]
    fn empty_and_blank() {
        assert!(lex("", &none).unwrap().is_empty());
        assert!(lex("   \t  ", &none).unwrap().is_empty());
        assert!(lex("# just a comment", &none).unwrap().is_empty());
    }

    #[test]
    fn dollar_question() {
        let env = |k: &str| (k == "?").then(|| "0".to_string());
        let toks = lex("echo $?", &env).unwrap();
        assert_eq!(toks[1], Token::Word("0".into()));
    }
}
