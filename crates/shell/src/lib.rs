//! # zr-shell — the `/bin/sh` that executes RUN instructions
//!
//! A deliberately small POSIX-ish shell: word splitting with single and
//! double quotes and backslash escapes, `$VAR`/`${VAR}` expansion,
//! command lists with `&&`, `||` and `;`, output redirection (`>`,
//! `>>`), a handful of builtins (`cd`, `echo`, `true`, `false`, `umask`,
//! `exit`), and `PATH` lookup for everything else. Package-manager
//! programs are spawned through the kernel like any other binary.
//!
//! The module also hosts [`inject::inject_apt_workaround`], the text
//! rewrite from §5 of the paper: detect `apt`/`apt-get` in a RUN command
//! and splice in `-o APT::Sandbox::User=root` so apt skips the privilege
//! drop whose *verification* the zero-consistency filter would break.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod inject;
pub mod lex;
pub mod parse;

pub use exec::{run_command_line, ShellProgram};
pub use inject::inject_apt_workaround;
pub use lex::{lex, Token};
pub use parse::{parse_list, Connector, SimpleCommand};
