//! The executor: run a parsed command list against the libc boundary.
//!
//! Busybox-style applets (`mkdir`, `rm`, `chown`, …) are shell builtins
//! here, as they are in a real ash: they issue syscalls through the
//! *shell process's* context, so a statically linked `/bin/sh` (Alpine)
//! naturally bypasses LD_PRELOAD shims while a dynamic bash does not —
//! the §6(3) compatibility distinction falls out for free.

use crate::inject;
use crate::lex::{lex, Token};
use crate::parse::{parse_list, Connector, Redirect, SimpleCommand};
use zr_kernel::{ExecEnv, Program, Sys, SysError, SysExt};
use zr_syscalls::{mode, Errno};

/// Result of one simple command.
enum CmdResult {
    /// Normal completion with a status.
    Status(i32),
    /// `exit N` — stop the whole list.
    Exit(i32),
}

/// Default PATH when the environment has none.
const DEFAULT_PATH: &str = "/usr/bin:/bin:/usr/sbin:/sbin";

/// Parse `user[:group]` with numeric ids or names resolved from
/// /etc/passwd and /etc/group. Returns (uid, gid or u32::MAX for "leave").
fn parse_owner_spec(sys: &mut dyn Sys, spec: &str) -> Result<(u32, Option<u32>), String> {
    let (user, group) = match spec.split_once(':') {
        Some((u, g)) => (u, Some(g)),
        None => (spec, None),
    };
    let uid =
        resolve_id(sys, user, "/etc/passwd").ok_or_else(|| format!("invalid user: '{user}'"))?;
    let gid = match group {
        None => None,
        Some(g) => {
            Some(resolve_id(sys, g, "/etc/group").ok_or_else(|| format!("invalid group: '{g}'"))?)
        }
    };
    Ok((uid, gid))
}

/// Numeric id, or third-field lookup by name in a passwd/group style file.
fn resolve_id(sys: &mut dyn Sys, name: &str, table: &str) -> Option<u32> {
    if let Ok(n) = name.parse::<u32>() {
        return Some(n);
    }
    let data = sys.read_file(table).ok()?;
    let text = String::from_utf8_lossy(&data);
    for line in text.lines() {
        let mut fields = line.split(':');
        if fields.next() == Some(name) {
            let _pw = fields.next();
            if let Some(id) = fields.next().and_then(|f| f.parse().ok()) {
                return Some(id);
            }
        }
    }
    None
}

fn write_redirect(sys: &mut dyn Sys, redirect: &Redirect, data: &str) -> i32 {
    let result = match redirect {
        Redirect::Out(path) => sys.write_file(path, 0o644, data.as_bytes().to_vec()),
        Redirect::Append(path) => match sys.append_file(path, data.as_bytes()) {
            Err(SysError::Errno(Errno::ENOENT)) => {
                sys.write_file(path, 0o644, data.as_bytes().to_vec())
            }
            other => other,
        },
    };
    match result {
        Ok(()) => 0,
        Err(_) => 1,
    }
}

fn say(sys: &mut dyn Sys, redirect: Option<&Redirect>, text: String) -> i32 {
    match redirect {
        Some(r) => write_redirect(sys, r, &format!("{text}\n")),
        None => {
            sys.println(text);
            0
        }
    }
}

fn errno_of(e: SysError) -> Option<Errno> {
    match e {
        SysError::Errno(errno) => Some(errno),
        SysError::Killed => None,
    }
}

/// Remove a tree, rm -r style.
fn rm_recursive(sys: &mut dyn Sys, path: &str) -> Result<(), SysError> {
    match sys.lstat(path) {
        Ok(st) if mode::file_type(st.mode) == mode::S_IFDIR => {
            for entry in sys.read_dir(path)? {
                rm_recursive(sys, &format!("{path}/{entry}"))?;
            }
            sys.rmdir(path)
        }
        Ok(_) => sys.unlink(path),
        Err(e) => Err(e),
    }
}

#[allow(clippy::too_many_lines)] // one match arm per applet
fn run_builtin(
    sys: &mut dyn Sys,
    argv: &[String],
    redirect: Option<&Redirect>,
) -> Option<CmdResult> {
    let name = argv[0].rsplit('/').next().unwrap_or(&argv[0]);
    let args: Vec<&str> = argv[1..].iter().map(String::as_str).collect();
    let status = match name {
        "true" | ":" => 0,
        "false" => 1,
        "exit" => {
            let code = args.first().and_then(|a| a.parse().ok()).unwrap_or(0);
            return Some(CmdResult::Exit(code));
        }
        "echo" => {
            let text = args.join(" ");
            say(sys, redirect, text)
        }
        "cd" => {
            let target = args.first().copied().unwrap_or("/");
            match sys.chdir(target) {
                Ok(()) => 0,
                Err(_) => {
                    sys.println(format!("sh: cd: {target}: No such file or directory"));
                    1
                }
            }
        }
        "umask" => {
            if let Some(m) = args.first().and_then(|a| u32::from_str_radix(a, 8).ok()) {
                sys.umask(m);
            }
            0
        }
        "pwd" => {
            let cwd = sys.getcwd();
            say(sys, redirect, cwd)
        }
        "mkdir" => {
            let parents = args.contains(&"-p");
            let mut status = 0;
            for a in args.iter().filter(|a| !a.starts_with('-')) {
                let r = if parents {
                    sys.mkdir_p(a, 0o755)
                } else {
                    sys.mkdir(a, 0o755)
                };
                if let Err(e) = r {
                    sys.println(format!("mkdir: {a}: {e}"));
                    status = 1;
                }
            }
            status
        }
        "rmdir" => {
            let mut status = 0;
            for a in args.iter().filter(|a| !a.starts_with('-')) {
                if sys.rmdir(a).is_err() {
                    status = 1;
                }
            }
            status
        }
        "rm" => {
            let recursive = args.iter().any(|a| a.starts_with('-') && a.contains('r'));
            let force = args.iter().any(|a| a.starts_with('-') && a.contains('f'));
            let mut status = 0;
            for a in args.iter().filter(|a| !a.starts_with('-')) {
                let r = if recursive {
                    rm_recursive(sys, a)
                } else {
                    sys.unlink(a)
                };
                if let Err(e) = r {
                    if !force {
                        sys.println(format!("rm: {a}: {e}"));
                        status = 1;
                    }
                }
            }
            status
        }
        "touch" => {
            let mut status = 0;
            for a in args.iter().filter(|a| !a.starts_with('-')) {
                if sys.exists(a) {
                    let _ = sys.utimens(a, 0);
                } else if sys.write_file(a, 0o644, Vec::new()).is_err() {
                    status = 1;
                }
            }
            status
        }
        "cat" => {
            let mut collected = String::new();
            let mut status = 0;
            for a in args.iter().filter(|a| !a.starts_with('-')) {
                match sys.read_file(a) {
                    Ok(bytes) => collected.push_str(&String::from_utf8_lossy(&bytes)),
                    Err(e) => {
                        sys.println(format!("cat: {a}: {e}"));
                        status = 1;
                    }
                }
            }
            if status == 0 && !collected.is_empty() {
                match redirect {
                    Some(r) => status = write_redirect(sys, r, &collected),
                    None => {
                        for line in collected.lines() {
                            sys.println(line.to_string());
                        }
                    }
                }
            }
            status
        }
        "cp" => {
            let paths: Vec<&&str> = args.iter().filter(|a| !a.starts_with('-')).collect();
            if paths.len() != 2 {
                sys.println("cp: usage: cp SRC DST".to_string());
                1
            } else {
                match sys.read_file(paths[0]) {
                    Ok(data) => {
                        let dst = if sys
                            .stat(paths[1])
                            .map(|st| mode::file_type(st.mode) == mode::S_IFDIR)
                            .unwrap_or(false)
                        {
                            let base = paths[0].rsplit('/').next().unwrap_or(paths[0]);
                            format!("{}/{base}", paths[1])
                        } else {
                            (*paths[1]).to_string()
                        };
                        match sys.write_file(&dst, 0o644, data) {
                            Ok(()) => 0,
                            Err(e) => {
                                sys.println(format!("cp: {dst}: {e}"));
                                1
                            }
                        }
                    }
                    Err(e) => {
                        sys.println(format!("cp: {}: {e}", paths[0]));
                        1
                    }
                }
            }
        }
        "mv" => {
            let paths: Vec<&&str> = args.iter().filter(|a| !a.starts_with('-')).collect();
            if paths.len() == 2 && sys.rename(paths[0], paths[1]).is_ok() {
                0
            } else {
                1
            }
        }
        "ln" => {
            let symbolic = args.iter().any(|a| a.starts_with('-') && a.contains('s'));
            let paths: Vec<&&str> = args.iter().filter(|a| !a.starts_with('-')).collect();
            if paths.len() != 2 {
                1
            } else if symbolic {
                match sys.symlink(paths[0], paths[1]) {
                    Ok(()) => 0,
                    Err(_) => 1,
                }
            } else {
                match sys.link(paths[0], paths[1]) {
                    Ok(()) => 0,
                    Err(_) => 1,
                }
            }
        }
        "chmod" => {
            let specs: Vec<&&str> = args.iter().filter(|a| !a.starts_with('-')).collect();
            match specs.split_first() {
                Some((m, files)) if !files.is_empty() => match u32::from_str_radix(m, 8) {
                    Ok(perm) => {
                        let mut status = 0;
                        for f in files {
                            if let Err(e) = sys.chmod(f, perm) {
                                sys.println(format!("chmod: {f}: {e}"));
                                status = 1;
                            }
                        }
                        status
                    }
                    Err(_) => 1,
                },
                _ => 1,
            }
        }
        "chown" => {
            let specs: Vec<&&str> = args.iter().filter(|a| !a.starts_with('-')).collect();
            match specs.split_first() {
                Some((spec, files)) if !files.is_empty() => match parse_owner_spec(sys, spec) {
                    Ok((uid, gid)) => {
                        let mut status = 0;
                        for f in files {
                            let r = match gid {
                                Some(g) => sys.chown(f, uid, g),
                                None => sys
                                    .call(zr_kernel::SysCall::Chown {
                                        path: (*f).to_string(),
                                        uid: Some(uid),
                                        gid: None,
                                    })
                                    .map(|_| ()),
                            };
                            if let Err(e) = r {
                                let msg = errno_of(e)
                                    .map(|e| e.describe().to_string())
                                    .unwrap_or_else(|| "killed".into());
                                sys.println(format!("chown: {f}: {msg}"));
                                status = 1;
                            }
                        }
                        status
                    }
                    Err(msg) => {
                        sys.println(format!("chown: {msg}"));
                        1
                    }
                },
                _ => 1,
            }
        }
        "mknod" => {
            // mknod PATH TYPE [MAJOR MINOR]
            if args.len() < 2 {
                1
            } else {
                let path = args[0];
                let (ty, dev) = match args[1] {
                    "c" | "u" => (mode::S_IFCHR, true),
                    "b" => (mode::S_IFBLK, true),
                    "p" => (mode::S_IFIFO, false),
                    _ => (0, false),
                };
                if ty == 0 {
                    1
                } else {
                    let dev = if dev {
                        let major = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(0);
                        let minor = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(0);
                        mode::makedev(major, minor)
                    } else {
                        0
                    };
                    match sys.mknod(path, ty | 0o644, dev) {
                        Ok(()) => 0,
                        Err(e) => {
                            let msg = errno_of(e)
                                .map(|e| e.describe().to_string())
                                .unwrap_or_else(|| "killed".into());
                            sys.println(format!("mknod: {path}: {msg}"));
                            1
                        }
                    }
                }
            }
        }
        "id" => {
            let uid = sys.getuid();
            let euid = sys.geteuid();
            let gid = sys.getgid();
            let text = if uid == euid {
                format!("uid={uid} gid={gid}")
            } else {
                format!("uid={uid} gid={gid} euid={euid}")
            };
            say(sys, redirect, text)
        }
        "uuidgen" => match sys.getrandom(16) {
            Ok(b) => {
                // RFC 4122 v4 layout over the kernel's entropy stream.
                let text = format!(
                    "{:02x}{:02x}{:02x}{:02x}-{:02x}{:02x}-4{:01x}{:02x}-{:02x}{:02x}-{:02x}{:02x}{:02x}{:02x}{:02x}{:02x}",
                    b[0], b[1], b[2], b[3],
                    b[4], b[5],
                    b[6] & 0x0f, b[7],
                    (b[8] & 0x3f) | 0x80, b[9],
                    b[10], b[11], b[12], b[13], b[14], b[15],
                );
                say(sys, redirect, text)
            }
            Err(e) => match errno_of(e) {
                Some(errno) => {
                    sys.println(format!("uuidgen: {}", errno.name()));
                    1
                }
                None => return Some(CmdResult::Exit(137)),
            },
        },
        _ => return None,
    };
    Some(CmdResult::Status(status))
}

fn spawn_external(sys: &mut dyn Sys, argv: &[String], env: &[(String, String)]) -> CmdResult {
    let prog = &argv[0];
    let path_list = env
        .iter()
        .rev()
        .find(|(k, _)| k == "PATH")
        .map(|(_, v)| v.clone())
        .unwrap_or_else(|| DEFAULT_PATH.to_string());

    let candidates: Vec<String> = if prog.contains('/') {
        vec![prog.clone()]
    } else {
        path_list
            .split(':')
            .map(|d| format!("{d}/{prog}"))
            .collect()
    };

    for candidate in &candidates {
        match sys.spawn_owned(candidate, argv.to_vec(), env.to_vec()) {
            Ok(code) => return CmdResult::Status(code),
            Err(SysError::Errno(Errno::ENOENT)) => continue,
            Err(SysError::Errno(Errno::EACCES | Errno::ENOEXEC)) => {
                sys.println(format!("sh: {prog}: Permission denied"));
                return CmdResult::Status(126);
            }
            Err(SysError::Errno(e)) => {
                sys.println(format!("sh: {prog}: {e}"));
                return CmdResult::Status(126);
            }
            Err(SysError::Killed) => return CmdResult::Exit(159),
        }
    }
    sys.println(format!("sh: {prog}: not found"));
    CmdResult::Status(127)
}

/// Run a coreutils-style applet directly (`chown`, `mkdir`, `id`, …) —
/// used by images whose applets are standalone binaries. `None` if the
/// applet is unknown.
pub fn run_applet(sys: &mut dyn Sys, argv: &[String]) -> Option<i32> {
    if argv.is_empty() {
        return None;
    }
    match run_builtin(sys, argv, None) {
        Some(CmdResult::Status(s)) => Some(s),
        Some(CmdResult::Exit(code)) => Some(code),
        None => None,
    }
}

fn exec_simple(sys: &mut dyn Sys, cmd: &SimpleCommand, env: &[(String, String)]) -> CmdResult {
    match run_builtin(sys, &cmd.argv, cmd.redirect.as_ref()) {
        Some(result) => result,
        None => spawn_external(sys, &cmd.argv, env),
    }
}

/// Run one shell command line; returns the exit status.
pub fn run_command_line(sys: &mut dyn Sys, cmdline: &str, env: &[(String, String)]) -> i32 {
    let mut last_status = 0i32;
    let lookup = |name: &str| -> Option<String> {
        if name == "?" {
            return Some(last_status.to_string());
        }
        env.iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.clone())
    };
    let tokens: Vec<Token> = match lex(cmdline, &lookup) {
        Ok(t) => t,
        Err(e) => {
            sys.println(format!("sh: syntax error: {e}"));
            return 2;
        }
    };

    let commands = match parse_list(&tokens) {
        Ok(c) => c,
        Err(e) => {
            sys.println(format!("sh: syntax error: {e}"));
            return 2;
        }
    };

    for cmd in &commands {
        let run = match cmd.connector {
            Connector::First | Connector::Semi => true,
            Connector::AndIf => last_status == 0,
            Connector::OrIf => last_status != 0,
        };
        if !run {
            continue;
        }
        match exec_simple(sys, cmd, env) {
            CmdResult::Status(s) => last_status = s,
            CmdResult::Exit(code) => return code,
        }
    }
    last_status
}

/// `/bin/sh` (and the busybox `sh` applet) as a registered program.
#[derive(Debug, Default)]
pub struct ShellProgram;

impl Program for ShellProgram {
    fn run(&mut self, sys: &mut dyn Sys, env: &mut ExecEnv) -> i32 {
        // Accept: sh -c CMD | busybox sh -c CMD | busybox APPLET ARGS…
        let mut args: Vec<String> = env.argv.clone();
        let argv0 = args.first().cloned().unwrap_or_default();
        let base = argv0.rsplit('/').next().unwrap_or("sh").to_string();
        if base == "busybox" && args.len() >= 2 && args[1] != "sh" {
            // Direct applet invocation.
            let applet_argv: Vec<String> = args[1..].to_vec();
            let envs = env.env.clone();
            return match run_builtin(sys, &applet_argv, None) {
                Some(CmdResult::Status(s)) => s,
                Some(CmdResult::Exit(code)) => code,
                None => match spawn_external(sys, &applet_argv, &envs) {
                    CmdResult::Status(s) | CmdResult::Exit(s) => s,
                },
            };
        }
        if base == "busybox" {
            args.remove(0); // shift: busybox sh -c … → sh -c …
        }
        match (args.get(1).map(String::as_str), args.get(2)) {
            (Some("-c"), Some(cmd)) => {
                let cmd = cmd.clone();
                let envs = env.env.clone();
                run_command_line(sys, &cmd, &envs)
            }
            _ => {
                sys.println("sh: interactive mode not supported".to_string());
                2
            }
        }
    }
}

// Re-export for builder convenience.
pub use inject::inject_apt_workaround as inject_apt;

#[cfg(test)]
mod tests {
    use super::*;
    use zr_kernel::{ContainerConfig, ContainerType, Kernel};
    use zr_vfs::fs::Fs;

    fn kernel_with_container() -> (Kernel, u32) {
        let mut k = Kernel::default_kernel();
        let mut image = Fs::new();
        for d in ["/bin", "/etc", "/tmp", "/usr/bin"] {
            image.mkdir_p(d, 0o755).unwrap();
        }
        let root = zr_vfs::Access::root();
        image
            .write_file(
                "/etc/passwd",
                0o644,
                b"root:x:0:0:root:/root:/bin/sh\nsshd:x:74:74::/var/empty:/sbin/nologin\n".to_vec(),
                &root,
            )
            .unwrap();
        image
            .write_file(
                "/etc/group",
                0o644,
                b"root:x:0:\nssh_keys:x:998:\n".to_vec(),
                &root,
            )
            .unwrap();
        for ino in 1..=image.inode_count() as u64 {
            image.set_owner(ino, 1000, 1000).unwrap();
        }
        let c = k
            .container_create(
                Kernel::HOST_USER_PID,
                ContainerConfig {
                    ctype: ContainerType::TypeIII,
                    image,
                },
            )
            .unwrap();
        (k, c.init_pid)
    }

    fn sh(k: &mut Kernel, pid: u32, cmd: &str) -> i32 {
        let mut ctx = k.ctx(pid);
        run_command_line(&mut ctx, cmd, &[("PATH".into(), DEFAULT_PATH.into())])
    }

    #[test]
    fn echo_and_status() {
        let (mut k, pid) = kernel_with_container();
        assert_eq!(sh(&mut k, pid, "echo hello world"), 0);
        assert_eq!(k.take_console(), vec!["hello world".to_string()]);
    }

    #[test]
    fn redirect_creates_file() {
        let (mut k, pid) = kernel_with_container();
        assert_eq!(sh(&mut k, pid, "echo data > /tmp/out"), 0);
        let mut ctx = k.ctx(pid);
        assert_eq!(ctx.read_file("/tmp/out").unwrap(), b"data\n");
        assert_eq!(sh(&mut k, pid, "echo more >> /tmp/out"), 0);
        let mut ctx = k.ctx(pid);
        assert_eq!(ctx.read_file("/tmp/out").unwrap(), b"data\nmore\n");
    }

    #[test]
    fn and_or_chains() {
        let (mut k, pid) = kernel_with_container();
        assert_eq!(sh(&mut k, pid, "true && echo yes"), 0);
        assert_eq!(k.take_console(), vec!["yes".to_string()]);
        assert_eq!(sh(&mut k, pid, "false && echo no"), 1);
        assert!(k.take_console().is_empty());
        assert_eq!(sh(&mut k, pid, "false || echo rescued"), 0);
        assert_eq!(k.take_console(), vec!["rescued".to_string()]);
    }

    #[test]
    fn mkdir_rm_roundtrip() {
        let (mut k, pid) = kernel_with_container();
        assert_eq!(sh(&mut k, pid, "mkdir -p /a/b/c && touch /a/b/c/f"), 0);
        let mut ctx = k.ctx(pid);
        assert!(ctx.exists("/a/b/c/f"));
        assert_eq!(sh(&mut k, pid, "rm -rf /a"), 0);
        let mut ctx = k.ctx(pid);
        assert!(!ctx.exists("/a"));
    }

    #[test]
    fn not_found_is_127() {
        let (mut k, pid) = kernel_with_container();
        assert_eq!(sh(&mut k, pid, "no-such-program --help"), 127);
        let console = k.take_console();
        assert!(console[0].contains("not found"), "{console:?}");
    }

    #[test]
    fn chown_builtin_fails_in_type_iii() {
        // The coreutils path to the Figure 1b failure.
        let (mut k, pid) = kernel_with_container();
        assert_eq!(
            sh(&mut k, pid, "touch /tmp/f && chown sshd:ssh_keys /tmp/f"),
            1
        );
        let console = k.take_console();
        assert!(console.iter().any(|l| l.contains("chown:")), "{console:?}");
    }

    #[test]
    fn chown_by_name_resolves_passwd() {
        let (mut k, pid) = kernel_with_container();
        // root:root resolves to 0:0 = current owner → no-op success.
        assert_eq!(sh(&mut k, pid, "touch /tmp/f && chown root:root /tmp/f"), 0);
    }

    #[test]
    fn mknod_builtin_device_fails_unprivileged() {
        let (mut k, pid) = kernel_with_container();
        assert_eq!(sh(&mut k, pid, "mknod /tmp/null c 1 3"), 1);
        assert_eq!(sh(&mut k, pid, "mknod /tmp/fifo p"), 0);
    }

    #[test]
    fn exit_stops_list() {
        let (mut k, pid) = kernel_with_container();
        assert_eq!(sh(&mut k, pid, "echo one; exit 3; echo two"), 3);
        assert_eq!(k.take_console(), vec!["one".to_string()]);
    }

    #[test]
    fn id_reports_container_root() {
        let (mut k, pid) = kernel_with_container();
        assert_eq!(sh(&mut k, pid, "id"), 0);
        assert_eq!(k.take_console(), vec!["uid=0 gid=0".to_string()]);
    }

    #[test]
    fn uuidgen_is_deterministic_across_kernels() {
        let render = || {
            let (mut k, pid) = kernel_with_container();
            assert_eq!(sh(&mut k, pid, "uuidgen > /etc/machine-id"), 0);
            let mut ctx = k.ctx(pid);
            String::from_utf8(ctx.read_file("/etc/machine-id").unwrap()).unwrap()
        };
        let a = render();
        let b = render();
        // RFC 4122 shape: 8-4-4-4-12 hex with the version nibble set.
        assert_eq!(a.trim().len(), 36, "{a:?}");
        assert_eq!(a.trim().as_bytes()[14], b'4');
        // Deterministic stream: independent builds agree byte-for-byte.
        assert_eq!(a, b);
    }

    #[test]
    fn cp_mv_cat() {
        let (mut k, pid) = kernel_with_container();
        assert_eq!(
            sh(
                &mut k,
                pid,
                "echo payload > /tmp/a && cp /tmp/a /tmp/b && mv /tmp/b /tmp/c && cat /tmp/c"
            ),
            0
        );
        let console = k.take_console();
        assert_eq!(console.last().unwrap(), "payload");
    }

    #[test]
    fn syntax_error_is_2() {
        let (mut k, pid) = kernel_with_container();
        assert_eq!(sh(&mut k, pid, "echo 'unterminated"), 2);
    }
}
