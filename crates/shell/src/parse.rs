//! Parser: tokens → a connector-separated list of simple commands.

use crate::lex::Token;

/// How a command chains to the *previous* one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Connector {
    /// First command in the list.
    First,
    /// `&&`: run only if the previous succeeded.
    AndIf,
    /// `||`: run only if the previous failed.
    OrIf,
    /// `;`: run unconditionally.
    Semi,
}

/// A redirect target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Redirect {
    /// `> path` (truncate).
    Out(String),
    /// `>> path` (append).
    Append(String),
}

/// One simple command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimpleCommand {
    /// Connector to the previous command.
    pub connector: Connector,
    /// argv (`argv[0]` = program word).
    pub argv: Vec<String>,
    /// Optional stdout redirect.
    pub redirect: Option<Redirect>,
}

/// Parse failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Connector with no command before/after it.
    DanglingConnector,
    /// Redirect without a target word.
    MissingRedirectTarget,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::DanglingConnector => write!(f, "syntax error near connector"),
            ParseError::MissingRedirectTarget => write!(f, "redirect needs a target"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse a token stream into a command list.
pub fn parse_list(tokens: &[Token]) -> Result<Vec<SimpleCommand>, ParseError> {
    let mut out: Vec<SimpleCommand> = Vec::new();
    let mut current = SimpleCommand {
        connector: Connector::First,
        argv: Vec::new(),
        redirect: None,
    };
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            Token::Word(w) => current.argv.push(w.clone()),
            Token::RedirOut | Token::RedirAppend => {
                let target = match tokens.get(i + 1) {
                    Some(Token::Word(w)) => w.clone(),
                    _ => return Err(ParseError::MissingRedirectTarget),
                };
                current.redirect = Some(if tokens[i] == Token::RedirOut {
                    Redirect::Out(target)
                } else {
                    Redirect::Append(target)
                });
                i += 1;
            }
            connector @ (Token::AndIf | Token::OrIf | Token::Semi) => {
                if current.argv.is_empty() {
                    return Err(ParseError::DanglingConnector);
                }
                out.push(std::mem::replace(
                    &mut current,
                    SimpleCommand {
                        connector: match connector {
                            Token::AndIf => Connector::AndIf,
                            Token::OrIf => Connector::OrIf,
                            _ => Connector::Semi,
                        },
                        argv: Vec::new(),
                        redirect: None,
                    },
                ));
            }
        }
        i += 1;
    }
    if !current.argv.is_empty() {
        out.push(current);
    } else if !matches!(current.connector, Connector::First | Connector::Semi) {
        return Err(ParseError::DanglingConnector);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn none(_: &str) -> Option<String> {
        None
    }

    fn parse(s: &str) -> Vec<SimpleCommand> {
        parse_list(&lex(s, &none).unwrap()).unwrap()
    }

    #[test]
    fn single_command() {
        let cmds = parse("apk add sl");
        assert_eq!(cmds.len(), 1);
        assert_eq!(cmds[0].argv, vec!["apk", "add", "sl"]);
        assert_eq!(cmds[0].connector, Connector::First);
    }

    #[test]
    fn list_with_connectors() {
        let cmds = parse("a && b || c; d");
        assert_eq!(cmds.len(), 4);
        assert_eq!(cmds[1].connector, Connector::AndIf);
        assert_eq!(cmds[2].connector, Connector::OrIf);
        assert_eq!(cmds[3].connector, Connector::Semi);
    }

    #[test]
    fn redirects_attach() {
        let cmds = parse("echo hi > /etc/motd");
        assert_eq!(cmds[0].redirect, Some(Redirect::Out("/etc/motd".into())));
        let cmds = parse("echo hi >> /log");
        assert_eq!(cmds[0].redirect, Some(Redirect::Append("/log".into())));
    }

    #[test]
    fn trailing_semi_ok() {
        let cmds = parse("echo hi;");
        assert_eq!(cmds.len(), 1);
    }

    #[test]
    fn dangling_connector_rejected() {
        let toks = lex("&& b", &none).unwrap();
        assert_eq!(parse_list(&toks), Err(ParseError::DanglingConnector));
        let toks = lex("a &&", &none).unwrap();
        // 'a &&' with nothing after: the empty AndIf command is dangling.
        assert_eq!(parse_list(&toks), Err(ParseError::DanglingConnector));
    }

    #[test]
    fn redirect_without_target_rejected() {
        let toks = lex("echo hi >", &none).unwrap();
        assert_eq!(parse_list(&toks), Err(ParseError::MissingRedirectTarget));
    }
}
