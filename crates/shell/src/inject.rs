//! The apt workaround (§5).
//!
//! Debian's apt "by default drops privileges for downloading packages …
//! and also verifies that they were dropped correctly. This validation
//! fails under our seccomp filter. We work around the problem awkwardly
//! by detecting apt(8) and apt-get(8) in RUN instructions and injecting
//! `-o APT::Sandbox::User=root` into their command lines."
//!
//! The detection operates on the token stream so quoting survives:
//! `apt`/`apt-get` count only in *command position* (start of a list, or
//! right after `&&`/`||`/`;`), by basename.

/// The option the paper injects.
pub const APT_OPTION: &str = "-o APT::Sandbox::User=root";

fn is_apt_command(word: &str) -> bool {
    let base = word.rsplit('/').next().unwrap_or(word);
    base == "apt" || base == "apt-get"
}

/// Rewrite `cmdline`, injecting the sandbox-disable option after every
/// apt/apt-get in command position. Returns the new command line and
/// whether anything changed.
///
/// Works on raw text with shell-aware word boundaries approximated by
/// whitespace splitting outside quotes — adequate for RUN instructions,
/// which is all Charliecloud's version handles either.
pub fn inject_apt_workaround(cmdline: &str) -> (String, bool) {
    let mut out = String::with_capacity(cmdline.len() + 32);
    let mut changed = false;
    let mut command_position = true;
    let mut in_single = false;
    let mut in_double = false;

    let mut word = String::new();
    let flush_word =
        |word: &mut String, out: &mut String, command_position: &mut bool, changed: &mut bool| {
            if word.is_empty() {
                return;
            }
            out.push_str(word);
            if *command_position && is_apt_command(word) {
                out.push(' ');
                out.push_str(APT_OPTION);
                *changed = true;
            }
            if *command_position {
                *command_position = false;
            }
            word.clear();
        };

    let mut chars = cmdline.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\'' if !in_double => {
                in_single = !in_single;
                word.push(c);
            }
            '"' if !in_single => {
                in_double = !in_double;
                word.push(c);
            }
            ' ' | '\t' if !in_single && !in_double => {
                flush_word(&mut word, &mut out, &mut command_position, &mut changed);
                out.push(c);
            }
            '&' | '|' if !in_single && !in_double && chars.peek() == Some(&c) => {
                flush_word(&mut word, &mut out, &mut command_position, &mut changed);
                chars.next();
                out.push(c);
                out.push(c);
                command_position = true;
            }
            ';' if !in_single && !in_double => {
                flush_word(&mut word, &mut out, &mut command_position, &mut changed);
                out.push(';');
                command_position = true;
            }
            c => word.push(c),
        }
    }
    flush_word(&mut word, &mut out, &mut command_position, &mut changed);
    (out, changed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injects_after_apt_get() {
        let (out, changed) = inject_apt_workaround("apt-get install -y hello");
        assert!(changed);
        assert_eq!(out, "apt-get -o APT::Sandbox::User=root install -y hello");
    }

    #[test]
    fn injects_after_apt() {
        let (out, changed) = inject_apt_workaround("apt update");
        assert!(changed);
        assert!(out.starts_with("apt -o APT::Sandbox::User=root update"));
    }

    #[test]
    fn injects_by_basename() {
        let (out, changed) = inject_apt_workaround("/usr/bin/apt-get update");
        assert!(changed);
        assert!(out.starts_with("/usr/bin/apt-get -o APT::Sandbox::User=root"));
    }

    #[test]
    fn injects_in_each_list_position() {
        let (out, changed) =
            inject_apt_workaround("apt-get update && apt-get install -y gcc; apt list");
        assert!(changed);
        assert_eq!(out.matches(APT_OPTION).count(), 3);
    }

    #[test]
    fn leaves_non_apt_alone() {
        for cmd in [
            "yum install -y openssh",
            "apk add sl",
            "echo apt-get is a word here", // not command position
            "aptitude install x",          // different tool
            "cp apt-get.txt /tmp",         // argument, not command
        ] {
            let (out, changed) = inject_apt_workaround(cmd);
            assert!(!changed, "{cmd} should be untouched");
            assert_eq!(out, cmd);
        }
    }

    #[test]
    fn quoted_apt_not_injected() {
        let (out, changed) = inject_apt_workaround("echo 'apt-get install'");
        assert!(!changed);
        assert_eq!(out, "echo 'apt-get install'");
    }

    #[test]
    fn preserves_spacing_and_quotes() {
        let (out, _) = inject_apt_workaround("echo \"a && b\" && apt update");
        assert!(out.starts_with("echo \"a && b\" && apt -o"));
    }
}
