//! A reusable single-purpose TCP chaos proxy for wire tests.
//!
//! The proxy relays whole connections verbatim to an upstream address,
//! except for one targeted connection (0-based accept order), which it
//! sabotages according to a [`ChaosMode`]: cut after N request bytes,
//! stall the response, or flip a bit in the response stream. One
//! sabotaged connection against an otherwise clean wire is the
//! sharpest reproduction of real network failure — the retry either
//! recovers on the next connection or the bug is real.
//!
//! Promoted out of `crates/registry/tests/wire.rs` so every crate's
//! wire tests share one implementation.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// What the proxy does to the targeted connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Cut connection `conn` after relaying `bytes` request bytes
    /// upstream, relaying nothing back — the wire picture of the
    /// network dying under an in-flight request.
    KillAfter {
        /// 0-based index of the connection to kill.
        conn: usize,
        /// Request bytes to relay before the cut.
        bytes: u64,
    },
    /// Relay connection `conn`'s request, then sit on the response for
    /// `delay` before relaying it — long enough to trip a client read
    /// deadline.
    StallResponse {
        /// 0-based index of the connection to stall.
        conn: usize,
        /// How long to hold the response back.
        delay: Duration,
    },
    /// Relay connection `conn` both ways but flip one bit of the
    /// response stream at byte `offset` — corruption a digest check
    /// must catch.
    BitFlip {
        /// 0-based index of the connection to corrupt.
        conn: usize,
        /// Byte offset into the response stream whose top bit flips.
        offset: u64,
    },
}

impl ChaosMode {
    fn target(&self) -> usize {
        match *self {
            ChaosMode::KillAfter { conn, .. }
            | ChaosMode::StallResponse { conn, .. }
            | ChaosMode::BitFlip { conn, .. } => conn,
        }
    }
}

/// Copy `from` into `to`, XOR-ing byte `flip_at` (stream offset) with
/// 0x80 when given. Returns bytes copied.
fn relay(mut from: TcpStream, mut to: TcpStream, flip_at: Option<u64>) -> u64 {
    let mut buffer = [0u8; 16 * 1024];
    let mut position: u64 = 0;
    loop {
        let n = match from.read(&mut buffer) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        if let Some(offset) = flip_at {
            if offset >= position && offset < position + n as u64 {
                buffer[(offset - position) as usize] ^= 0x80;
            }
        }
        if to.write_all(&buffer[..n]).is_err() {
            break;
        }
        position += n as u64;
    }
    let _ = to.shutdown(Shutdown::Write);
    position
}

/// Relay one connection verbatim in both directions, with an optional
/// response stall and an optional response bit flip.
fn relay_connection(
    client: TcpStream,
    server: TcpStream,
    stall: Option<Duration>,
    flip_at: Option<u64>,
) {
    let client_read = match client.try_clone() {
        Ok(half) => half,
        Err(_) => return,
    };
    let server_write = match server.try_clone() {
        Ok(half) => half,
        Err(_) => return,
    };
    let up = std::thread::spawn(move || relay(client_read, server_write, None));
    if let Some(delay) = stall {
        std::thread::sleep(delay);
    }
    relay(server, client, flip_at);
    let _ = up.join();
}

/// Start a chaos proxy in front of `upstream` and return its address.
/// Every connection is relayed verbatim except the one `mode` targets.
/// The proxy thread lives until its listener errors (process exit) —
/// the same lifecycle as the test servers it fronts.
pub fn chaos_proxy(upstream: SocketAddr, mode: ChaosMode) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind chaos proxy");
    let addr = listener.local_addr().expect("chaos proxy addr");
    std::thread::spawn(move || {
        for (index, accepted) in listener.incoming().enumerate() {
            let Ok(mut client) = accepted else { return };
            let Ok(server) = TcpStream::connect(upstream) else {
                return;
            };
            let targeted = index == mode.target();
            std::thread::spawn(move || match mode {
                ChaosMode::KillAfter { bytes, .. } if targeted => {
                    let mut server = server;
                    let _ = std::io::copy(&mut Read::by_ref(&mut client).take(bytes), &mut server);
                    let _ = server.shutdown(Shutdown::Both);
                    let _ = client.shutdown(Shutdown::Both);
                }
                ChaosMode::StallResponse { delay, .. } if targeted => {
                    relay_connection(client, server, Some(delay), None);
                }
                ChaosMode::BitFlip { offset, .. } if targeted => {
                    relay_connection(client, server, None, Some(offset));
                }
                _ => relay_connection(client, server, None, None),
            });
        }
    });
    addr
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A one-line echo upstream: reads to EOF (write half), answers
    /// with the same bytes.
    fn echo_upstream() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind echo");
        let addr = listener.local_addr().expect("echo addr");
        std::thread::spawn(move || {
            for accepted in listener.incoming() {
                let Ok(mut stream) = accepted else { return };
                std::thread::spawn(move || {
                    let mut request = Vec::new();
                    let _ = Read::by_ref(&mut stream).read_to_end(&mut request);
                    let _ = stream.write_all(&request);
                    let _ = stream.shutdown(Shutdown::Both);
                });
            }
        });
        addr
    }

    fn exchange(addr: SocketAddr, payload: &[u8]) -> std::io::Result<Vec<u8>> {
        let mut stream = TcpStream::connect(addr)?;
        stream.write_all(payload)?;
        stream.shutdown(Shutdown::Write)?;
        let mut response = Vec::new();
        stream.read_to_end(&mut response)?;
        Ok(response)
    }

    #[test]
    fn untargeted_connections_relay_verbatim() {
        let proxy = chaos_proxy(echo_upstream(), ChaosMode::KillAfter { conn: 99, bytes: 0 });
        assert_eq!(
            exchange(proxy, b"hello wire").expect("clean exchange"),
            b"hello wire"
        );
    }

    #[test]
    fn kill_after_cuts_the_targeted_connection() {
        let proxy = chaos_proxy(echo_upstream(), ChaosMode::KillAfter { conn: 1, bytes: 4 });
        assert_eq!(exchange(proxy, b"first").expect("conn 0 clean"), b"first");
        let cut = exchange(proxy, b"second-connection-payload").unwrap_or_default();
        assert!(
            cut.len() < b"second-connection-payload".len(),
            "the targeted connection must not round-trip: got {cut:?}"
        );
        assert_eq!(exchange(proxy, b"third").expect("conn 2 clean"), b"third");
    }

    #[test]
    fn stall_delays_but_preserves_the_response() {
        let delay = Duration::from_millis(120);
        let proxy = chaos_proxy(echo_upstream(), ChaosMode::StallResponse { conn: 0, delay });
        let start = std::time::Instant::now();
        assert_eq!(exchange(proxy, b"slow").expect("stalled"), b"slow");
        assert!(start.elapsed() >= delay, "the response must be held back");
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_byte() {
        let proxy = chaos_proxy(echo_upstream(), ChaosMode::BitFlip { conn: 0, offset: 2 });
        let corrupted = exchange(proxy, b"abcdef").expect("flipped exchange");
        assert_eq!(corrupted.len(), 6);
        assert_eq!(corrupted[2], b'c' ^ 0x80);
        let mut repaired = corrupted.clone();
        repaired[2] = b'c';
        assert_eq!(repaired, b"abcdef");
        assert_eq!(exchange(proxy, b"abcdef").expect("clean"), b"abcdef");
    }
}
