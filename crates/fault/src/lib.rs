//! # zr-fault — the deterministic fault-injection plane
//!
//! Every I/O boundary in the stack (the persistent CAS, the registry
//! wire protocol on both ends, the scheduler's workers) carries cheap
//! named hooks: `if let Some(arg) = zr_fault::hit("store.write.err")`.
//! With no plan installed the hook is one relaxed atomic load — nothing
//! to measure. With a plan installed, each named point fires according
//! to a *deterministic* trigger: counted (`name=COUNT[@SKIP][:ARG]`,
//! fire `COUNT` times after skipping `SKIP` hits) or probabilistic
//! (`name=pP[:ARG]`, per-hit probability from a seeded, replayable
//! RNG). The same plan string against the same workload injects the
//! same faults — chaos runs are reproducible bug reports, not weather.
//!
//! The point *name* encodes the failure action, so a plan reads as a
//! fault schedule: `seed=42;wire.client.reset=3;sched.stage.panic=1`
//! means "three connection resets on the client wire, one worker
//! panic". See [`points`] for the vocabulary.
//!
//! On top of the plane sit the resilience policies the faults prove
//! out: [`RetryPolicy`] (capped exponential backoff with seeded
//! jitter), process-wide resilience [`counters`] (retries, timeouts,
//! degraded fallbacks), and [`chaos`], a reusable TCP chaos proxy for
//! wire tests (kill-after-bytes, stalled responses, bit flips).
//!
//! Plans are installed per test via [`install`] (which serializes
//! fault-using tests behind a global lock and uninstalls on drop) or
//! process-wide via [`install_global`] / the `ZR_FAULT` environment
//! variable read by [`install_from_env`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// The well-known injection point names, one constant per point, so
/// call sites and plans cannot drift apart by typo. The naming scheme
/// is `layer.site.action`: the last segment is the failure *action*
/// the firing hook performs.
pub mod points {
    /// CAS object write returns an injected I/O error before any bytes
    /// land.
    pub const STORE_WRITE_ERR: &str = "store.write.err";
    /// CAS object write is torn: the temp file keeps only a prefix and
    /// the write reports an error (what a full disk or a crash mid-
    /// `write(2)` leaves behind).
    pub const STORE_WRITE_TORN: &str = "store.write.torn";
    /// The rename publishing a CAS object fails.
    pub const STORE_RENAME_ERR: &str = "store.rename.err";
    /// The fsync sealing a CAS write fails.
    pub const STORE_FSYNC_ERR: &str = "store.fsync.err";
    /// Simulated crash inside the batched pack commit: the commit stops
    /// dead at the k-th crash checkpoint, leaving on-disk state exactly
    /// as a power cut at that instant would. Recovery is exercised by
    /// reopening the store.
    pub const STORE_COMMIT_CRASH: &str = "store.commit.crash";
    /// The client's connection resets mid-exchange (send or receive).
    pub const WIRE_CLIENT_RESET: &str = "wire.client.reset";
    /// The server drops an accepted connection before reading it.
    pub const WIRE_SERVER_RESET: &str = "wire.server.reset";
    /// The server answers 500 instead of dispatching the request.
    pub const WIRE_SERVER_HTTP500: &str = "wire.server.http500";
    /// The server truncates the response body (arg = bytes kept;
    /// default half).
    pub const WIRE_SERVER_TRUNCATE: &str = "wire.server.truncate";
    /// The server stalls before answering (arg = milliseconds), long
    /// enough to trip a client read deadline.
    pub const WIRE_SERVER_STALL: &str = "wire.server.stall";
    /// A catalog/registry pull fails with an injected transport error
    /// (above the wire — exercises the degraded FROM fallback without
    /// a live endpoint).
    pub const REGISTRY_PULL_ERR: &str = "registry.pull.err";
    /// A scheduler worker panics at the top of a stage build.
    pub const SCHED_STAGE_PANIC: &str = "sched.stage.panic";
    /// A scheduler worker stalls (arg = milliseconds) before a stage —
    /// for cancellation-race and deadline tests.
    pub const SCHED_STAGE_STALL: &str = "sched.stage.stall";
    /// The daemon's submit path stalls (arg = milliseconds) before
    /// enqueuing the batch — widens the admission/shutdown race window.
    pub const SCHED_DAEMON_SUBMIT_STALL: &str = "sched.daemon.submit.stall";
    /// The daemon's submit path panics *inside* the batch-queue
    /// critical section, poisoning the queue mutex. The daemon absorbs
    /// the poison and retries the enqueue; resident workers (which
    /// recover poisoned guards) must survive.
    pub const SCHED_DAEMON_SUBMIT_POISON: &str = "sched.daemon.submit.poison";
}

// ---------------------------------------------------------------------
// Seeded RNG
// ---------------------------------------------------------------------

/// A tiny, replayable RNG (splitmix64): the same seed always yields the
/// same fault schedule and the same backoff jitter. Not cryptographic —
/// determinism is the whole point.
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// An RNG at the start of the stream for `seed`.
    pub fn new(seed: u64) -> FaultRng {
        FaultRng {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

// ---------------------------------------------------------------------
// Plans
// ---------------------------------------------------------------------

/// How one injection point decides whether a given hit fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire `times` consecutive hits after skipping the first `skip`.
    Counted {
        /// Hits to let pass before the first firing.
        skip: u64,
        /// Number of hits that fire once past `skip`.
        times: u64,
    },
    /// Fire each hit independently with this probability, drawn from
    /// the plan's seeded RNG.
    Probability(f64),
}

/// One named injection point of a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSpec {
    /// The point name (see [`points`]).
    pub name: String,
    /// When the point fires.
    pub trigger: Trigger,
    /// Point-specific argument delivered to the hook when it fires
    /// (stall milliseconds, truncation length, …); 0 when unset.
    pub arg: u64,
}

/// A parsed fault plan: a seed plus a set of named points.
///
/// Plan strings are `;`-separated clauses. `seed=N` seeds the RNG
/// (default 0); every other clause is `name=SPEC[:ARG]` where `SPEC`
/// is either `COUNT[@SKIP]` (counted) or `pP` with `P ∈ [0,1]`
/// (probabilistic). Examples:
///
/// ```text
/// seed=42;wire.client.reset=3;sched.stage.panic=1
/// store.commit.crash=1@2            # fire on the third hit only
/// wire.server.stall=2:250           # stall twice, 250 ms each
/// wire.server.http500=p0.25         # 25% of requests answer 500
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// RNG seed for probabilistic triggers and policy jitter.
    pub seed: u64,
    /// The plan's injection points.
    pub points: Vec<PointSpec>,
}

impl FaultPlan {
    /// An empty plan (installs fine; nothing ever fires).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Add a counted point: fire `times` hits after skipping `skip`.
    pub fn counted(mut self, name: &str, times: u64, skip: u64, arg: u64) -> FaultPlan {
        self.points.push(PointSpec {
            name: name.to_string(),
            trigger: Trigger::Counted { skip, times },
            arg,
        });
        self
    }

    /// Set the RNG seed.
    pub fn seeded(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    /// Parse a plan string (see the type docs for the syntax).
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for clause in text.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (name, spec) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause without '=': {clause:?}"))?;
            let (name, spec) = (name.trim(), spec.trim());
            if name == "seed" {
                plan.seed = spec.parse().map_err(|_| format!("bad seed: {spec:?}"))?;
                continue;
            }
            let (spec, arg) = match spec.split_once(':') {
                Some((s, a)) => (
                    s,
                    a.parse::<u64>()
                        .map_err(|_| format!("bad arg in {clause:?}"))?,
                ),
                None => (spec, 0),
            };
            let trigger = if let Some(p) = spec.strip_prefix('p') {
                let p: f64 = p
                    .parse()
                    .map_err(|_| format!("bad probability in {clause:?}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability out of [0,1] in {clause:?}"));
                }
                Trigger::Probability(p)
            } else {
                let (times, skip) = match spec.split_once('@') {
                    Some((t, s)) => (
                        t.parse::<u64>()
                            .map_err(|_| format!("bad count in {clause:?}"))?,
                        s.parse::<u64>()
                            .map_err(|_| format!("bad skip in {clause:?}"))?,
                    ),
                    None => (
                        spec.parse::<u64>()
                            .map_err(|_| format!("bad count in {clause:?}"))?,
                        0,
                    ),
                };
                Trigger::Counted { skip, times }
            };
            plan.points.push(PointSpec {
                name: name.to_string(),
                trigger,
                arg,
            });
        }
        Ok(plan)
    }
}

// ---------------------------------------------------------------------
// The installed plane
// ---------------------------------------------------------------------

struct CompiledPoint {
    name: String,
    trigger: Trigger,
    arg: u64,
    /// Hits observed so far (counted triggers index into this).
    seen: AtomicU64,
}

struct Plane {
    points: Vec<CompiledPoint>,
    rng: Mutex<FaultRng>,
}

/// Fast-path switch: `false` means no plan is installed and every hook
/// is a single relaxed load.
static ACTIVE: AtomicBool = AtomicBool::new(false);

fn plane_slot() -> &'static Mutex<Option<Plane>> {
    static PLANE: OnceLock<Mutex<Option<Plane>>> = OnceLock::new();
    PLANE.get_or_init(|| Mutex::new(None))
}

/// Serializes fault-using tests within one binary: whoever holds a
/// [`PlanGuard`] owns the (process-global) plane.
fn serial_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn relock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // Injected panics poison locks by design; the data is counters.
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// Keeps a plan installed; uninstalls (and releases the test-serial
/// lock) on drop.
pub struct PlanGuard {
    _serial: Option<MutexGuard<'static, ()>>,
}

impl Drop for PlanGuard {
    fn drop(&mut self) {
        ACTIVE.store(false, Ordering::SeqCst);
        *relock(plane_slot()) = None;
    }
}

fn compile(plan: &FaultPlan) -> Plane {
    Plane {
        points: plan
            .points
            .iter()
            .map(|p| CompiledPoint {
                name: p.name.clone(),
                trigger: p.trigger,
                arg: p.arg,
                seen: AtomicU64::new(0),
            })
            .collect(),
        rng: Mutex::new(FaultRng::new(plan.seed)),
    }
}

/// Install `plan`, serializing against every other [`install`] caller
/// in the process (fault-using tests must not overlap), and reset the
/// resilience [`counters`]. The plan stays installed until the guard
/// drops.
pub fn install(plan: &FaultPlan) -> PlanGuard {
    let serial = relock(serial_lock());
    reset_counters();
    *relock(plane_slot()) = Some(compile(plan));
    ACTIVE.store(true, Ordering::SeqCst);
    PlanGuard {
        _serial: Some(serial),
    }
}

/// Install `plan` for the life of the process (the CLI path — no
/// guard, no test serialization).
pub fn install_global(plan: &FaultPlan) {
    reset_counters();
    *relock(plane_slot()) = Some(compile(plan));
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Install a plan from the `ZR_FAULT` environment variable if set.
/// Returns whether a plan was installed; a malformed plan is an `Err`
/// (silently ignoring a typo'd fault plan would un-inject the faults).
pub fn install_from_env() -> Result<bool, String> {
    match std::env::var("ZR_FAULT") {
        Ok(text) if !text.trim().is_empty() => {
            install_global(&FaultPlan::parse(&text)?);
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// Is a fault plan currently installed?
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// The hook: does injection point `point` fire on this hit? `None`
/// (the overwhelmingly common answer) costs one relaxed atomic load
/// when no plan is installed. `Some(arg)` delivers the point's
/// argument (0 when the plan sets none) and counts one injected fault.
#[inline]
pub fn hit(point: &str) -> Option<u64> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    hit_installed(point)
}

/// Boolean convenience over [`hit`] for points without arguments.
#[inline]
pub fn fires(point: &str) -> bool {
    hit(point).is_some()
}

#[cold]
fn hit_installed(point: &str) -> Option<u64> {
    let slot = relock(plane_slot());
    let plane = slot.as_ref()?;
    let compiled = plane.points.iter().find(|p| p.name == point)?;
    let fire = match compiled.trigger {
        Trigger::Counted { skip, times } => {
            let n = compiled.seen.fetch_add(1, Ordering::Relaxed);
            n >= skip && n < skip.saturating_add(times)
        }
        Trigger::Probability(p) => relock(&plane.rng).next_f64() < p,
    };
    if fire {
        INJECTED.fetch_add(1, Ordering::Relaxed);
        Some(compiled.arg)
    } else {
        None
    }
}

// ---------------------------------------------------------------------
// Resilience counters
// ---------------------------------------------------------------------

static INJECTED: AtomicU64 = AtomicU64::new(0);
static RETRIES: AtomicU64 = AtomicU64::new(0);
static TIMEOUTS: AtomicU64 = AtomicU64::new(0);
static BASE_FALLBACKS: AtomicU64 = AtomicU64::new(0);
static PANICS_RETRIED: AtomicU64 = AtomicU64::new(0);

/// Process-wide resilience counters: what the fault plane injected and
/// what the policies absorbed. Surfaced by `build-many` summaries and
/// `store stats` so chaos runs are diagnosable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Faults the installed plan injected.
    pub injected: u64,
    /// Operations re-attempted by a [`RetryPolicy`].
    pub retries: u64,
    /// Wire operations that hit a read/write deadline.
    pub timeouts: u64,
    /// Builds that fell back to locally cached base-image content
    /// after a failed FROM pull.
    pub base_fallbacks: u64,
    /// Worker panics absorbed by the scheduler's retry-once path.
    pub panics_retried: u64,
}

impl std::fmt::Display for FaultCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} injected, {} retries, {} timeouts, {} base fallbacks, {} panics retried",
            self.injected, self.retries, self.timeouts, self.base_fallbacks, self.panics_retried
        )
    }
}

/// Snapshot the resilience counters.
pub fn counters() -> FaultCounters {
    FaultCounters {
        injected: INJECTED.load(Ordering::Relaxed),
        retries: RETRIES.load(Ordering::Relaxed),
        timeouts: TIMEOUTS.load(Ordering::Relaxed),
        base_fallbacks: BASE_FALLBACKS.load(Ordering::Relaxed),
        panics_retried: PANICS_RETRIED.load(Ordering::Relaxed),
    }
}

/// Zero the resilience counters (done automatically by [`install`]).
pub fn reset_counters() {
    for counter in [
        &INJECTED,
        &RETRIES,
        &TIMEOUTS,
        &BASE_FALLBACKS,
        &PANICS_RETRIED,
    ] {
        counter.store(0, Ordering::Relaxed);
    }
}

/// Count one retry (called by [`RetryPolicy::run`]; exposed for
/// hand-rolled retry loops like the push resume path).
pub fn count_retry() {
    RETRIES.fetch_add(1, Ordering::Relaxed);
}

/// Count one wire deadline hit.
pub fn count_timeout() {
    TIMEOUTS.fetch_add(1, Ordering::Relaxed);
}

/// Count one degraded FROM fallback.
pub fn count_base_fallback() {
    BASE_FALLBACKS.fetch_add(1, Ordering::Relaxed);
}

/// Count one worker panic absorbed by the scheduler.
pub fn count_panic_retried() {
    PANICS_RETRIED.fetch_add(1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------

/// Capped exponential backoff with seeded jitter: the shared retry
/// discipline for transient transport errors (client pulls, manifest
/// fetches, push resume). Refusals — errors the caller classifies as
/// non-transient — are never retried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retries).
    pub attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base: Duration,
    /// Upper bound on any single backoff.
    pub cap: Duration,
    /// Jitter seed: the same seed replays the same backoff schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(200),
            seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// A default-shaped policy with `attempts` total attempts.
    pub fn with_attempts(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            attempts: attempts.max(1),
            ..RetryPolicy::default()
        }
    }

    /// The backoff before retry number `retry` (0-based): exponential
    /// from `base`, capped at `cap`, with the upper half jittered by
    /// the seeded RNG so colliding clients decorrelate identically on
    /// every replay.
    pub fn backoff(&self, retry: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << retry.min(16))
            .min(self.cap);
        let nanos = exp.as_nanos() as u64;
        let mut rng = FaultRng::new(self.seed ^ u64::from(retry));
        Duration::from_nanos(nanos / 2 + rng.below(nanos / 2 + 1))
    }

    /// Run `op` under this policy: errors for which `transient` answers
    /// `true` are retried (with backoff) until the attempt budget runs
    /// out; the first non-transient error — or the last attempt's
    /// error — is returned as-is. `op` receives the 0-based attempt
    /// number.
    pub fn run<T, E>(
        &self,
        transient: impl Fn(&E) -> bool,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<T, E> {
        let attempts = self.attempts.max(1);
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Ok(value) => return Ok(value),
                Err(error) => {
                    if attempt + 1 >= attempts || !transient(&error) {
                        return Err(error);
                    }
                    count_retry();
                    std::thread::sleep(self.backoff(attempt));
                    attempt += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_replayable() {
        let mut a = FaultRng::new(7);
        let mut b = FaultRng::new(7);
        let left: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let right: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(left, right);
        assert_ne!(
            left,
            (0..8)
                .map(|_| FaultRng::new(8).next_u64())
                .collect::<Vec<_>>()
        );
        let f = FaultRng::new(1).next_f64();
        assert!((0.0..1.0).contains(&f));
        assert!(FaultRng::new(2).below(10) < 10);
        assert_eq!(FaultRng::new(3).below(0), 0);
    }

    #[test]
    fn plan_strings_parse() {
        let plan = FaultPlan::parse(
            "seed=42; wire.client.reset=3; store.commit.crash=1@2; \
             wire.server.stall=2:250; wire.server.http500=p0.25:7",
        )
        .expect("parse");
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.points.len(), 4);
        assert_eq!(
            plan.points[0],
            PointSpec {
                name: "wire.client.reset".into(),
                trigger: Trigger::Counted { skip: 0, times: 3 },
                arg: 0,
            }
        );
        assert_eq!(
            plan.points[1].trigger,
            Trigger::Counted { skip: 2, times: 1 }
        );
        assert_eq!(plan.points[2].arg, 250);
        assert_eq!(plan.points[3].trigger, Trigger::Probability(0.25));
        assert_eq!(plan.points[3].arg, 7);
        // The builder API produces the same shape.
        let built = FaultPlan::new()
            .seeded(42)
            .counted("wire.client.reset", 3, 0, 0);
        assert_eq!(built.points[0], plan.points[0]);
    }

    #[test]
    fn malformed_plans_are_rejected() {
        for bad in [
            "nonsense", "seed=abc", "x=1:y", "x=p1.5", "x=pz", "x=1@z", "x=z",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must not parse");
        }
        assert_eq!(FaultPlan::parse("").expect("empty"), FaultPlan::new());
    }

    #[test]
    fn counted_triggers_fire_deterministically() {
        let plan = FaultPlan::parse("a=2@1:9").expect("parse");
        let _guard = install(&plan);
        assert!(active());
        // Hit 0 skipped; hits 1 and 2 fire with the arg; then dry.
        assert_eq!(hit("a"), None);
        assert_eq!(hit("a"), Some(9));
        assert_eq!(hit("a"), Some(9));
        assert_eq!(hit("a"), None);
        assert_eq!(hit("unknown.point"), None);
        assert_eq!(counters().injected, 2);
        drop(_guard);
        assert!(!active());
        assert_eq!(hit("a"), None, "uninstalled plans never fire");
    }

    #[test]
    fn probability_triggers_replay_with_the_seed() {
        let plan = FaultPlan::parse("seed=11;p.point=p0.5").expect("parse");
        let first: Vec<bool> = {
            let _guard = install(&plan);
            (0..64).map(|_| fires("p.point")).collect()
        };
        let second: Vec<bool> = {
            let _guard = install(&plan);
            (0..64).map(|_| fires("p.point")).collect()
        };
        assert_eq!(first, second, "same seed, same schedule");
        assert!(first.iter().any(|&b| b) && !first.iter().all(|&b| b));
    }

    #[test]
    fn retry_policy_retries_transients_only() {
        let policy = RetryPolicy {
            attempts: 3,
            base: Duration::from_micros(10),
            cap: Duration::from_micros(50),
            seed: 1,
        };
        // Transient errors burn attempts, then succeed.
        let mut calls = 0;
        let result: Result<u32, &str> = policy.run(
            |_| true,
            |attempt| {
                calls += 1;
                if attempt < 2 {
                    Err("reset")
                } else {
                    Ok(attempt)
                }
            },
        );
        assert_eq!(result, Ok(2));
        assert_eq!(calls, 3);
        // Non-transient errors return immediately.
        let mut calls = 0;
        let result: Result<u32, &str> = policy.run(
            |e| *e != "refused",
            |_| {
                calls += 1;
                Err("refused")
            },
        );
        assert_eq!(result, Err("refused"));
        assert_eq!(calls, 1);
        // The budget is respected.
        let mut calls = 0;
        let result: Result<u32, &str> = policy.run(
            |_| true,
            |_| {
                calls += 1;
                Err("reset")
            },
        );
        assert_eq!(result, Err("reset"));
        assert_eq!(calls, 3);
        // Backoff is deterministic, capped, and nonzero.
        assert_eq!(policy.backoff(1), policy.backoff(1));
        assert!(policy.backoff(9) <= Duration::from_micros(50));
        assert!(policy.backoff(0) > Duration::ZERO);
        assert_eq!(RetryPolicy::none().attempts, 1);
        assert_eq!(RetryPolicy::with_attempts(0).attempts, 1);
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let _guard = install(&FaultPlan::new());
        count_retry();
        count_timeout();
        count_base_fallback();
        count_panic_retried();
        let c = counters();
        assert_eq!(
            (c.retries, c.timeouts, c.base_fallbacks, c.panics_retried),
            (1, 1, 1, 1)
        );
        assert!(c.to_string().contains("1 retries"));
        reset_counters();
        assert_eq!(counters(), FaultCounters::default());
    }
}
