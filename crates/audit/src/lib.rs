//! # zr-audit — the reproducibility audit subsystem
//!
//! The paper's headline operational claim is that unprivileged builds
//! are *bit-for-bit reproducible*: the same Dockerfile always yields
//! the same OCI layout, byte for byte. This crate is the machinery
//! that **proves** the claim instead of asserting it:
//!
//! * [`audit_build`] builds a Dockerfile twice under independently
//!   constructed builders (fresh kernel, fresh caches — nothing shared
//!   that could mask divergence), exports both arms as OCI image
//!   layouts, and hands them to the differ.
//! * [`diff_layouts`] compares two layouts blob-by-blob and classifies
//!   every byte-level divergence into the [`DivergenceClass`] taxonomy
//!   — tar mtimes, entry ordering, ownership/mode, JSON key order,
//!   layer count, payload content with path-level drill-down — rather
//!   than reporting an opaque digest mismatch.
//! * [`render_human`] / [`render_json`] turn an [`AuditOutcome`] into
//!   a terminal report or machine-readable JSON (`zr audit --json`).
//!
//! The negative space matters as much: the simulated kernel/VFS can
//! *inject* each nondeterminism source on demand
//! ([`zr_vfs::Nondeterminism`] — skewed clock, seeded entropy,
//! shuffled readdir, alternate default ownership), and the store can
//! export through a deliberately *naive* packer
//! ([`zr_store::ExportOpts`]). Together they let tests force every
//! divergence class and assert the auditor names it — and, with
//! injection off, assert the canonical pipeline suppresses it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diff;
mod harness;
mod report;

pub use diff::{diff_layouts, Divergence, DivergenceClass};
pub use harness::{audit_build, ArmSpec, AuditError, AuditOutcome, Result};
pub use report::{render_human, render_json};
