//! Blob-by-blob layout diffing with a typed divergence taxonomy.
//!
//! A reproducibility failure that surfaces as "digest mismatch" is
//! undiagnosable; the differ's job is attribution. It walks two OCI
//! layouts top-down (index → manifest → config + layers), and for
//! every blob pair that differs it drills into the *format* — tar
//! entries, JSON members — to say which path diverged and in which
//! field. Derivative divergence is suppressed: when layers differ,
//! the config's `rootfs.diff_ids` necessarily differ too, and
//! repeating that tells the user nothing.

use std::collections::BTreeSet;
use std::path::Path;

use zr_store::json::Json;
use zr_store::{inspect, list_entries, TarEntryView};

use crate::harness::{AuditError, Result};

/// The divergence taxonomy — every way two layouts of "the same" image
/// have been observed to differ, per the paper's §6 survey of
/// non-reproducible packers ("It's Not Just Timestamps").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DivergenceClass {
    /// Tar entry mtimes differ (timestamps a canonical packer zeroes).
    TarMtime,
    /// Same entries, different archive order (readdir-order packing).
    TarOrdering,
    /// uid/gid or permission bits differ on the same path.
    OwnerMode,
    /// JSON blobs are semantically identical but serialized with a
    /// different member order (hash-map serializers).
    JsonKeyOrder,
    /// The manifests disagree about how many layers the image has.
    LayerCount,
    /// Actual content differs: file bytes, link targets, file type,
    /// or a semantic JSON field — with path-level drill-down.
    PayloadContent,
    /// A path exists in one layout's layer but not the other's.
    EntryPresence,
}

impl DivergenceClass {
    /// The stable kebab-case name used in reports and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            DivergenceClass::TarMtime => "tar-mtime",
            DivergenceClass::TarOrdering => "tar-ordering",
            DivergenceClass::OwnerMode => "owner-mode",
            DivergenceClass::JsonKeyOrder => "json-key-order",
            DivergenceClass::LayerCount => "layer-count",
            DivergenceClass::PayloadContent => "payload-content",
            DivergenceClass::EntryPresence => "entry-presence",
        }
    }
}

impl std::fmt::Display for DivergenceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One classified divergence between two layouts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Which taxonomy class this divergence falls into.
    pub class: DivergenceClass,
    /// Which blob it was found in (`config`, `manifest`, `layer[N]`).
    pub blob: String,
    /// Drill-down path inside the blob: an image path for layers, a
    /// `/member` pointer for JSON blobs.
    pub path: Option<String>,
    /// Human-readable specifics (the observed values on each side).
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:>15}] {}", self.class.name(), self.blob)?;
        if let Some(path) = &self.path {
            write!(f, " {path}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

fn read_blob(dir: &Path, digest: &str) -> Result<Vec<u8>> {
    Ok(std::fs::read(dir.join("blobs/sha256").join(digest)).map_err(zr_store::StoreError::from)?)
}

/// Diff two OCI image layouts and classify every divergence. An empty
/// result is the audit's "clean" verdict: the layouts are byte-for-byte
/// identical in every blob the manifests reference.
pub fn diff_layouts(dir_a: &Path, dir_b: &Path) -> Result<Vec<Divergence>> {
    let sa = inspect(dir_a)?;
    let sb = inspect(dir_b)?;
    let mut out = Vec::new();

    // Layers first: config divergence in `rootfs.diff_ids` is
    // derivative of layer divergence and gets suppressed below.
    let mut layers_differ = false;
    if sa.layer_digests.len() != sb.layer_digests.len() {
        layers_differ = true;
        out.push(Divergence {
            class: DivergenceClass::LayerCount,
            blob: "manifest".into(),
            path: None,
            detail: format!(
                "{} layers vs {}",
                sa.layer_digests.len(),
                sb.layer_digests.len()
            ),
        });
    }
    for (i, (da, db)) in sa.layer_digests.iter().zip(&sb.layer_digests).enumerate() {
        if da == db {
            continue;
        }
        layers_differ = true;
        diff_layer(i, &read_blob(dir_a, da)?, &read_blob(dir_b, db)?, &mut out)?;
    }
    if sa.config_digest != sb.config_digest {
        diff_config(
            &read_blob(dir_a, &sa.config_digest)?,
            &read_blob(dir_b, &sb.config_digest)?,
            layers_differ,
            &mut out,
        )?;
    }
    Ok(out)
}

/// Are two JSON values semantically equal? Objects compare as maps
/// (member order ignored — that difference is exactly the
/// [`DivergenceClass::JsonKeyOrder`] class); arrays stay ordered.
fn json_eq(a: &Json, b: &Json) -> bool {
    match (a, b) {
        (Json::Obj(fa), Json::Obj(fb)) => {
            if fa.len() != fb.len() {
                return false;
            }
            let mut sa: Vec<&(String, Json)> = fa.iter().collect();
            let mut sb: Vec<&(String, Json)> = fb.iter().collect();
            sa.sort_by_key(|(k, _)| k);
            sb.sort_by_key(|(k, _)| k);
            sa.iter()
                .zip(&sb)
                .all(|((ka, va), (kb, vb))| ka == kb && json_eq(va, vb))
        }
        (Json::Arr(ia), Json::Arr(ib)) => {
            ia.len() == ib.len() && ia.iter().zip(ib).all(|(x, y)| json_eq(x, y))
        }
        _ => a == b,
    }
}

fn parse_json(bytes: &[u8], what: &str) -> Result<Json> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| AuditError::Diff(format!("{what} blob is not UTF-8")))?;
    Ok(Json::parse(text)?)
}

fn diff_config(
    bytes_a: &[u8],
    bytes_b: &[u8],
    layers_differ: bool,
    out: &mut Vec<Divergence>,
) -> Result<()> {
    let ja = parse_json(bytes_a, "config")?;
    let jb = parse_json(bytes_b, "config")?;
    if json_eq(&ja, &jb) {
        out.push(Divergence {
            class: DivergenceClass::JsonKeyOrder,
            blob: "config".into(),
            path: None,
            detail: "semantically identical JSON serialized in a different member order".into(),
        });
        return Ok(());
    }
    // Semantic difference: attribute it to top-level members.
    let keys: BTreeSet<&str> = member_keys(&ja).chain(member_keys(&jb)).collect();
    let before = out.len();
    for key in keys {
        let (va, vb) = (ja.get(key), jb.get(key));
        let equal = match (va, vb) {
            (Some(x), Some(y)) => json_eq(x, y),
            (None, None) => true,
            _ => false,
        };
        if equal {
            continue;
        }
        if key == "rootfs" && layers_differ {
            // diff_ids follow the layer digests; already reported.
            continue;
        }
        out.push(Divergence {
            class: DivergenceClass::PayloadContent,
            blob: "config".into(),
            path: Some(format!("/{key}")),
            detail: match (va, vb) {
                (Some(_), None) => "member present only in arm A".into(),
                (None, Some(_)) => "member present only in arm B".into(),
                _ => "member values differ".into(),
            },
        });
    }
    if out.len() == before && !layers_differ {
        // Bytes differ but nothing attributable — never stay silent.
        out.push(Divergence {
            class: DivergenceClass::PayloadContent,
            blob: "config".into(),
            path: None,
            detail: "config bytes differ".into(),
        });
    }
    Ok(())
}

fn member_keys(json: &Json) -> impl Iterator<Item = &str> {
    match json {
        Json::Obj(fields) => fields.iter(),
        _ => [].iter(),
    }
    .map(|(k, _)| k.as_str())
}

fn diff_layer(index: usize, tar_a: &[u8], tar_b: &[u8], out: &mut Vec<Divergence>) -> Result<()> {
    let blob = format!("layer[{index}]");
    let ea = list_entries(tar_a)?;
    let eb = list_entries(tar_b)?;
    let order_a: Vec<&str> = ea.iter().map(|e| e.path.as_str()).collect();
    let order_b: Vec<&str> = eb.iter().map(|e| e.path.as_str()).collect();
    let set_a: BTreeSet<&str> = order_a.iter().copied().collect();
    let set_b: BTreeSet<&str> = order_b.iter().copied().collect();

    let before = out.len();
    for path in set_a.difference(&set_b) {
        out.push(Divergence {
            class: DivergenceClass::EntryPresence,
            blob: blob.clone(),
            path: Some((*path).to_string()),
            detail: "entry present only in arm A".into(),
        });
    }
    for path in set_b.difference(&set_a) {
        out.push(Divergence {
            class: DivergenceClass::EntryPresence,
            blob: blob.clone(),
            path: Some((*path).to_string()),
            detail: "entry present only in arm B".into(),
        });
    }
    if set_a == set_b && order_a != order_b {
        let first = order_a
            .iter()
            .zip(&order_b)
            .position(|(x, y)| x != y)
            .unwrap_or(0);
        out.push(Divergence {
            class: DivergenceClass::TarOrdering,
            blob: blob.clone(),
            path: None,
            detail: format!(
                "same entries, different order (first at position {first}: {:?} vs {:?})",
                order_a[first], order_b[first]
            ),
        });
    }

    let find = |entries: &'_ [TarEntryView], path: &str| -> usize {
        entries
            .iter()
            .position(|e| e.path == path)
            .expect("common path")
    };
    for path in set_a.intersection(&set_b) {
        let a = &ea[find(&ea, path)];
        let b = &eb[find(&eb, path)];
        if a.mtime != b.mtime {
            out.push(Divergence {
                class: DivergenceClass::TarMtime,
                blob: blob.clone(),
                path: Some((*path).to_string()),
                detail: format!("mtime {} vs {}", a.mtime, b.mtime),
            });
        }
        if (a.uid, a.gid, a.mode) != (b.uid, b.gid, b.mode) {
            out.push(Divergence {
                class: DivergenceClass::OwnerMode,
                blob: blob.clone(),
                path: Some((*path).to_string()),
                detail: format!(
                    "{}:{} mode {:o} vs {}:{} mode {:o}",
                    a.uid, a.gid, a.mode, b.uid, b.gid, b.mode
                ),
            });
        }
        if (a.typeflag, &a.linkname, &a.data) != (b.typeflag, &b.linkname, &b.data) {
            out.push(Divergence {
                class: DivergenceClass::PayloadContent,
                blob: blob.clone(),
                path: Some((*path).to_string()),
                detail: if a.typeflag != b.typeflag {
                    format!(
                        "file type {:?} vs {:?}",
                        a.typeflag as char, b.typeflag as char
                    )
                } else if a.linkname != b.linkname {
                    format!("link target {:?} vs {:?}", a.linkname, b.linkname)
                } else {
                    format!("{} vs {} content bytes", a.data.len(), b.data.len())
                },
            });
        }
    }
    if out.len() == before {
        // The digests differ but every entry compared equal (e.g. raw
        // padding variance) — report rather than silently pass.
        out.push(Divergence {
            class: DivergenceClass::PayloadContent,
            blob,
            path: None,
            detail: "layer bytes differ but entries compare equal".into(),
        });
    }
    Ok(())
}
