//! The independent-builder audit harness.
//!
//! Each arm gets a builder that shares *nothing* with the other: its
//! own kernel, its own layer cache, its own registry state. Shared
//! caches would let arm B replay arm A's layers and mask real
//! nondeterminism — the whole point is that agreement must come from
//! determinism, not from memoization.

use std::path::{Path, PathBuf};

use zeroroot_core::Mode;
use zr_build::{BuildOptions, Builder};
use zr_kernel::{Kernel, KernelConfig};
use zr_sched::{BuildRequest, Scheduler, SchedulerConfig};
use zr_store::{export_with, ExportOpts, OciSummary, StoreError};
use zr_vfs::Nondeterminism;

use crate::diff::{diff_layouts, Divergence};

/// Audit-level errors: the store's I/O/corruption errors plus build
/// failures and diagnosis failures of the audit's own making.
#[derive(Debug)]
pub enum AuditError {
    /// A layout could not be read or written.
    Store(StoreError),
    /// One of the arms' builds failed (the build log is attached).
    Build(String),
    /// The differ could not diagnose a blob pair.
    Diff(String),
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::Store(e) => write!(f, "{e}"),
            AuditError::Build(log) => write!(f, "arm build failed:\n{log}"),
            AuditError::Diff(msg) => write!(f, "diff: {msg}"),
        }
    }
}

impl std::error::Error for AuditError {}

impl From<StoreError> for AuditError {
    fn from(e: StoreError) -> AuditError {
        AuditError::Store(e)
    }
}

/// Audit result type.
pub type Result<T> = std::result::Result<T, AuditError>;

/// How to construct one arm of the audit.
#[derive(Debug, Clone, Default)]
pub struct ArmSpec {
    /// Worker count: 0/1 builds inline on a private builder; above 1
    /// the arm runs through a fresh scheduler with that many workers
    /// (the serial-vs-parallel agreement axis of the R-repro gate).
    pub jobs: usize,
    /// Nondeterminism injected into the arm's kernel. Only the inline
    /// path supports injection — scheduler workers construct their own
    /// kernels by design.
    pub nondet: Nondeterminism,
    /// Export behavior (canonical by default; naive-packer switches
    /// force the normalizer-suppressed divergence classes).
    pub export: ExportOpts,
}

/// What an audit produced: both layouts on disk, their summaries, and
/// every classified divergence (empty = the bit-for-bit claim held).
#[derive(Debug)]
pub struct AuditOutcome {
    /// Arm A's layout summary.
    pub summary_a: OciSummary,
    /// Arm B's layout summary.
    pub summary_b: OciSummary,
    /// Arm A's layout directory.
    pub dir_a: PathBuf,
    /// Arm B's layout directory.
    pub dir_b: PathBuf,
    /// Every classified divergence between the two layouts.
    pub divergences: Vec<Divergence>,
}

impl AuditOutcome {
    /// Did the two builds agree byte-for-byte?
    pub fn clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Build one arm: construct the builder per `spec`, run `dockerfile`,
/// export the result at `dir`.
fn build_arm(dockerfile: &str, spec: &ArmSpec, dir: &Path) -> Result<OciSummary> {
    let image = if spec.jobs <= 1 {
        let config = KernelConfig {
            nondet: spec.nondet.clone(),
            ..Default::default()
        };
        let mut kernel = Kernel::new(config);
        let mut builder = Builder::new();
        let result = builder.build(&mut kernel, dockerfile, &audit_options());
        if !result.success {
            return Err(AuditError::Build(result.log_text()));
        }
        result.image.expect("successful build carries an image")
    } else {
        if !spec.nondet.is_clean() {
            return Err(AuditError::Diff(
                "nondeterminism injection requires an inline (jobs<=1) arm: \
                 scheduler workers construct their own kernels"
                    .into(),
            ));
        }
        let sched = Scheduler::new(SchedulerConfig {
            jobs: spec.jobs,
            ..SchedulerConfig::default()
        });
        let mut reports = sched.build_many(vec![BuildRequest::with_options(
            "audit",
            dockerfile,
            audit_options(),
        )]);
        let report = reports.remove(0);
        if !report.result.success {
            return Err(AuditError::Build(report.result.log_text()));
        }
        report
            .result
            .image
            .expect("successful build carries an image")
    };
    Ok(export_with(&image, dir, spec.export)?)
}

fn audit_options() -> BuildOptions {
    BuildOptions::new("audit", Mode::Seccomp)
}

/// Build `dockerfile` twice — once per arm spec, under independently
/// constructed builders — export both OCI layouts under `out_dir`
/// (`arm-a/`, `arm-b/`), and classify every divergence between them.
pub fn audit_build(
    dockerfile: &str,
    a: &ArmSpec,
    b: &ArmSpec,
    out_dir: &Path,
) -> Result<AuditOutcome> {
    let dir_a = out_dir.join("arm-a");
    let dir_b = out_dir.join("arm-b");
    let summary_a = build_arm(dockerfile, a, &dir_a)?;
    let summary_b = build_arm(dockerfile, b, &dir_b)?;
    let divergences = diff_layouts(&dir_a, &dir_b)?;
    Ok(AuditOutcome {
        summary_a,
        summary_b,
        dir_a,
        dir_b,
        divergences,
    })
}
