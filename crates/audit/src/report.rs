//! Audit report rendering: a terminal report for humans and a stable
//! JSON document for tooling (`zr audit --json`).

use zr_store::json::escape;

use crate::harness::AuditOutcome;

/// Render an audit outcome for a terminal.
pub fn render_human(outcome: &AuditOutcome) -> String {
    let mut out = String::new();
    out.push_str(&format!("audit: {}\n", outcome.summary_a.ref_name));
    out.push_str(&format!(
        "arm A: manifest sha256:{} ({} layers)\n",
        outcome.summary_a.manifest_digest,
        outcome.summary_a.layer_digests.len()
    ));
    out.push_str(&format!(
        "arm B: manifest sha256:{} ({} layers)\n",
        outcome.summary_b.manifest_digest,
        outcome.summary_b.layer_digests.len()
    ));
    if outcome.clean() {
        out.push_str("verdict: CLEAN — layouts are byte-for-byte identical\n");
    } else {
        out.push_str(&format!(
            "verdict: DIVERGENT — {} divergence(s)\n",
            outcome.divergences.len()
        ));
        for d in &outcome.divergences {
            out.push_str(&format!("  {d}\n"));
        }
    }
    out
}

/// Render an audit outcome as a JSON document (fixed member order, so
/// the report itself is reproducible).
pub fn render_json(outcome: &AuditOutcome) -> String {
    let divergences: Vec<String> = outcome
        .divergences
        .iter()
        .map(|d| {
            let path = match &d.path {
                Some(p) => format!("\"{}\"", escape(p)),
                None => "null".to_string(),
            };
            format!(
                "{{\"blob\":\"{}\",\"class\":\"{}\",\"detail\":\"{}\",\"path\":{}}}",
                escape(&d.blob),
                d.class.name(),
                escape(&d.detail),
                path,
            )
        })
        .collect();
    format!(
        "{{\"clean\":{},\"divergences\":[{}],\"manifest_a\":\"sha256:{}\",\
         \"manifest_b\":\"sha256:{}\",\"ref\":\"{}\"}}",
        outcome.clean(),
        divergences.join(","),
        escape(&outcome.summary_a.manifest_digest),
        escape(&outcome.summary_b.manifest_digest),
        escape(&outcome.summary_a.ref_name),
    )
}
