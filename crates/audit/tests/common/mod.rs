//! Scratch-directory plumbing for the audit integration tests (no
//! tempfile crate offline: unique directories under the system temp
//! dir, cleaned up by a drop guard).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static SEQ: AtomicU64 = AtomicU64::new(0);

/// A scratch directory removed on drop.
pub struct Scratch {
    path: PathBuf,
}

impl Scratch {
    /// A fresh, empty scratch directory tagged `name`.
    pub fn new(name: &str) -> Scratch {
        let path = std::env::temp_dir().join(format!(
            "zr-audit-test-{name}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create scratch dir");
        Scratch { path }
    }

    /// The directory.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
