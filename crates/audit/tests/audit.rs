//! The audit subsystem's force/suppress matrix.
//!
//! For every divergence class in the taxonomy: *force* it by injecting
//! the corresponding nondeterminism source (or naive-packer switch)
//! into one arm and assert the auditor names the class — then run the
//! same pair with injection off and assert the canonical pipeline
//! suppresses it. A class the auditor can only report as "content
//! differs" would fail these tests.

mod common;

use common::Scratch;
use zr_audit::{audit_build, diff_layouts, ArmSpec, DivergenceClass};
use zr_store::{export, export_diff, ExportOpts, TarOpts};
use zr_vfs::{Access, Fs, Nondeterminism};

const DF: &str = "FROM alpine:3.19\nRUN echo hello > /greeting\nRUN uuidgen > /uuid\n";

/// A small diamond multi-stage build (no entropy consumers, so the
/// per-stage kernels of the parallel arm agree with the single serial
/// kernel).
const DIAMOND: &str = "FROM alpine:3.19 AS base\nRUN echo shared > /shared\n\
                       FROM base AS left\nRUN echo l > /left\n\
                       FROM base AS right\nRUN echo r > /right\n\
                       FROM base AS final\n\
                       COPY --from=left /left /left\n\
                       COPY --from=right /right /right\n";

fn raw_tar() -> ExportOpts {
    ExportOpts {
        tar: TarOpts {
            preserve_mtimes: true,
            readdir_order: true,
        },
        json_key_seed: None,
    }
}

fn classes(outcome: &zr_audit::AuditOutcome) -> Vec<DivergenceClass> {
    outcome.divergences.iter().map(|d| d.class).collect()
}

#[test]
fn identical_builds_are_clean() {
    let scratch = Scratch::new("clean");
    let outcome = audit_build(DF, &ArmSpec::default(), &ArmSpec::default(), scratch.path())
        .expect("audit runs");
    assert!(
        outcome.clean(),
        "independent builds must agree:\n{}",
        zr_audit::render_human(&outcome)
    );
    assert_eq!(
        outcome.summary_a.manifest_digest,
        outcome.summary_b.manifest_digest
    );
}

#[test]
fn serial_vs_parallel_builds_are_clean() {
    let scratch = Scratch::new("jobs");
    let serial = ArmSpec::default();
    let parallel = ArmSpec {
        jobs: 8,
        ..ArmSpec::default()
    };
    let outcome = audit_build(DIAMOND, &serial, &parallel, scratch.path()).expect("audit runs");
    assert!(
        outcome.clean(),
        "worker count must not leak into the layout:\n{}",
        zr_audit::render_human(&outcome)
    );
}

#[test]
fn clock_skew_forces_tar_mtime_and_normalizer_suppresses_it() {
    let skewed = ArmSpec {
        nondet: Nondeterminism {
            clock_skew: 100_000,
            ..Nondeterminism::default()
        },
        export: raw_tar(),
        ..ArmSpec::default()
    };
    let naive = ArmSpec {
        export: raw_tar(),
        ..ArmSpec::default()
    };
    let scratch = Scratch::new("skew-raw");
    let outcome = audit_build(DF, &naive, &skewed, scratch.path()).expect("audit runs");
    assert!(
        classes(&outcome).contains(&DivergenceClass::TarMtime),
        "skewed clock through a naive packer must be named tar-mtime:\n{}",
        zr_audit::render_human(&outcome)
    );

    // Same skew, canonical packer: zeroed timestamps suppress it.
    let skewed_canonical = ArmSpec {
        nondet: skewed.nondet.clone(),
        ..ArmSpec::default()
    };
    let scratch = Scratch::new("skew-canonical");
    let outcome = audit_build(DF, &ArmSpec::default(), &skewed_canonical, scratch.path())
        .expect("audit runs");
    assert!(
        outcome.clean(),
        "the canonical packer must suppress mtime skew:\n{}",
        zr_audit::render_human(&outcome)
    );
}

#[test]
fn readdir_shuffle_forces_tar_ordering_and_sorted_walk_suppresses_it() {
    let shuffled = ArmSpec {
        nondet: Nondeterminism {
            shuffle_readdir: Some(7),
            ..Nondeterminism::default()
        },
        export: ExportOpts {
            tar: TarOpts {
                preserve_mtimes: false,
                readdir_order: true,
            },
            json_key_seed: None,
        },
        ..ArmSpec::default()
    };
    let naive = ArmSpec {
        export: shuffled.export,
        ..ArmSpec::default()
    };
    let scratch = Scratch::new("shuffle-raw");
    let outcome = audit_build(DF, &naive, &shuffled, scratch.path()).expect("audit runs");
    assert!(
        classes(&outcome).contains(&DivergenceClass::TarOrdering),
        "shuffled readdir through a readdir-order packer must be named tar-ordering:\n{}",
        zr_audit::render_human(&outcome)
    );

    // Same shuffle, canonical (sorted-walk) packer: suppressed.
    let shuffled_canonical = ArmSpec {
        nondet: shuffled.nondet.clone(),
        ..ArmSpec::default()
    };
    let scratch = Scratch::new("shuffle-canonical");
    let outcome = audit_build(DF, &ArmSpec::default(), &shuffled_canonical, scratch.path())
        .expect("audit runs");
    assert!(
        outcome.clean(),
        "the sorted walk must suppress readdir order:\n{}",
        zr_audit::render_human(&outcome)
    );
}

#[test]
fn alternate_default_ids_force_owner_mode() {
    // Ownership is *content*: the canonical exporter carries uid/gid,
    // so this class must surface even without naive-packer switches.
    let chowned = ArmSpec {
        nondet: Nondeterminism {
            default_ids: Some((4242, 4343)),
            ..Nondeterminism::default()
        },
        ..ArmSpec::default()
    };
    let scratch = Scratch::new("ids");
    let outcome =
        audit_build(DF, &ArmSpec::default(), &chowned, scratch.path()).expect("audit runs");
    let classes = classes(&outcome);
    assert!(
        classes.contains(&DivergenceClass::OwnerMode),
        "alternate default ids must be named owner-mode:\n{}",
        zr_audit::render_human(&outcome)
    );
    let owner = outcome
        .divergences
        .iter()
        .find(|d| d.class == DivergenceClass::OwnerMode)
        .unwrap();
    assert!(
        owner.detail.contains("4242"),
        "detail names the observed ids: {owner:?}"
    );
    assert!(owner.path.is_some(), "owner divergence names the path");
}

#[test]
fn entropy_seed_forces_payload_content_with_path() {
    let seeded = ArmSpec {
        nondet: Nondeterminism {
            gen_seed: Some(5),
            ..Nondeterminism::default()
        },
        ..ArmSpec::default()
    };
    let scratch = Scratch::new("entropy");
    let outcome =
        audit_build(DF, &ArmSpec::default(), &seeded, scratch.path()).expect("audit runs");
    let payload: Vec<_> = outcome
        .divergences
        .iter()
        .filter(|d| d.class == DivergenceClass::PayloadContent)
        .collect();
    assert!(
        payload.iter().any(|d| d.path.as_deref() == Some("/uuid")),
        "a diverging generated file must be drilled down to its path:\n{}",
        zr_audit::render_human(&outcome)
    );
    // Only the generated file's payload diverges — not the static one.
    assert!(
        !payload
            .iter()
            .any(|d| d.path.as_deref() == Some("/greeting")),
        "static content must not be blamed:\n{}",
        zr_audit::render_human(&outcome)
    );
}

#[test]
fn json_key_shuffle_forces_json_key_order() {
    let shuffled = ArmSpec {
        export: ExportOpts {
            tar: TarOpts::default(),
            json_key_seed: Some(3),
        },
        ..ArmSpec::default()
    };
    let scratch = Scratch::new("json");
    let outcome =
        audit_build(DF, &ArmSpec::default(), &shuffled, scratch.path()).expect("audit runs");
    assert_eq!(
        classes(&outcome),
        vec![DivergenceClass::JsonKeyOrder],
        "a reordered config must be named json-key-order, and nothing else:\n{}",
        zr_audit::render_human(&outcome)
    );
}

fn tiny_image(extra: Option<&str>) -> zr_image::Image {
    let root = Access::root();
    let mut fs = Fs::new();
    fs.mkdir_p("/etc", 0o755).unwrap();
    fs.write_file("/etc/os-release", 0o644, b"ID=test".to_vec(), &root)
        .unwrap();
    if let Some(path) = extra {
        fs.write_file(path, 0o644, b"x".to_vec(), &root).unwrap();
    }
    zr_image::Image {
        meta: zr_image::ImageMeta {
            name: "tiny".into(),
            tag: "latest".into(),
            distro: zr_image::Distro::Scratch,
            libc: String::new(),
            env: vec![],
            binaries: vec![],
        },
        fs,
    }
}

#[test]
fn layer_count_mismatch_is_classified() {
    let scratch = Scratch::new("layer-count");
    let image = tiny_image(None);
    let base = Fs::new();
    export(&image, scratch.path().join("arm-a")).unwrap();
    export_diff(&image, &base, scratch.path().join("arm-b")).unwrap();
    let divergences =
        diff_layouts(&scratch.path().join("arm-a"), &scratch.path().join("arm-b")).unwrap();
    assert!(
        divergences
            .iter()
            .any(|d| d.class == DivergenceClass::LayerCount),
        "{divergences:?}"
    );
}

#[test]
fn entry_presence_is_classified_with_the_path() {
    let scratch = Scratch::new("presence");
    export(&tiny_image(None), scratch.path().join("arm-a")).unwrap();
    export(
        &tiny_image(Some("/etc/extra")),
        scratch.path().join("arm-b"),
    )
    .unwrap();
    let divergences =
        diff_layouts(&scratch.path().join("arm-a"), &scratch.path().join("arm-b")).unwrap();
    let presence = divergences
        .iter()
        .find(|d| d.class == DivergenceClass::EntryPresence)
        .expect("entry-presence reported");
    assert_eq!(presence.path.as_deref(), Some("/etc/extra"));
    assert!(presence.detail.contains("arm B"), "{presence:?}");
}

#[test]
fn naive_export_of_the_same_build_is_still_clean() {
    // The naive packer is deterministic too: both arms raw → clean.
    // (Detection tests above diverge because the *inputs* differ, not
    // because raw packing is itself random.)
    let naive = ArmSpec {
        export: raw_tar(),
        ..ArmSpec::default()
    };
    let scratch = Scratch::new("raw-clean");
    let outcome = audit_build(DF, &naive, &naive, scratch.path()).expect("audit runs");
    assert!(outcome.clean(), "{}", zr_audit::render_human(&outcome));
}

#[test]
fn reports_render_both_ways() {
    let seeded = ArmSpec {
        nondet: Nondeterminism {
            gen_seed: Some(9),
            ..Nondeterminism::default()
        },
        ..ArmSpec::default()
    };
    let scratch = Scratch::new("render");
    let outcome =
        audit_build(DF, &ArmSpec::default(), &seeded, scratch.path()).expect("audit runs");
    let human = zr_audit::render_human(&outcome);
    assert!(human.contains("DIVERGENT"), "{human}");
    assert!(human.contains("payload-content"), "{human}");
    let json = zr_audit::render_json(&outcome);
    assert!(json.contains("\"clean\":false"), "{json}");
    assert!(json.contains("\"class\":\"payload-content\""), "{json}");
    // The machine report parses back.
    let parsed = zr_store::json::Json::parse(&json).expect("valid JSON");
    assert_eq!(
        parsed.get("clean"),
        Some(&zr_store::json::Json::Bool(false))
    );
}
