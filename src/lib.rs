//! # zeroroot — zero-consistency root emulation, reproduced
//!
//! A full-system reproduction of *"Zero-consistency root emulation for
//! unprivileged container image build"* (Priedhorsky, Jennings, Phinney;
//! SC 2024; arXiv:2405.06085): a seccomp BPF filter that intercepts 29
//! privileged system calls, executes nothing, and reports success —
//! enough to build almost every container image without any privilege at
//! all.
//!
//! This crate re-exports the whole workspace and adds a small high-level
//! API ([`Session`]) used by the examples and experiments:
//!
//! ```
//! use zeroroot::{Mode, Session};
//!
//! let mut session = Session::new();
//! let result = session.build(
//!     "FROM centos:7\nRUN yum install -y openssh\n",
//!     "win",
//!     Mode::Seccomp,
//! );
//! assert!(result.success);
//! assert!(result.log_text().contains("Complete!"));
//! // The paper's mechanism, observable: privileged syscalls were issued,
//! // none were executed, all reported success.
//! assert!(session.trace_stats().faked > 0);
//! ```
//!
//! Layer map (bottom up): [`syscalls`] (ABI tables) → [`bpf`] (classic
//! BPF machine) → [`seccomp`] (filter compiler + host installer) →
//! [`vfs`] + [`kernel`] (the simulated Linux substrate) → [`core`]
//! (the emulation strategies) → [`image`]/[`dockerfile`]/[`shell`]/
//! [`pkg`] → [`store`] (persistent CAS + OCI layouts) → [`build`]
//! (the ch-image-like builder) → [`sched`] (the concurrent batch
//! engine).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use zeroroot_core as core;
pub use zr_audit as audit;
pub use zr_bpf as bpf;
pub use zr_build as build;
pub use zr_dockerfile as dockerfile;
pub use zr_fault as fault;
pub use zr_image as image;
pub use zr_kernel as kernel;
pub use zr_pkg as pkg;
pub use zr_plan as plan;
pub use zr_registry as registry;
pub use zr_sched as sched;
pub use zr_seccomp as seccomp;
pub use zr_shell as shell;
pub use zr_store as store;
pub use zr_syscalls as syscalls;
pub use zr_trace as trace;
pub use zr_vfs as vfs;

pub use zeroroot_core::{Mode, PrepareEnv, RootEmulation};
pub use zr_build::{BuildError, BuildOptions, BuildResult, Builder, CacheMode, CacheStats};
pub use zr_kernel::{ContainerConfig, ContainerType, Kernel, SysExt};
pub use zr_sched::{BuildReport, BuildRequest, Scheduler, SchedulerConfig};

/// A ready-to-use build session: one simulated kernel + one builder.
///
/// Keeps the boilerplate out of examples and experiments; anything more
/// exotic (other container types, custom kernels, counters) can use the
/// crates directly.
pub struct Session {
    /// The simulated kernel.
    pub kernel: Kernel,
    /// The image builder (store + registry).
    pub builder: Builder,
}

impl Default for Session {
    fn default() -> Session {
        Session::new()
    }
}

impl Session {
    /// A fresh session: default kernel (unprivileged user uid 1000),
    /// empty image store.
    pub fn new() -> Session {
        Session {
            kernel: Kernel::default_kernel(),
            builder: Builder::new(),
        }
    }

    /// Build `dockerfile` into `tag` under the given `--force` mode, in a
    /// Type III container (the paper's setting).
    pub fn build(&mut self, dockerfile: &str, tag: &str, mode: Mode) -> BuildResult {
        let opts = BuildOptions::new(tag, mode);
        self.builder.build(&mut self.kernel, dockerfile, &opts)
    }

    /// Build with full options.
    pub fn build_with(&mut self, dockerfile: &str, opts: &BuildOptions) -> BuildResult {
        self.builder.build(&mut self.kernel, dockerfile, opts)
    }

    /// Syscall statistics recorded so far.
    pub fn trace_stats(&self) -> zr_trace::Stats {
        self.kernel.trace.stats()
    }

    /// Cost counters recorded so far.
    pub fn counters(&self) -> zr_kernel::Counters {
        self.kernel.counters
    }

    /// Clear trace and console between experiments.
    pub fn reset_observability(&mut self) {
        self.kernel.trace.clear();
        self.kernel.console.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_builds_figure_2() {
        let mut s = Session::new();
        let r = s.build(
            "FROM centos:7\nRUN yum install -y openssh\n",
            "win",
            Mode::Seccomp,
        );
        assert!(r.success, "{}", r.log_text());
        assert!(s.trace_stats().faked > 0);
    }

    #[test]
    fn reset_observability_clears() {
        let mut s = Session::new();
        let _ = s.build("FROM alpine:3.19\nRUN true\n", "t", Mode::None);
        assert!(s.trace_stats().total > 0);
        s.reset_observability();
        assert_eq!(s.trace_stats().total, 0);
    }
}
